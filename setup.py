"""Legacy setup shim.

The environment has no `wheel` package and no network access, so PEP 517
editable installs (which need bdist_wheel) fail; this file lets
``pip install -e . --no-use-pep517`` fall back to `setup.py develop`.
Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
