"""Semantic segmentation of synthetic indoor rooms with PointNet++.

The W1-style workload at laptop scale: a small PointNet++(s) segments
S3DIS-like rooms into floor / ceiling / wall / table / chair / clutter,
using the EdgePC configuration (Morton sampling on the first SA level,
Morton interpolation on the last FP level, index-window neighbor
search).  Prints per-class accuracy and mIoU.  Runs in ~1 minute.
"""

import numpy as np

from repro import EdgePCConfig
from repro.datasets import S3DISLike, make_batches, train_test_split
from repro.datasets.indoor import NUM_SEMANTIC_CLASSES
from repro.nn import Adam, PointNet2Segmentation, SAConfig
from repro.nn.autograd import no_grad
from repro.train import Trainer, per_class_accuracy

CLASS_NAMES = ("floor", "ceiling", "wall", "table", "chair", "clutter")


def main() -> None:
    dataset = S3DISLike(num_clouds=12, points_per_cloud=256, seed=1)
    train_idx, test_idx = train_test_split(dataset, 0.25)
    train_batches = make_batches(
        dataset, 3, indices=train_idx, per_point_labels=True
    )
    test_batches = make_batches(
        dataset, 3, indices=test_idx, per_point_labels=True,
        drop_last=False,
    )

    config = EdgePCConfig(
        sample_layers={0},
        upsample_layers={1},
        neighbor_layers={0},
        window_multiplier=4,  # accuracy-sensitive task: wider window
    )
    model = PointNet2Segmentation(
        num_classes=NUM_SEMANTIC_CLASSES,
        sa_configs=(
            SAConfig(0.5, 8, 0.4, (16, 16, 32)),
            SAConfig(0.5, 8, 0.8, (32, 32, 64)),
        ),
        edgepc=config,
        head_hidden=32,
        dropout=0.0,
        rng=np.random.default_rng(0),
    )
    trainer = Trainer(model, Adam(model.parameters(), lr=8e-3))

    print("Training PointNet++(s) with the EdgePC configuration ...")
    for epoch in range(1, 31):
        loss = trainer.train_epoch(train_batches)
        if epoch % 5 == 0:
            acc = trainer.evaluate(test_batches).accuracy
            print(
                f"  epoch {epoch:>2}: loss {loss:.3f}, "
                f"test accuracy {acc:.3f}"
            )

    result = trainer.evaluate(
        test_batches, num_classes=NUM_SEMANTIC_CLASSES
    )
    print(
        f"\nfinal test accuracy {result.accuracy:.3f}, "
        f"mIoU {result.miou:.3f}"
    )

    model.eval()
    predictions, targets = [], []
    with no_grad():
        for batch in test_batches:
            logits = model(batch.xyz)
            predictions.append(logits.data.argmax(axis=-1).reshape(-1))
            targets.append(batch.labels.reshape(-1))
    per_class = per_class_accuracy(
        np.concatenate(predictions),
        np.concatenate(targets),
        NUM_SEMANTIC_CLASSES,
    )
    print("\nper-class accuracy:")
    for name, value in zip(CLASS_NAMES, per_class):
        shown = "   n/a" if np.isnan(value) else f"{value:6.3f}"
        print(f"  {name:<8}{shown}")


if __name__ == "__main__":
    main()
