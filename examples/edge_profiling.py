"""Profile the six Table-1 workloads on the simulated edge device.

Regenerates the Fig. 3 / Fig. 13 views interactively: per-stage
latency breakdown of the baseline pipeline, then the speedup and
energy saving of the EdgePC configurations (S+N and S+N+F).

Runs in about a second — the traces are synthesized from the
architecture specs, not executed.
"""

from repro import EdgePCConfig, PipelineProfiler
from repro.analysis import format_breakdown_row, format_comparison_row
from repro.runtime import compare
from repro.workloads import standard_workloads, trace


def main() -> None:
    profiler = PipelineProfiler()
    baseline = EdgePCConfig.baseline()
    edgepc = EdgePCConfig.paper_default()
    with_tc = EdgePCConfig.paper_with_tensor_cores()

    print("Baseline latency breakdown (Fig. 3):")
    specs = standard_workloads()
    for name, spec in specs.items():
        breakdown = profiler.breakdown(
            trace(spec, baseline), baseline
        )
        label = f"{name} {spec.model}/{spec.dataset}"
        print("  " + format_breakdown_row(label, breakdown))

    print("\nEdgePC S+N configuration vs baseline (Fig. 13a/b/c):")
    sn, e2e, energy = [], [], []
    for name, spec in specs.items():
        report = compare(
            profiler,
            trace(spec, baseline), baseline,
            trace(spec, edgepc), edgepc,
        )
        sn.append(report.sample_neighbor_speedup)
        e2e.append(report.end_to_end_speedup)
        energy.append(report.energy_saving_fraction)
        print("  " + format_comparison_row(name, report))
    print(
        f"  averages: S+N {sum(sn) / 6:.2f}x | E2E {sum(e2e) / 6:.2f}x"
        f" | energy saved {sum(energy) / 6 * 100:.0f}%"
    )

    print("\nS+N+F configuration (feature compute on tensor cores):")
    for name, spec in specs.items():
        report = compare(
            profiler,
            trace(spec, baseline), baseline,
            trace(spec, with_tc), with_tc,
        )
        print(
            f"  {name}: E2E {report.end_to_end_speedup:5.2f}x | "
            f"energy saved "
            f"{report.energy_saving_fraction * 100:5.1f}%"
        )


if __name__ == "__main__":
    main()
