"""Design-space exploration: pick an EdgePC operating point.

Sweeps the two user-facing knobs — search window size and Morton code
width — on a ScanNet-like cloud, prints the trade-off tables, and
reports the Pareto front, mirroring how Sec. 6.3 advises developers to
tune EdgePC for a new workload.
"""

import numpy as np

from repro.core.dse import (
    explore_code_bits,
    explore_window_sizes,
    pareto_front,
)
from repro.datasets import ScanNetLike


def main() -> None:
    cloud = ScanNetLike(num_clouds=1, points_per_cloud=4096, seed=0)[
        0
    ].xyz
    queries = np.random.default_rng(1).choice(4096, 512, replace=False)

    print("Search-window sweep (k = 16):")
    window_points = explore_window_sizes(
        cloud, k=16, multipliers=(1, 2, 4, 8, 16, 32),
        query_indices=queries,
    )
    print(f"  {'W':>6}{'FNR':>9}{'NS speedup':>12}")
    for p in window_points:
        print(
            f"  {p.window:>6}{p.false_neighbor_ratio * 100:>8.1f}%"
            f"{p.search_speedup:>11.1f}x"
        )
    front = pareto_front(window_points)
    print(f"  Pareto-optimal points: {[p.window for p in front]}")

    print("\nMorton code-width sweep (memory vs quantization):")
    bit_points = explore_code_bits(
        cloud, k=16, code_bits_options=(12, 18, 24, 32, 48, 63),
        query_indices=queries,
    )
    print(f"  {'bits':>6}{'memory':>10}{'FNR':>9}")
    for p in bit_points:
        print(
            f"  {p.code_bits:>6}{p.memory_bytes / 1024:>9.1f}K"
            f"{p.false_neighbor_ratio * 100:>8.1f}%"
        )
    print(
        "\nThe paper's operating point: 32-bit codes (FNR saturated, "
        "4 B/point) with W = 2k as the default window."
    )


if __name__ == "__main__":
    main()
