"""Quickstart: structurize a point cloud and use the two EdgePC
approximations directly.

Runs in a few seconds.  Demonstrates the core public API:

1. :func:`repro.structurize` — Morton-order a cloud;
2. :class:`repro.MortonSampler` — approximate farthest point sampling
   with a uniform stride over the Morton order;
3. :class:`repro.MortonNeighborSearch` — approximate kNN with an index
   window, at a user-chosen accuracy/latency trade-off.
"""

import numpy as np

from repro import MortonNeighborSearch, MortonSampler, structurize
from repro.datasets import bunny_like
from repro.neighbors import false_neighbor_ratio, knn
from repro.sampling import coverage_radius, farthest_point_sample


def main() -> None:
    cloud = bunny_like(8000, seed=0).xyz
    print(f"Loaded a bunny-like cloud with {len(cloud)} points")

    # 1. Structurize: sort the points along the Z-order curve.
    order = structurize(cloud, code_bits=32)
    print(
        f"Morton order built: {order.memory_overhead_bytes / 1024:.0f} "
        "KiB of codes, consecutive ranks are spatial neighbors"
    )

    # 2. Sample 512 points two ways and compare coverage.
    morton = MortonSampler().sample(cloud, 512, order=order)
    fps_idx = farthest_point_sample(cloud, 512, start_index=0)
    print(
        "coverage radius: "
        f"Morton {coverage_radius(cloud, morton.indices):.4f} vs "
        f"FPS {coverage_radius(cloud, fps_idx):.4f} "
        "(lower is better; FPS is the expensive exact baseline)"
    )

    # 3. Neighbor search: exact kNN vs index windows of growing size.
    queries = np.arange(0, len(cloud), 16)
    exact = knn(cloud[queries], cloud, 16)
    print("\nwindow size vs false neighbor ratio (k = 16):")
    for multiplier in (1, 2, 4, 8):
        searcher = MortonNeighborSearch(16, 16 * multiplier)
        approx = searcher.search(cloud, queries, order)
        fnr = false_neighbor_ratio(approx, exact)
        print(
            f"  W = {multiplier:>2}k: FNR {fnr * 100:5.1f}%  "
            f"({searcher.operation_count(len(queries)):,} distance ops "
            f"vs {len(queries) * len(cloud):,} for brute force)"
        )


if __name__ == "__main__":
    main()
