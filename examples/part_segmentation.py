"""Part segmentation with DGCNN on the ShapeNet-like dataset (W4).

Trains two DGCNN(p) models — the exact baseline and the retrained
EdgePC configuration — on synthetic part-labelled objects (lamps,
tables, rockets, mugs) and reports per-part IoU for both, mirroring
the paper's Fig. 14b qualitative comparison.  Runs in ~2 minutes.
"""

import numpy as np

from repro import EdgePCConfig
from repro.datasets import (
    ShapeNetPartLike,
    make_batches,
    train_test_split,
)
from repro.datasets.shapenet import NUM_PARTS
from repro.nn import Adam, DGCNNSegmentation
from repro.nn.autograd import no_grad
from repro.train import Trainer, confusion_matrix

PART_NAMES = ("base", "body", "top", "appendage")


def build_model(config: EdgePCConfig) -> DGCNNSegmentation:
    return DGCNNSegmentation(
        num_classes=NUM_PARTS,
        k=8,
        ec_channels=((16,), (16,), (32,)),
        emb_channels=32,
        head_hidden=32,
        dropout=0.0,
        edgepc=config,
        rng=np.random.default_rng(0),
    )


def per_part_iou(model, batches) -> np.ndarray:
    model.eval()
    predictions, targets = [], []
    with no_grad():
        for batch in batches:
            logits = model(batch.xyz)
            predictions.append(logits.data.argmax(axis=-1).reshape(-1))
            targets.append(batch.labels.reshape(-1))
    model.train()
    matrix = confusion_matrix(
        np.concatenate(predictions),
        np.concatenate(targets),
        NUM_PARTS,
    )
    intersection = np.diag(matrix).astype(float)
    union = (
        matrix.sum(axis=0) + matrix.sum(axis=1) - np.diag(matrix)
    ).astype(float)
    return np.where(union > 0, intersection / np.maximum(union, 1), np.nan)


def main() -> None:
    dataset = ShapeNetPartLike(
        num_clouds=16, points_per_cloud=256, seed=2
    )
    train_idx, test_idx = train_test_split(dataset, 0.25)
    train_b = make_batches(
        dataset, 4, indices=train_idx, per_point_labels=True
    )
    test_b = make_batches(
        dataset, 4, indices=test_idx, per_point_labels=True,
        drop_last=False,
    )

    results = {}
    for name, config in (
        ("baseline", EdgePCConfig.baseline()),
        ("EdgePC", EdgePCConfig(window_multiplier=4)),
    ):
        model = build_model(config)
        trainer = Trainer(model, Adam(model.parameters(), lr=8e-3))
        print(f"training {name} ...")
        trainer.fit(train_b, epochs=20)
        accuracy = trainer.evaluate(test_b).accuracy
        results[name] = (accuracy, per_part_iou(model, test_b))
        print(f"  {name}: test accuracy {accuracy:.3f}")

    print(f"\n{'part':<12}{'baseline IoU':>14}{'EdgePC IoU':>13}")
    for part, name in enumerate(PART_NAMES):
        base_iou = results["baseline"][1][part]
        edge_iou = results["EdgePC"][1][part]
        def fmt(v):
            return "  n/a" if np.isnan(v) else f"{v:5.3f}"
        print(f"{name:<12}{fmt(base_iou):>14}{fmt(edge_iou):>13}")
    drop = results["baseline"][0] - results["EdgePC"][0]
    print(
        f"\naccuracy drop with EdgePC: {drop * 100:+.1f} pp "
        "(paper Fig. 14: within ~2% at full scale)"
    )


if __name__ == "__main__":
    main()
