"""Streaming LiDAR scenario: per-frame EdgePC preprocessing under a
latency budget, on simulated outdoor driving sweeps.

The paper's motivating application (Fig. 1a): an autonomous platform
scans its surroundings and must sample + group every frame before the
CNN can run.  This example simulates a stream of LiDAR sweeps,
shares one quantization grid across all frames (so Morton codes are
comparable frame to frame), and checks each frame's simulated
preprocessing latency against a real-time budget — baseline vs EdgePC.
"""

import numpy as np

from repro import EdgePCConfig, MortonNeighborSearch, MortonSampler
from repro.datasets import KITTILike
from repro.geometry import BoundingBox
from repro.nn.recorder import (
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    StageEvent,
)
from repro.runtime import CostModel, xavier

NUM_FRAMES = 8
POINTS_PER_FRAME = 4096
SAMPLES_PER_FRAME = 512
K = 16
FRAME_BUDGET_MS = 33.3  # 30 FPS


def simulated_latency_ms(cost: CostModel, use_edgepc: bool) -> float:
    """Per-frame sample + neighbor-search latency on the device."""
    if use_edgepc:
        events = [
            StageEvent(STAGE_SAMPLE, "morton_gen", 0,
                       {"n_points": POINTS_PER_FRAME, "batch": 1}),
            StageEvent(STAGE_SAMPLE, "morton_sort", 0,
                       {"n_points": POINTS_PER_FRAME, "batch": 1}),
            StageEvent(STAGE_SAMPLE, "uniform_pick", 0,
                       {"n_samples": SAMPLES_PER_FRAME, "batch": 1}),
            StageEvent(STAGE_NEIGHBOR, "morton_window", 0,
                       {"n_queries": SAMPLES_PER_FRAME,
                        "window": 2 * K, "k": K, "batch": 1}),
        ]
    else:
        events = [
            StageEvent(STAGE_SAMPLE, "fps", 0,
                       {"n_points": POINTS_PER_FRAME,
                        "n_samples": SAMPLES_PER_FRAME, "batch": 1}),
            StageEvent(STAGE_NEIGHBOR, "ball_query", 0,
                       {"n_queries": SAMPLES_PER_FRAME,
                        "n_candidates": POINTS_PER_FRAME, "k": K,
                        "batch": 1}),
        ]
    return sum(cost.price(e) for e in events) * 1e3


def main() -> None:
    # A sequence of outdoor LiDAR sweeps (KITTI-like ray casting).
    frames = KITTILike(
        num_clouds=NUM_FRAMES, points_per_cloud=POINTS_PER_FRAME,
        seed=3,
    )
    # A fixed scene-level grid keeps Morton codes comparable across
    # frames (pass an explicit bounding box instead of per-frame ones).
    scene_box = BoundingBox(
        np.array([-32.0, -32.0, -1.0]), np.array([32.0, 32.0, 10.0])
    )
    sampler = MortonSampler(bounding_box=scene_box)
    searcher = MortonNeighborSearch(K, 2 * K)
    cost = CostModel(xavier())

    base_ms = simulated_latency_ms(cost, use_edgepc=False)
    edge_ms = simulated_latency_ms(cost, use_edgepc=True)
    print(
        f"Simulated per-frame sample+NS latency: baseline "
        f"{base_ms:.1f} ms vs EdgePC {edge_ms:.1f} ms "
        f"(budget {FRAME_BUDGET_MS:.1f} ms @ 30 FPS)"
    )
    print(
        f"baseline {'misses' if base_ms > FRAME_BUDGET_MS else 'meets'}"
        f" the budget; EdgePC "
        f"{'misses' if edge_ms > FRAME_BUDGET_MS else 'meets'} it\n"
    )

    for i, frame in enumerate(frames):
        result = sampler.sample(frame.xyz, SAMPLES_PER_FRAME)
        neighbors = searcher.search(
            frame.xyz, result.indices, result.order
        )
        spread = frame.xyz[result.indices].std(axis=0)
        print(
            f"frame {i}: sampled {len(result)} pts "
            f"(spread {spread[0]:.2f}/{spread[1]:.2f}/{spread[2]:.2f}),"
            f" grouped {neighbors.shape[0]}x{neighbors.shape[1]} "
            "neighborhoods"
        )


if __name__ == "__main__":
    main()
