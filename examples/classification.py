"""Shape classification with DGCNN: baseline vs retrained EdgePC.

The paper's Fig. 14 experiment at laptop scale (~1 minute): train a
small DGCNN classifier on the synthetic ModelNet-like dataset three
ways —

1. baseline (exact kNN everywhere),
2. the baseline weights with EdgePC's approximations swapped in
   *without* retraining (accuracy collapses, Sec. 5.3),
3. retrained with the approximations in the training loop (accuracy
   recovers to within a small drop of the baseline).
"""

import numpy as np

from repro import EdgePCConfig
from repro.datasets import ModelNetLike, make_batches, train_test_split
from repro.nn import DGCNNClassifier
from repro.train import retrain_comparison


def build_model(config: EdgePCConfig) -> DGCNNClassifier:
    return DGCNNClassifier(
        num_classes=4,
        k=8,
        ec_channels=((16,), (16,), (32,)),
        emb_channels=32,
        head_hidden=32,
        dropout=0.2,
        edgepc=config,
        rng=np.random.default_rng(0),
    )


def main() -> None:
    dataset = ModelNetLike(
        num_clouds=48, points_per_cloud=128, num_classes=4, seed=0
    )
    train_idx, test_idx = train_test_split(dataset, 0.25)
    train_batches = make_batches(dataset, 8, indices=train_idx)
    test_batches = make_batches(
        dataset, 4, indices=test_idx, drop_last=False
    )
    print(
        f"Training on {len(train_idx)} clouds, testing on "
        f"{len(test_idx)} (4 shape classes, 128 points each)"
    )

    result = retrain_comparison(
        build_model,
        EdgePCConfig.baseline(),
        EdgePCConfig.paper_default(),
        train_batches,
        test_batches,
        epochs=10,
        lr=5e-3,
    )

    print(f"\nbaseline accuracy:             {result.baseline_accuracy:.3f}")
    print(
        "baseline weights + approx:     "
        f"{result.approx_pretrained_accuracy:.3f}   "
        f"(drop {result.drop_without_retraining * 100:.1f}%)"
    )
    print(
        "retrained with approximations: "
        f"{result.approx_retrained_accuracy:.3f}   "
        f"(drop {result.drop_after_retraining * 100:.1f}%)"
    )
    print(
        "\nThe approximations must be inside the training loop — "
        "exactly the paper's Sec. 5.3 conclusion."
    )


if __name__ == "__main__":
    main()
