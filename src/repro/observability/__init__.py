"""Runtime telemetry: tracing, metrics, and exportable run reports.

Three cooperating pieces, all zero-dependency and thread-safe:

- :class:`Tracer` — hierarchical wall-clock + simulated-cost spans
  with JSONL and Chrome ``trace_event`` exporters
  (:mod:`repro.observability.tracing`);
- :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with Prometheus-text and JSON snapshot exporters
  (:mod:`repro.observability.metrics`);
- :class:`RunReport` — merges spans, metrics, and the profiler's
  breakdown/energy reports into one serializable run summary
  (:mod:`repro.observability.report`).

The wall clock is injectable: :mod:`repro.observability.clock` holds
the one sanctioned ``time.time()`` call (:func:`wall_clock`) plus a
deterministic :class:`FixedClock`; everything that stamps wall time
takes a ``clock=`` parameter (enforced by the DET-202 lint rule).

Instrumented call sites (:class:`~repro.pipeline.EdgePCPipeline`,
:class:`~repro.robustness.guard.GuardedPipeline`,
:class:`~repro.core.streaming.StreamingMortonOrder`,
:class:`~repro.train.trainer.Trainer`) accept optional
``tracer``/``metrics`` arguments and default to the no-op
:data:`NULL_TRACER` / ``None``, so the hot paths stay allocation-free
when telemetry is off.
"""

from repro.observability.clock import Clock, FixedClock, wall_clock
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_prometheus,
    reset_global_registry,
)
from repro.observability.report import (
    RunReport,
    breakdown_to_dict,
    energy_to_dict,
)
from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    emit_stage_spans,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "FixedClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "RunReport",
    "Span",
    "Tracer",
    "breakdown_to_dict",
    "emit_stage_spans",
    "energy_to_dict",
    "global_registry",
    "parse_prometheus",
    "reset_global_registry",
    "wall_clock",
]
