"""Runtime telemetry: tracing, metrics, and exportable run reports.

Three cooperating pieces, all zero-dependency and thread-safe:

- :class:`Tracer` — hierarchical wall-clock + simulated-cost spans
  with JSONL and Chrome ``trace_event`` exporters
  (:mod:`repro.observability.tracing`);
- :class:`MetricsRegistry` — counters, gauges, and fixed-bucket
  histograms with Prometheus-text and JSON snapshot exporters
  (:mod:`repro.observability.metrics`);
- :class:`RunReport` — merges spans, metrics, and the profiler's
  breakdown/energy reports into one serializable run summary
  (:mod:`repro.observability.report`).

PR 7 adds end-to-end request observability on top:

- :class:`TraceContext` — immutable propagation token minted at the
  serving front door and threaded through batching, retries, and
  hedges, so one request's spans stitch into a single cross-replica
  trace (:mod:`repro.observability.context`);
- :class:`SloEngine` — declarative latency/error/goodput objectives
  evaluated over sliding metric windows with multi-window error-budget
  burn-rate alerts (:mod:`repro.observability.slo`);
- :func:`render_dashboard` — deterministic text snapshot of fleet
  health, queues, SLO budgets, and slowest traces, also exposed as
  ``repro dashboard`` (:mod:`repro.observability.dashboard`).

The wall clock is injectable: :mod:`repro.observability.clock` holds
the one sanctioned ``time.time()`` call (:func:`wall_clock`) plus a
deterministic :class:`FixedClock`; everything that stamps wall time
takes a ``clock=`` parameter (enforced by the DET-202 lint rule).

Instrumented call sites (:class:`~repro.pipeline.EdgePCPipeline`,
:class:`~repro.robustness.guard.GuardedPipeline`,
:class:`~repro.core.streaming.StreamingMortonOrder`,
:class:`~repro.train.trainer.Trainer`) accept optional
``tracer``/``metrics`` arguments and default to the no-op
:data:`NULL_TRACER` / ``None``, so the hot paths stay allocation-free
when telemetry is off.
"""

from repro.observability.clock import Clock, FixedClock, wall_clock
from repro.observability.context import TraceContext, mint_trace_id
from repro.observability.dashboard import (
    DashboardData,
    collect_live,
    load_artifacts,
    render_dashboard,
    slowest_traces,
)
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    global_registry,
    parse_prometheus,
    parse_prometheus_series,
    reset_global_registry,
    unescape_label_value,
)
from repro.observability.report import (
    RunReport,
    breakdown_to_dict,
    energy_to_dict,
)
from repro.observability.slo import (
    SloAlert,
    SloEngine,
    SloObjective,
    SloSpec,
    SloStatus,
)
from repro.observability.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    emit_stage_spans,
    find_orphans,
    spans_by_trace,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "DashboardData",
    "FixedClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "RunReport",
    "SloAlert",
    "SloEngine",
    "SloObjective",
    "SloSpec",
    "SloStatus",
    "Span",
    "TraceContext",
    "Tracer",
    "breakdown_to_dict",
    "collect_live",
    "emit_stage_spans",
    "energy_to_dict",
    "escape_label_value",
    "find_orphans",
    "global_registry",
    "load_artifacts",
    "mint_trace_id",
    "parse_prometheus",
    "parse_prometheus_series",
    "render_dashboard",
    "reset_global_registry",
    "slowest_traces",
    "spans_by_trace",
    "unescape_label_value",
    "wall_clock",
]
