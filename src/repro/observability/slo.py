"""Declarative SLOs with sliding windows and burn-rate alerting.

An :class:`SloEngine` turns the raw counters and histograms of a
:class:`~repro.observability.metrics.MetricsRegistry` into *service
level objective* state: each declared :class:`SloObjective` is
evaluated over sliding windows of registry snapshots, producing a
compliance ratio, multi-window **error-budget burn rates** (the SRE
fast-burn/slow-burn pattern: alert only when both the short and the
long window burn faster than the threshold, so a single slow batch
can't page but a sustained regression can't hide), a lifetime
**budget-remaining** figure the CI gate fails on, and typed
:class:`SloAlert` events.

Three objective kinds share one budget algebra — every objective
defines a *bad fraction* ``b`` over a window and an *allowed
fraction* ``A``; ``burn = b / A``:

- ``latency_quantile`` — "``quantile`` of requests finish within
  ``target`` seconds", read from a latency histogram's bucket deltas
  (``A = 1 - quantile``).  The histogram's exemplars then link a
  burning bucket to a concrete trace id.
- ``error_rate`` — "at most ``target`` of requests fail", from
  good/bad counter deltas (``A = target``).
- ``goodput`` — "sustain ``quantile * target`` good requests/second"
  (``A = 1 - quantile``; ``b`` is the shortfall fraction vs
  ``target``).

Everything is deterministic: the engine reads the injectable clock it
was built with, so a virtual-time load run ticking the engine at
event times produces byte-identical SLO reports per seed.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability.clock import Clock, wall_clock
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Supported objective kinds.
KINDS = ("latency_quantile", "error_rate", "goodput")

#: Schema marker for saved specs/reports.
SPEC_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective (see the module doc for semantics).

    Attributes:
        name: unique objective id (used as the metric label).
        kind: one of :data:`KINDS`.
        target: kind-specific threshold — seconds for
            ``latency_quantile``, max failure ratio for
            ``error_rate``, required good requests/second for
            ``goodput``.
        quantile: required compliance ratio (``latency_quantile``,
            ``goodput``); unused for ``error_rate``.
        metric: latency histogram name (``latency_quantile``).
        good_metric: success counter name (``error_rate``,
            ``goodput``).
        bad_metrics: failure counter names, summed (``error_rate``).
        short_window_s / long_window_s: the two burn windows.
        burn_threshold: both windows must burn at or above this
            multiple of the allowed rate to raise an alert.
        description: free-form note carried into reports.
    """

    name: str
    kind: str
    target: float
    quantile: float = 0.95
    metric: str = "serving_request_latency_seconds"
    good_metric: str = "serving_fleet_completed_total"
    bad_metrics: Tuple[str, ...] = (
        "serving_fleet_failed_total",
        "serving_fleet_expired_total",
    )
    short_window_s: float = 0.5
    long_window_s: float = 2.0
    burn_threshold: float = 2.0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}")
        if self.target <= 0:
            raise ValueError("target must be positive")
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be within (0, 1)")
        if self.kind == "error_rate" and not self.target < 1.0:
            raise ValueError("error_rate target must be below 1")
        if self.short_window_s <= 0 or self.long_window_s <= 0:
            raise ValueError("windows must be positive")
        if self.short_window_s > self.long_window_s:
            raise ValueError(
                "short_window_s must not exceed long_window_s"
            )
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")

    @property
    def allowed_fraction(self) -> float:
        """The error budget ``A``: tolerated bad fraction."""
        if self.kind == "error_rate":
            return self.target
        return 1.0 - self.quantile

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "quantile": self.quantile,
            "metric": self.metric,
            "good_metric": self.good_metric,
            "bad_metrics": list(self.bad_metrics),
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "burn_threshold": self.burn_threshold,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SloObjective":
        known = dict(data)
        bad = known.pop("bad_metrics", None)
        kwargs: Dict[str, object] = {
            key: known[key]
            for key in (
                "name", "kind", "target", "quantile", "metric",
                "good_metric", "short_window_s", "long_window_s",
                "burn_threshold", "description",
            )
            if key in known
        }
        if bad is not None:
            kwargs["bad_metrics"] = tuple(bad)
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SloSpec:
    """A named set of objectives, JSON-serializable for committing
    next to the CI gates (see ``SLO_serving.json``)."""

    objectives: Tuple[SloObjective, ...]
    name: str = "serving"

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError("a spec needs at least one objective")
        names = [objective.name for objective in self.objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "name": self.name,
            "objectives": [
                objective.to_dict() for objective in self.objectives
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SloSpec":
        version = data.get("schema_version", SPEC_SCHEMA_VERSION)
        if version != SPEC_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported SLO spec schema_version {version!r}"
            )
        return cls(
            name=str(data.get("name", "serving")),
            objectives=tuple(
                SloObjective.from_dict(entry)
                for entry in data["objectives"]  # type: ignore[union-attr]
            ),
        )

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SloSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class SloAlert:
    """One burn-rate alert (both windows over the threshold)."""

    t_s: float
    objective: str
    kind: str
    burn_short: float
    burn_long: float
    short_window_s: float
    long_window_s: float
    threshold: float
    message: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "t_s": self.t_s,
            "objective": self.objective,
            "kind": self.kind,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "short_window_s": self.short_window_s,
            "long_window_s": self.long_window_s,
            "threshold": self.threshold,
            "message": self.message,
        }


@dataclass
class SloStatus:
    """Evaluation snapshot of one objective at one instant.

    ``NaN`` fields mean *no data in the window* — deliberately not a
    healthy 0.0 (the same bug class as the empty-histogram quantile).
    """

    objective: str
    kind: str
    t_s: float
    compliance: float
    burn_short: float
    burn_long: float
    budget_remaining: float
    events: float
    alerting: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "objective": self.objective,
            "kind": self.kind,
            "t_s": self.t_s,
            "compliance": self.compliance,
            "burn_short": self.burn_short,
            "burn_long": self.burn_long,
            "budget_remaining": self.budget_remaining,
            "events": self.events,
            "alerting": self.alerting,
        }


@dataclass
class _Frame:
    """One extracted registry frame: counters summed by name,
    histograms merged by name into (buckets, cumulative, count)."""

    counters: Dict[str, float]
    hists: Dict[str, Tuple[Tuple[float, ...], List[int], int]]


class SloEngine:
    """Evaluates an :class:`SloSpec` against a live registry.

    Args:
        spec: the objectives to track.
        registry: the registry the serving stack writes into; the
            engine both reads raw series from it and publishes
            ``slo_*`` gauges/counters back into it.
        clock: injectable time source (share the serving stack's
            :class:`~repro.observability.clock.FixedClock` for
            deterministic virtual-time evaluation).
        min_tick_interval_s: ticks arriving closer together than this
            are coalesced (the virtual event loop ticks at every
            event; the engine only needs window-resolution samples).
    """

    def __init__(
        self,
        spec: SloSpec,
        registry: MetricsRegistry,
        clock: Clock = wall_clock,
        min_tick_interval_s: float = 0.05,
    ) -> None:
        self.spec = spec
        self.registry = registry
        self.clock = clock
        self.min_tick_interval_s = float(min_tick_interval_s)
        self.alerts: List[SloAlert] = []
        self._alerting: Dict[str, bool] = {
            objective.name: False for objective in spec.objectives
        }
        self._frames: Deque[Tuple[float, _Frame]] = deque()
        self._horizon = max(
            objective.long_window_s for objective in spec.objectives
        )
        start = self.clock()
        self._baseline: Tuple[float, _Frame] = (
            start, self._extract()
        )
        self._frames.append(self._baseline)

    # Frame extraction ------------------------------------------------

    def _needed_names(self) -> Tuple[set, set]:
        counters = set()
        histograms = set()
        for objective in self.spec.objectives:
            if objective.kind == "latency_quantile":
                histograms.add(objective.metric)
            else:
                counters.add(objective.good_metric)
                counters.update(objective.bad_metrics)
        return counters, histograms

    def _extract(self) -> _Frame:
        counter_names, histogram_names = self._needed_names()
        frame = _Frame(counters={}, hists={})
        for (name, _labels), metric in self.registry.items():
            if name in counter_names and isinstance(
                metric, (Counter, Gauge)
            ):
                frame.counters[name] = frame.counters.get(
                    name, 0.0
                ) + float(metric.value)
            elif name in histogram_names and isinstance(
                metric, Histogram
            ):
                cumulative = metric.cumulative_counts()
                held = frame.hists.get(name)
                if held is None:
                    frame.hists[name] = (
                        metric.buckets,
                        list(cumulative),
                        metric.count,
                    )
                else:
                    buckets, counts, total = held
                    frame.hists[name] = (
                        buckets,
                        [a + b for a, b in zip(counts, cumulative)],
                        total + metric.count,
                    )
        return frame

    # Windows ---------------------------------------------------------

    def _frame_at(self, cutoff: float) -> Tuple[float, _Frame]:
        """Newest frame at or before ``cutoff`` (the engine baseline
        when the run is younger than the window)."""
        chosen = self._frames[0]
        for t, frame in self._frames:
            if t <= cutoff:
                chosen = (t, frame)
            else:
                break
        return chosen

    @staticmethod
    def _counter_delta(
        then: _Frame, now_frame: _Frame, name: str
    ) -> float:
        return now_frame.counters.get(name, 0.0) - then.counters.get(
            name, 0.0
        )

    @staticmethod
    def _latency_window(
        then: _Frame, now_frame: _Frame, name: str, target: float
    ) -> Tuple[float, float]:
        """``(good, total)`` sample counts within the window for a
        latency histogram, where *good* approximates samples at or
        under ``target`` via the first bucket bound >= target."""
        now_entry = now_frame.hists.get(name)
        if now_entry is None:
            return 0.0, 0.0
        buckets, now_counts, now_total = now_entry
        then_entry = then.hists.get(name)
        if then_entry is None:
            then_counts: List[int] = [0] * len(now_counts)
            then_total = 0
        else:
            _, then_counts, then_total = then_entry
        total = float(now_total - then_total)
        if total <= 0:
            return 0.0, 0.0
        index = bisect_left(list(buckets), target)
        index = min(index, len(now_counts) - 1)
        good = float(now_counts[index] - then_counts[index])
        return good, total

    def _bad_fraction(
        self,
        objective: SloObjective,
        then_t: float,
        then: _Frame,
        now_t: float,
        now_frame: _Frame,
    ) -> Tuple[float, float]:
        """``(bad_fraction, events)`` over one window; NaN fraction
        when the window holds no signal."""
        if objective.kind == "latency_quantile":
            good, total = self._latency_window(
                then, now_frame, objective.metric, objective.target
            )
            if total <= 0:
                return float("nan"), 0.0
            return 1.0 - good / total, total
        good = self._counter_delta(
            then, now_frame, objective.good_metric
        )
        bad = sum(
            self._counter_delta(then, now_frame, name)
            for name in objective.bad_metrics
        )
        if objective.kind == "error_rate":
            total = good + bad
            if total <= 0:
                return float("nan"), 0.0
            return bad / total, total
        # goodput: shortfall of the good-event rate vs target.
        elapsed = now_t - then_t
        if elapsed <= 0:
            return float("nan"), 0.0
        rate = good / elapsed
        shortfall = max(0.0, 1.0 - rate / objective.target)
        return shortfall, good

    # Public API ------------------------------------------------------

    def tick(self, now: Optional[float] = None) -> List[SloAlert]:
        """Snapshot the registry and evaluate every objective.

        Returns the alerts *raised by this tick* (transitions into
        the alerting state); all alerts accumulate on :attr:`alerts`.
        Publishes ``slo_compliance_ratio``, ``slo_burn_rate``,
        ``slo_budget_remaining_ratio`` gauges and an
        ``slo_alerts_total`` counter back into the registry.
        """
        if now is None:
            now = self.clock()
        last_t = self._frames[-1][0]
        if (
            len(self._frames) > 1
            and now - last_t < self.min_tick_interval_s
        ):
            return []
        self._frames.append((now, self._extract()))
        # Trim to the window horizon; frames[0] stays the newest
        # frame old enough to anchor the longest window.  Lifetime
        # budgets read self._baseline, which is kept separately.
        keep_from = now - 2.0 * self._horizon
        while len(self._frames) > 2 and self._frames[1][0] <= keep_from:
            self._frames.popleft()
        raised: List[SloAlert] = []
        for status in self.evaluate(now):
            self._publish(status)
            was = self._alerting[status.objective]
            self._alerting[status.objective] = status.alerting
            if status.alerting and not was:
                objective = self._objective(status.objective)
                alert = SloAlert(
                    t_s=now,
                    objective=objective.name,
                    kind=objective.kind,
                    burn_short=status.burn_short,
                    burn_long=status.burn_long,
                    short_window_s=objective.short_window_s,
                    long_window_s=objective.long_window_s,
                    threshold=objective.burn_threshold,
                    message=(
                        f"{objective.name}: burn "
                        f"{status.burn_long:.2f}x over "
                        f"{objective.long_window_s:g}s and "
                        f"{status.burn_short:.2f}x over "
                        f"{objective.short_window_s:g}s (threshold "
                        f"{objective.burn_threshold:g}x)"
                    ),
                )
                self.alerts.append(alert)
                raised.append(alert)
                self.registry.counter(
                    "slo_alerts_total", objective=objective.name
                ).inc()
        return raised

    def _objective(self, name: str) -> SloObjective:
        for objective in self.spec.objectives:
            if objective.name == name:
                return objective
        raise KeyError(name)

    def evaluate(self, now: Optional[float] = None) -> List[SloStatus]:
        """Pure evaluation against the frames already collected."""
        if now is None:
            now = self.clock()
        now_t, now_frame = self._frames[-1]
        statuses: List[SloStatus] = []
        for objective in self.spec.objectives:
            windows: Dict[str, Tuple[float, float]] = {}
            for label, window_s in (
                ("short", objective.short_window_s),
                ("long", objective.long_window_s),
            ):
                then_t, then = self._frame_at(now_t - window_s)
                windows[label] = self._bad_fraction(
                    objective, then_t, then, now_t, now_frame
                )
            allowed = objective.allowed_fraction
            burns = {
                label: (
                    float("nan")
                    if math.isnan(bad)
                    else bad / allowed
                )
                for label, (bad, _) in windows.items()
            }
            base_t, base = self._baseline
            life_bad, life_events = self._bad_fraction(
                objective, base_t, base, now_t, now_frame
            )
            if math.isnan(life_bad):
                budget = float("nan")
            else:
                budget = 1.0 - (life_bad / allowed)
            long_bad, long_events = windows["long"]
            alerting = (
                not math.isnan(burns["short"])
                and not math.isnan(burns["long"])
                and burns["short"] >= objective.burn_threshold
                and burns["long"] >= objective.burn_threshold
            )
            statuses.append(
                SloStatus(
                    objective=objective.name,
                    kind=objective.kind,
                    t_s=now_t,
                    compliance=(
                        float("nan")
                        if math.isnan(long_bad)
                        else 1.0 - long_bad
                    ),
                    burn_short=burns["short"],
                    burn_long=burns["long"],
                    budget_remaining=budget,
                    events=long_events,
                    alerting=alerting,
                )
            )
        return statuses

    def _publish(self, status: SloStatus) -> None:
        labels = {"objective": status.objective}
        if not math.isnan(status.compliance):
            self.registry.gauge(
                "slo_compliance_ratio", **labels
            ).set(status.compliance)
        if not math.isnan(status.burn_long):
            self.registry.gauge(
                "slo_burn_rate", window="long", **labels
            ).set(status.burn_long)
        if not math.isnan(status.burn_short):
            self.registry.gauge(
                "slo_burn_rate", window="short", **labels
            ).set(status.burn_short)
        if not math.isnan(status.budget_remaining):
            self.registry.gauge(
                "slo_budget_remaining_ratio", **labels
            ).set(status.budget_remaining)

    def exhausted(self) -> List[str]:
        """Objectives whose lifetime error budget is spent."""
        return [
            status.objective
            for status in self.evaluate()
            if not math.isnan(status.budget_remaining)
            and status.budget_remaining <= 0.0
        ]

    def report(self, now: Optional[float] = None) -> Dict[str, object]:
        """JSON-serializable SLO report (the ``slo_report.json``
        artifact the CI job uploads and the dashboard renders)."""
        statuses = self.evaluate(now)
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "spec": self.spec.name,
            "objectives": [status.to_dict() for status in statuses],
            "alerts": [alert.to_dict() for alert in self.alerts],
            "exhausted": [
                status.objective
                for status in statuses
                if not math.isnan(status.budget_remaining)
                and status.budget_remaining <= 0.0
            ],
        }

    def save_report(
        self, path: str, now: Optional[float] = None
    ) -> None:
        with open(path, "w") as fh:
            json.dump(
                self.report(now), fh, indent=1, sort_keys=True
            )
            fh.write("\n")
