"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe, zero-dependency metric
store modelled on the Prometheus client data model, sized for this
library's needs: instruments are created on first use
(``registry.counter("guard_trips_total", stage="sampling").inc()``),
identified by name plus a sorted label set, and exported either as a
JSON snapshot (:meth:`MetricsRegistry.snapshot`) or as Prometheus text
exposition (:meth:`MetricsRegistry.to_prometheus`).

The instrumented hot paths (pipeline, guard, streaming) all take an
``Optional[MetricsRegistry]`` and skip every metric update when it is
``None``, so metrics — like tracing — are off-by-default-cheap.  A
process-wide default registry is available through
:func:`global_registry` for CLI commands and long-lived services.
"""

from __future__ import annotations

import json
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

#: Default latency buckets (seconds), Prometheus-style.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def escape_label_value(value: str) -> str:
    """Prometheus text-exposition escaping for a label value:
    backslash, double quote, and newline (in that order, so escapes
    are not themselves re-escaped)."""
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep it verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def _format_labels(items: LabelItems, extra: str = "") -> str:
    parts = [f'{k}="{escape_label_value(v)}"' for k, v in items]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``counts[i]`` is *non-cumulative* internally and
    cumulated at export time.

    Each bucket keeps one **exemplar** — the ``(trace_id, value)`` of
    its largest observation passed with a trace id — so a bad tail
    bucket links directly to the trace that produced it
    (OpenMetrics-style; see ``docs/observability.md``).
    """

    kind = "histogram"

    def __init__(
        self,
        lock: threading.Lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a sorted non-empty tuple")
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(
        self, value: float, trace_id: Optional[str] = None
    ) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if trace_id:
                held = self.exemplars.get(index)
                if held is None or value > held[1]:
                    self.exemplars[index] = (trace_id, value)

    def cumulative_counts(self) -> List[int]:
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate (``NaN`` with no
        samples).

        An empty histogram has no quantiles: returning a number here
        (historically ``0.0``) let idle runs sail through latency
        gates, so absence is now explicit and gates must check
        ``math.isnan`` (the chaos/bench CLIs fail loudly instead).
        The tail (+Inf) bucket reports its lower bound — the estimate
        saturates at the largest finite bucket boundary.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return float("nan")
            target = q * self.count
            cumulative = 0
            for i, c in enumerate(self.counts):
                lower = self.buckets[i - 1] if i > 0 else 0.0
                upper = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else self.buckets[-1]
                )
                if cumulative + c >= target:
                    if c == 0 or i >= len(self.buckets):
                        return upper
                    frac = (target - cumulative) / c
                    return lower + (upper - lower) * frac
                cumulative += c
            return self.buckets[-1]

    def exemplar_for_quantile(
        self, q: float
    ) -> Optional[Tuple[str, float]]:
        """The ``(trace_id, value)`` exemplar nearest the ``q``-th
        quantile's bucket, preferring higher buckets (the slow tail is
        what an exemplar is for); ``None`` when no exemplar exists.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if not self.exemplars:
                return None
            if self.count == 0:
                index = 0
            else:
                target = q * self.count
                cumulative = 0
                index = len(self.counts) - 1
                for i, c in enumerate(self.counts):
                    if cumulative + c >= target:
                        index = i
                        break
                    cumulative += c
            above = [i for i in self.exemplars if i >= index]
            chosen = min(above) if above else max(self.exemplars)
            return self.exemplars[chosen]

    @property
    def value(self) -> float:
        return self.sum


class MetricsRegistry:
    """Thread-safe named-instrument store with two exporters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}

    def _get(self, name: str, labels: Dict[str, str], factory, kind):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = self._metrics[key] = factory()
            elif metric.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{metric.kind}, not {kind}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(
            name, labels, lambda: Counter(self._lock), "counter"
        )

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(
            name, labels, lambda: Gauge(self._lock), "gauge"
        )

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            name, labels,
            lambda: Histogram(self._lock, buckets), "histogram",
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def items(self) -> List[Tuple[Tuple[str, LabelItems], object]]:
        """Stable-ordered snapshot of ``((name, labels), metric)``
        pairs (the SLO engine's raw-series reader)."""
        with self._lock:
            return sorted(self._metrics.items())

    # Exporters -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """JSON-serializable dump of every instrument.

        ``{"metrics": [{"name", "kind", "labels", ...payload}]}``,
        sorted by (name, labels) so snapshots diff cleanly.
        """
        with self._lock:
            items = sorted(self._metrics.items())
        out: List[Dict[str, object]] = []
        for (name, labels), metric in items:
            entry: Dict[str, object] = {
                "name": name,
                "kind": metric.kind,
                "labels": dict(labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = list(metric.counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
                if metric.exemplars:
                    entry["exemplars"] = {
                        str(index): [trace_id, value]
                        for index, (trace_id, value) in sorted(
                            metric.exemplars.items()
                        )
                    }
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"metrics": out}

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output."""
        registry = cls()
        for entry in data["metrics"]:
            labels = dict(entry["labels"])
            kind = entry["kind"]
            if kind == "counter":
                registry.counter(entry["name"], **labels).inc(
                    entry["value"]
                )
            elif kind == "gauge":
                registry.gauge(entry["name"], **labels).set(
                    entry["value"]
                )
            elif kind == "histogram":
                hist = registry.histogram(
                    entry["name"], tuple(entry["buckets"]), **labels
                )
                hist.counts = list(entry["counts"])
                hist.sum = entry["sum"]
                hist.count = entry["count"]
                hist.exemplars = {
                    int(index): (str(pair[0]), float(pair[1]))
                    for index, pair in entry.get(
                        "exemplars", {}
                    ).items()
                }
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry

    def export_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        with self._lock:
            items = sorted(self._metrics.items())
        lines: List[str] = []
        seen_types = set()
        for (name, labels), metric in items:
            if name not in seen_types:
                lines.append(f"# TYPE {name} {metric.kind}")
                seen_types.add(name)
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                bounds = [repr(b) for b in metric.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    label_str = _format_labels(
                        labels, f'le="{bound}"'
                    )
                    lines.append(f"{name}_bucket{label_str} {count}")
                label_str = _format_labels(labels)
                lines.append(f"{name}_sum{label_str} {metric.sum!r}")
                lines.append(f"{name}_count{label_str} {metric.count}")
            else:
                label_str = _format_labels(labels)
                lines.append(f"{name}{label_str} {metric.value!r}")
        return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse :meth:`MetricsRegistry.to_prometheus` output back into a
    flat ``{"name{labels}": value}`` map (for round-trip tests and
    quick assertions; not a general Prometheus parser).  Label values
    keep their exposition escaping (``\\n`` stays two characters);
    :func:`parse_prometheus_series` decodes them.
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        samples[key] = float(raw)
    return samples


#: One label assignment inside ``{...}``: key="value with escapes".
_LABEL_RE = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_series(
    text: str,
) -> Dict[Tuple[str, LabelItems], float]:
    """Fully decoded parse of :meth:`MetricsRegistry.to_prometheus`
    output: ``{(name, ((label, value), ...)): sample}`` with label
    values unescaped, so series written with ``\\``, ``"``, or
    newlines in a label round-trip to their original strings.
    """
    series: Dict[Tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        name, brace, labels_part = key.partition("{")
        items: LabelItems = ()
        if brace:
            if not labels_part.endswith("}"):
                raise ValueError(f"malformed sample line: {line!r}")
            items = tuple(
                (match.group(1), unescape_label_value(match.group(2)))
                for match in _LABEL_RE.finditer(labels_part[:-1])
            )
        series[(name, items)] = float(raw)
    return series


_GLOBAL = MetricsRegistry()
_GLOBAL_LOCK = threading.Lock()


def global_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def reset_global_registry() -> MetricsRegistry:
    """Swap in a fresh global registry (tests, CLI runs); returns it."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        _GLOBAL = MetricsRegistry()
        return _GLOBAL
