"""Trace-context propagation for cross-thread, cross-replica requests.

A :class:`TraceContext` is the W3C-trace-context analogue for this
stack: an immutable ``(trace_id, span_id, baggage)`` triple minted at
the serving front door (:meth:`~repro.serving.server.InferenceServer.
submit` / :meth:`~repro.serving.fleet.ServerFleet.submit`) and carried
on every :class:`~repro.serving.queue.ServingRequest` through the
micro-batcher, worker threads, retries, and hedged attempts.  Spans
opened *with* a context parent under it instead of the thread-local
stack, so one request's spans stitch into a single trace even when
they run on different replicas' worker threads.

``trace_id`` is derived from the request id, not from randomness, so a
virtual-time run at a fixed seed exports byte-identical traces
(see ``docs/observability.md``).

Baggage is a small immutable string map (tenant, request_id, attempt)
that rides along for span attribution; it is deliberately tiny — the
context is copied per attempt on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

BaggageItems = Tuple[Tuple[str, str], ...]


def mint_trace_id(request_id: str) -> str:
    """Deterministic trace id for a request id (``trace-<rid>``)."""
    return f"trace-{request_id}"


@dataclass(frozen=True)
class TraceContext:
    """Immutable propagation token for one request's trace.

    Attributes:
        trace_id: the request's trace identifier, shared by every span
            the request touches on any replica.
        span_id: the id of the span new children should parent to
            (the request's root span at mint time; an attempt span
            after :meth:`child`).
        baggage: sorted ``(key, value)`` string pairs carried with the
            context (``tenant``, ``request_id``, ``attempt``, ...).
        is_root: ``True`` only on the context returned by
            :meth:`mint`.  Whoever minted the context owns the
            request's root span and emits it at the terminal state;
            :meth:`child` contexts never do, so a fleet-minted trace
            is closed by the fleet even when the last attempt resolves
            inside a replica's server.
    """

    trace_id: str
    span_id: int
    baggage: BaggageItems = field(default=())
    is_root: bool = False

    @classmethod
    def mint(
        cls, request_id: str, span_id: int, **baggage: str
    ) -> "TraceContext":
        """New root context for ``request_id``.

        ``span_id`` is the pre-allocated id of the request's root span
        (emitted at the request's terminal state), so children created
        before the root span is written still parent correctly.
        """
        items = dict(baggage)
        items.setdefault("request_id", request_id)
        return cls(
            trace_id=mint_trace_id(request_id),
            span_id=span_id,
            baggage=tuple(sorted(items.items())),
            is_root=True,
        )

    def child(self, span_id: int) -> "TraceContext":
        """Same trace, re-anchored on ``span_id`` (an attempt span)."""
        return replace(self, span_id=span_id, is_root=False)

    def with_baggage(self, **items: str) -> "TraceContext":
        """Copy with ``items`` merged into the baggage."""
        merged: Dict[str, str] = dict(self.baggage)
        merged.update({k: str(v) for k, v in items.items()})
        return replace(self, baggage=tuple(sorted(merged.items())))

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """Baggage lookup."""
        for k, v in self.baggage:
            if k == key:
                return v
        return default

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "baggage": dict(self.baggage),
            "is_root": self.is_root,
        }
