"""Injectable wall-clock shim — the one sanctioned wall-clock read.

Everything outside this module that wants the current Unix time takes
a ``clock`` callable defaulting to :func:`wall_clock`, so tests,
replay tooling, and deterministic artifact builds can pin time with a
:class:`FixedClock`.  The DET-202 lint rule (see
``docs/static_analysis.md``) enforces that no other module calls
``time.time()`` / ``datetime.now()`` directly.
"""

from __future__ import annotations

import time
from typing import Callable

#: A wall-clock source: a zero-argument callable returning Unix
#: seconds as a float.
Clock = Callable[[], float]


def wall_clock() -> float:
    """Unix time from the system clock."""
    return time.time()


class FixedClock:
    """Deterministic :data:`Clock` for tests and replay.

    Returns the same instant until :meth:`advance` moves it, so
    artifacts built under a ``FixedClock`` are byte-identical across
    runs.
    """

    def __init__(self, at: float = 0.0) -> None:
        self._at = float(at)

    def __call__(self) -> float:
        return self._at

    def advance(self, seconds: float) -> None:
        """Move the clock forward (negative values move it back)."""
        self._at += seconds
