"""Hierarchical span tracing for pipeline runs.

A :class:`Tracer` records two kinds of spans:

- **wall-clock spans** — opened with the :meth:`Tracer.span` context
  manager around real work (sanitization, a forward pass, a guard
  probe).  Nesting follows the call stack per thread.
- **simulated spans** — appended with :meth:`Tracer.emit` from
  already-priced cost-model seconds (a
  :class:`~repro.runtime.profiler.StageBreakdown`), laid out on a
  separate ``simulated`` track so the paper's latency story (Figs. 3,
  9, 13) is visible next to the host's actual timing.

Two exporters ship: newline-delimited JSON (:meth:`Tracer.export_jsonl`)
for programmatic diffing, and the Chrome ``trace_event`` format
(:meth:`Tracer.export_chrome`) so a run opens directly in
``chrome://tracing`` / Perfetto.

Tracing is **off by default** on every instrumented hot path: the
module-level :data:`NULL_TRACER` (a ``Tracer(enabled=False)``) returns
one shared no-op span object from :meth:`Tracer.span`, so a disabled
pipeline performs no tracer-side allocation per batch
(``tests/test_observability.py`` asserts this with ``tracemalloc``).

The tracer is thread-safe: the open-span stack is thread-local and the
finished-span list is lock-protected.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional, Tuple


class Span:
    """One finished or in-flight traced region.

    Attributes:
        name: span label (e.g. ``"pipeline.infer"``).
        category: coarse grouping used as the Chrome ``cat`` field
          (e.g. ``"pipeline"``, ``"guard"``, ``"stage"``).
        start_s: start offset in seconds from the tracer's epoch.
        duration_s: wall-clock duration (or the priced duration for
          simulated spans).
        cost_s: simulated cost-model seconds attributed to the span
          (``add_cost``); for simulated spans equals ``duration_s``.
        attrs: op/stage attributes (``set``).
        simulated: True when the span carries cost-model time, not
          wall-clock time.
    """

    __slots__ = (
        "name", "category", "span_id", "parent_id", "thread",
        "start_s", "duration_s", "cost_s", "attrs", "simulated",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        thread: str,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.start_s = 0.0
        self.duration_s = 0.0
        self.cost_s = 0.0
        self.attrs: Dict[str, object] = {}
        self.simulated = False

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def add_cost(self, seconds: float) -> None:
        """Accumulate simulated cost-model seconds onto the span."""
        self.cost_s += seconds

    # Context-manager protocol (wall-clock spans only).

    def __enter__(self) -> "Span":
        self.start_s = time.perf_counter() - self._tracer._epoch
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = (
            time.perf_counter() - self._tracer._epoch - self.start_s
        )
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, object]:
        """JSONL record of the span."""
        return {
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "thread": self.thread,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "cost_s": self.cost_s,
            "simulated": self.simulated,
            "attrs": self.attrs,
        }

    def to_chrome_event(self) -> Dict[str, object]:
        """Chrome ``trace_event`` "complete" (``ph: X``) record."""
        args = dict(self.attrs)
        if self.cost_s:
            args["cost_s"] = self.cost_s
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "pid": 0,
            "tid": "simulated" if self.simulated else self.thread,
            "ts": round(self.start_s * 1e6, 3),
            "dur": round(self.duration_s * 1e6, 3),
            "args": args,
        }


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass

    def add_cost(self, seconds: float) -> None:
        pass


#: The singleton no-op span; identity-checked by the overhead tests.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one run.

    Args:
        enabled: when False, :meth:`span` returns the shared
            :data:`NULL_SPAN` and :meth:`emit` does nothing — the
            instrumented code paths pay only an attribute check.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: List[Span] = []
        self._next_id = 1
        self._sim_cursor = 0.0

    # Span bookkeeping ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    def span(self, name: str, category: str = "run"):
        """Open a wall-clock span (use as a context manager)."""
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            self, name, category, span_id, parent,
            threading.current_thread().name,
        )

    def emit(
        self,
        name: str,
        duration_s: float,
        category: str = "stage",
        start_s: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> float:
        """Append a pre-priced simulated span; returns its start offset.

        Spans land on the ``simulated`` track.  Without an explicit
        ``start_s`` the span is placed at the track cursor, which then
        advances — successive :meth:`emit` calls tile left to right.
        An explicit ``start_s`` places the span without moving the
        cursor (used to nest per-layer spans inside a stage span).
        """
        if not self.enabled:
            return 0.0
        with self._lock:
            if start_s is None:
                start_s = self._sim_cursor
                self._sim_cursor = start_s + duration_s
            span_id = self._next_id
            self._next_id += 1
            span = Span(self, name, category, span_id, None, "simulated")
            span.start_s = start_s
            span.duration_s = duration_s
            span.cost_s = duration_s
            span.simulated = True
            if attrs:
                span.attrs.update(attrs)
            self._finished.append(span)
        return start_s

    def finished(self) -> Tuple[Span, ...]:
        """Snapshot of the completed spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._sim_cursor = 0.0

    # Exporters -------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` document (a JSON object)."""
        return {
            "traceEvents": [
                s.to_chrome_event() for s in self.finished()
            ],
            "displayTimeUnit": "ms",
        }

    def export_chrome(self, path: str) -> None:
        """Write a ``chrome://tracing`` / Perfetto-loadable file."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def export_jsonl(self, path: str) -> None:
        """Write one JSON span record per line."""
        with open(path, "w") as fh:
            for span in self.finished():
                fh.write(json.dumps(span.to_dict(), sort_keys=True))
                fh.write("\n")


#: Shared disabled tracer: the default on every instrumented hot path.
NULL_TRACER = Tracer(enabled=False)


def emit_stage_spans(tracer: Tracer, breakdown) -> None:
    """Lay a priced :class:`StageBreakdown` out on the simulated track.

    Emits one span per pipeline stage (``sample``, ``neighbor_search``,
    ``grouping``, ``feature_compute``) with that stage's per-layer
    spans nested inside it, in recorder-event order
    (``per_layer_s`` is insertion-ordered, so the layout is
    deterministic across runs).
    """
    if not tracer.enabled:
        return
    stages = (
        ("sample", breakdown.sample_s),
        ("neighbor_search", breakdown.neighbor_s),
        ("grouping", breakdown.grouping_s),
        ("feature_compute", breakdown.feature_s),
    )
    per_layer = breakdown.per_layer_s
    for stage, seconds in stages:
        start = tracer.emit(
            stage, seconds, category="stage",
            attrs={"stage": stage},
        )
        offset = start
        for key, layer_s in per_layer.items():
            if not key.startswith(f"{stage}["):
                continue
            tracer.emit(
                key, layer_s, category="layer", start_s=offset,
                attrs={"stage": stage},
            )
            offset += layer_s
