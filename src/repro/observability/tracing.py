"""Hierarchical span tracing for pipeline runs.

A :class:`Tracer` records two kinds of spans:

- **wall-clock spans** — opened with the :meth:`Tracer.span` context
  manager around real work (sanitization, a forward pass, a guard
  probe).  Nesting follows the call stack per thread.
- **simulated spans** — appended with :meth:`Tracer.emit` from
  already-priced cost-model seconds (a
  :class:`~repro.runtime.profiler.StageBreakdown`), laid out on a
  separate ``simulated`` track so the paper's latency story (Figs. 3,
  9, 13) is visible next to the host's actual timing.

Two exporters ship: newline-delimited JSON (:meth:`Tracer.export_jsonl`)
for programmatic diffing, and the Chrome ``trace_event`` format
(:meth:`Tracer.export_chrome`) so a run opens directly in
``chrome://tracing`` / Perfetto.

Tracing is **off by default** on every instrumented hot path: the
module-level :data:`NULL_TRACER` (a ``Tracer(enabled=False)``) returns
one shared no-op span object from :meth:`Tracer.span`, so a disabled
pipeline performs no tracer-side allocation per batch
(``tests/test_observability.py`` asserts this with ``tracemalloc``).

The tracer is thread-safe: the open-span stack is thread-local and the
finished-span list is lock-protected.

**Trace stitching.**  Spans optionally carry a ``trace_id`` plus
cross-trace ``links``.  A span opened with an explicit
:class:`~repro.observability.context.TraceContext` parents under the
context's span id instead of the thread-local stack, which is how one
serving request's spans stay stitched across worker threads and
replicas; :meth:`Tracer.emit_span` writes a span with explicit
timing/parentage (the serving layer uses it to project per-request
``queue -> batch -> kernel-stage`` trees at completion time).  A
:class:`Tracer` built with an injected ``clock`` stamps spans from
that clock, so virtual-time runs export byte-identical traces per
seed.  :func:`find_orphans` checks the stitching invariant: no
exported span may reference a parent id that was never written.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.observability.context import TraceContext


class Span:
    """One finished or in-flight traced region.

    Attributes:
        name: span label (e.g. ``"pipeline.infer"``).
        category: coarse grouping used as the Chrome ``cat`` field
          (e.g. ``"pipeline"``, ``"guard"``, ``"stage"``).
        start_s: start offset in seconds from the tracer's epoch.
        duration_s: wall-clock duration (or the priced duration for
          simulated spans).
        cost_s: simulated cost-model seconds attributed to the span
          (``add_cost``); for simulated spans equals ``duration_s``.
        attrs: op/stage attributes (``set``).
        simulated: True when the span carries cost-model time, not
          wall-clock time.
        trace_id: request trace this span belongs to (``""`` for
          process-local spans outside any request trace).
        links: cross-trace references as ``(trace_id, span_id)``
          pairs — a batch dispatch span links every coalesced
          request's context without reparenting under any of them.
    """

    __slots__ = (
        "name", "category", "span_id", "parent_id", "thread",
        "start_s", "duration_s", "cost_s", "attrs", "simulated",
        "trace_id", "links", "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        thread: str,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread = thread
        self.start_s = 0.0
        self.duration_s = 0.0
        self.cost_s = 0.0
        self.attrs: Dict[str, object] = {}
        self.simulated = False
        self.trace_id = ""
        self.links: Optional[List[Tuple[str, int]]] = None

    def set(self, key: str, value: object) -> None:
        """Attach one attribute to the span."""
        self.attrs[key] = value

    def add_cost(self, seconds: float) -> None:
        """Accumulate simulated cost-model seconds onto the span."""
        self.cost_s += seconds

    def add_link(self, trace_id: str, span_id: int) -> None:
        """Reference a span in another trace without reparenting."""
        if self.links is None:
            self.links = []
        self.links.append((trace_id, span_id))

    # Context-manager protocol (wall-clock spans only).

    def __enter__(self) -> "Span":
        self.start_s = self._tracer._now()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration_s = self._tracer._now() - self.start_s
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)

    def to_dict(self) -> Dict[str, object]:
        """JSONL record of the span."""
        record: Dict[str, object] = {
            "name": self.name,
            "cat": self.category,
            "id": self.span_id,
            "parent": self.parent_id,
            "thread": self.thread,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "cost_s": self.cost_s,
            "simulated": self.simulated,
            "attrs": self.attrs,
        }
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.links:
            record["links"] = [list(link) for link in self.links]
        return record

    def to_chrome_event(self) -> Dict[str, object]:
        """Chrome ``trace_event`` "complete" (``ph: X``) record."""
        args = dict(self.attrs)
        if self.cost_s:
            args["cost_s"] = self.cost_s
        if self.trace_id:
            args["trace_id"] = self.trace_id
            args["span_id"] = self.span_id
            if self.parent_id is not None:
                args["parent_id"] = self.parent_id
        if self.links:
            args["links"] = [
                {"trace_id": t, "span_id": s} for t, s in self.links
            ]
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "pid": 0,
            "tid": "simulated" if self.simulated else self.thread,
            "ts": round(self.start_s * 1e6, 3),
            "dur": round(self.duration_s * 1e6, 3),
            "args": args,
        }


class _NullSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    #: Disabled spans have no identity; 0 is never a real span id.
    span_id = 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, key: str, value: object) -> None:
        pass

    def add_cost(self, seconds: float) -> None:
        pass

    def add_link(self, trace_id: str, span_id: int) -> None:
        pass


#: The singleton no-op span; identity-checked by the overhead tests.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one run.

    Args:
        enabled: when False, :meth:`span` returns the shared
            :data:`NULL_SPAN` and :meth:`emit` does nothing — the
            instrumented code paths pay only an attribute check.
        clock: optional time source spans are stamped from.  Defaults
            to ``time.perf_counter``; pass the serving stack's
            injectable clock (a
            :class:`~repro.observability.clock.FixedClock` in
            virtual-time runs) so span timestamps share the serving
            timeline and exports are byte-identical per seed.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        self._clock = clock
        self._epoch = (
            time.perf_counter() if clock is None else clock()
        )
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: List[Span] = []
        self._next_id = 1
        self._sim_cursor = 0.0

    def _now(self) -> float:
        """Seconds since the tracer's epoch on its time source."""
        if self._clock is None:
            return time.perf_counter() - self._epoch
        return self._clock() - self._epoch

    def rel(self, instant: float) -> float:
        """Map an absolute reading of the tracer's clock to a span
        offset.  Only meaningful for instants read from the same clock
        the tracer was built with."""
        return instant - self._epoch

    # Span bookkeeping ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        with self._lock:
            self._finished.append(span)

    def next_span_id(self) -> int:
        """Reserve one span id (for roots emitted at terminal time)."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return span_id

    def span(
        self,
        name: str,
        category: str = "run",
        context: Optional[TraceContext] = None,
    ):
        """Open a wall-clock span (use as a context manager).

        With an explicit ``context`` the span parents under the
        context's span id and joins its trace instead of nesting under
        the thread-local stack — this is how a request's spans stay
        stitched across worker threads.  Without one, a span nested
        inside a traced parent inherits that parent's ``trace_id``.
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        if context is not None:
            parent: Optional[int] = context.span_id
            trace_id = context.trace_id
        elif stack:
            parent = stack[-1].span_id
            trace_id = stack[-1].trace_id
        else:
            parent, trace_id = None, ""
        span = Span(
            self, name, category, self.next_span_id(), parent,
            threading.current_thread().name,
        )
        span.trace_id = trace_id
        return span

    def mint_context(
        self, request_id: str, **baggage: str
    ) -> Optional[TraceContext]:
        """Root :class:`TraceContext` for a request, or ``None`` when
        tracing is disabled (callers propagate the ``None`` and skip
        every projection — the zero-allocation invariant)."""
        if not self.enabled:
            return None
        return TraceContext.mint(
            request_id, self.next_span_id(), **baggage
        )

    def emit(
        self,
        name: str,
        duration_s: float,
        category: str = "stage",
        start_s: Optional[float] = None,
        attrs: Optional[Dict[str, object]] = None,
    ) -> float:
        """Append a pre-priced simulated span; returns its start offset.

        Spans land on the ``simulated`` track.  Without an explicit
        ``start_s`` the span is placed at the track cursor, which then
        advances — successive :meth:`emit` calls tile left to right.
        An explicit ``start_s`` places the span without moving the
        cursor (used to nest per-layer spans inside a stage span).
        """
        if not self.enabled:
            return 0.0
        with self._lock:
            if start_s is None:
                start_s = self._sim_cursor
                self._sim_cursor = start_s + duration_s
            span_id = self._next_id
            self._next_id += 1
            span = Span(self, name, category, span_id, None, "simulated")
            span.start_s = start_s
            span.duration_s = duration_s
            span.cost_s = duration_s
            span.simulated = True
            if attrs:
                span.attrs.update(attrs)
            self._finished.append(span)
        return start_s

    def emit_span(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        category: str = "request",
        trace_id: str = "",
        span_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        thread: str = "simulated",
        attrs: Optional[Dict[str, object]] = None,
        links: Optional[List[Tuple[str, int]]] = None,
        simulated: bool = True,
    ) -> int:
        """Append a span with explicit timing and parentage; returns
        its span id (0 when tracing is disabled).

        The serving layer's projection emitter: request root / queue /
        batch / kernel-stage spans are written at completion time from
        clock instants the serving stack already recorded, rather than
        wrapping every hand-off in a context manager.  ``span_id``
        lets a pre-reserved id (:meth:`next_span_id`, held by a
        :class:`~repro.observability.context.TraceContext`) be
        written late, after its children already referenced it.
        """
        if not self.enabled:
            return 0
        if span_id is None:
            span_id = self.next_span_id()
        span = Span(
            self, name, category, span_id, parent_id, thread
        )
        span.start_s = start_s
        span.duration_s = max(0.0, duration_s)
        span.simulated = simulated
        if simulated:
            span.cost_s = span.duration_s
        span.trace_id = trace_id
        if attrs:
            span.attrs.update(attrs)
        if links:
            span.links = [
                (str(t), int(s)) for t, s in links
            ]
        with self._lock:
            self._finished.append(span)
        return span_id

    def finished(self) -> Tuple[Span, ...]:
        """Snapshot of the completed spans, in completion order."""
        with self._lock:
            return tuple(self._finished)

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._sim_cursor = 0.0

    # Exporters -------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """The Chrome ``trace_event`` document (a JSON object)."""
        return {
            "traceEvents": [
                s.to_chrome_event() for s in self.finished()
            ],
            "displayTimeUnit": "ms",
        }

    def export_chrome(self, path: str) -> None:
        """Write a ``chrome://tracing`` / Perfetto-loadable file."""
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def export_jsonl(self, path: str) -> None:
        """Write one JSON span record per line."""
        with open(path, "w") as fh:
            for span in self.finished():
                fh.write(json.dumps(span.to_dict(), sort_keys=True))
                fh.write("\n")


#: Shared disabled tracer: the default on every instrumented hot path.
NULL_TRACER = Tracer(enabled=False)


def find_orphans(
    records: Iterable[Mapping[str, object]],
) -> List[Mapping[str, object]]:
    """Span records whose ``parent`` id was never exported.

    Takes span dicts (:meth:`Span.to_dict` output or parsed JSONL
    lines) and returns the ones referencing a missing parent — the
    stitching invariant the serving trace tests and the dashboard
    check.  An empty return means every parent edge resolves.
    """
    rows = list(records)
    known = {row.get("id") for row in rows}
    return [
        row
        for row in rows
        if row.get("parent") is not None
        and row.get("parent") not in known
    ]


def spans_by_trace(
    records: Iterable[Mapping[str, object]],
) -> Dict[str, List[Mapping[str, object]]]:
    """Group span records by ``trace_id`` (untraced spans are
    omitted), each group sorted by start offset then id — the shape
    the dashboard's slowest-trace table consumes."""
    groups: Dict[str, List[Mapping[str, object]]] = {}
    for row in records:
        trace_id = row.get("trace_id")
        if not trace_id:
            continue
        groups.setdefault(str(trace_id), []).append(row)
    for rows in groups.values():
        rows.sort(
            key=lambda r: (float(r.get("start_s", 0.0)), int(r.get("id", 0)))
        )
    return groups


def emit_stage_spans(tracer: Tracer, breakdown) -> None:
    """Lay a priced :class:`StageBreakdown` out on the simulated track.

    Emits one span per pipeline stage (``sample``, ``neighbor_search``,
    ``grouping``, ``feature_compute``) with that stage's per-layer
    spans nested inside it, in recorder-event order
    (``per_layer_s`` is insertion-ordered, so the layout is
    deterministic across runs).
    """
    if not tracer.enabled:
        return
    stages = (
        ("sample", breakdown.sample_s),
        ("neighbor_search", breakdown.neighbor_s),
        ("grouping", breakdown.grouping_s),
        ("feature_compute", breakdown.feature_s),
    )
    per_layer = breakdown.per_layer_s
    for stage, seconds in stages:
        start = tracer.emit(
            stage, seconds, category="stage",
            attrs={"stage": stage},
        )
        offset = start
        for key, layer_s in per_layer.items():
            if not key.startswith(f"{stage}["):
                continue
            tracer.emit(
                key, layer_s, category="layer", start_s=offset,
                attrs={"stage": stage},
            )
            offset += layer_s
