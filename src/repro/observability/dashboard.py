"""Deterministic text dashboard for the serving fleet.

``repro dashboard`` renders one plain-text snapshot — replica health,
queue depths, SLO error budgets, and the top-K slowest request
traces — either from a **live** fleet/engine (at the end of a load
run) or from **saved artifacts** (the files a CI chaos run uploads:
``metrics.json``, ``trace.jsonl``, ``slo_report.json``,
``loadgen.json``).  Output is a pure function of its inputs: two runs
at the same seed render byte-identical dashboards, so the snapshot
can be asserted in tests and diffed across CI runs.

This is deliberately *not* a terminal UI — a deterministic string is
greppable, diffable, and renders the same in a CI log as in a shell.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

#: Conventional artifact file names (written by ``repro chaos`` /
#: ``repro loadgen`` with ``--out-dir`` and read by ``--from``).
ARTIFACT_METRICS = "metrics.json"
ARTIFACT_TRACE = "trace.jsonl"
ARTIFACT_SLO = "slo_report.json"
ARTIFACT_LOADGEN = "loadgen.json"

WIDTH = 66


@dataclass
class DashboardData:
    """Everything the dashboard can render; every piece optional."""

    title: str = "serving"
    fleet_stats: Dict[str, float] = field(default_factory=dict)
    replica_states: Dict[str, str] = field(default_factory=dict)
    queue_depths: Dict[str, float] = field(default_factory=dict)
    slo_report: Dict[str, object] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    trace_records: List[Mapping[str, object]] = field(
        default_factory=list
    )


def collect_live(
    fleet,
    slo=None,
    tracer=None,
    report=None,
    now: Optional[float] = None,
) -> DashboardData:
    """Snapshot a live :class:`~repro.serving.fleet.ServerFleet`
    (plus optional SLO engine / tracer / load report) into renderable
    data."""
    if now is None:
        now = fleet.clock()
    data = DashboardData(title="fleet")
    data.fleet_stats = fleet.stats()
    data.replica_states = fleet.replica_states(now)
    data.queue_depths = {
        str(replica.index): float(replica.server.queue.depth)
        for replica in fleet.replicas
    }
    if slo is not None:
        data.slo_report = slo.report(now)
    if tracer is not None and tracer.enabled:
        data.trace_records = [
            span.to_dict() for span in tracer.finished()
        ]
    if report is not None:
        data.latency_ms = dict(report.latency_ms)
    return data


def load_artifacts(directory: str) -> DashboardData:
    """Load the conventional artifact files found in ``directory``.

    Missing files are skipped — the dashboard renders whatever is
    available — but an entirely empty directory is an error (a silent
    blank dashboard would mask a broken upload).
    """
    data = DashboardData(title=os.path.basename(
        os.path.normpath(directory)
    ) or "artifacts")
    found = False
    metrics_path = os.path.join(directory, ARTIFACT_METRICS)
    if os.path.exists(metrics_path):
        found = True
        with open(metrics_path) as fh:
            snapshot = json.load(fh)
        data.fleet_stats = _stats_from_snapshot(snapshot)
        data.queue_depths = _queues_from_snapshot(snapshot)
    slo_path = os.path.join(directory, ARTIFACT_SLO)
    if os.path.exists(slo_path):
        found = True
        with open(slo_path) as fh:
            data.slo_report = json.load(fh)
    loadgen_path = os.path.join(directory, ARTIFACT_LOADGEN)
    if os.path.exists(loadgen_path):
        found = True
        with open(loadgen_path) as fh:
            loadgen = json.load(fh)
        data.latency_ms = dict(loadgen.get("latency_ms", {}))
        states = loadgen.get("replica_states", {})
        if states and not data.replica_states:
            data.replica_states = {
                str(k): str(v) for k, v in states.items()
            }
    trace_path = os.path.join(directory, ARTIFACT_TRACE)
    if os.path.exists(trace_path):
        found = True
        records: List[Mapping[str, object]] = []
        with open(trace_path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(json.loads(line))
        data.trace_records = records
    if not found:
        raise FileNotFoundError(
            f"no dashboard artifacts in {directory!r} (expected any "
            f"of {ARTIFACT_METRICS}, {ARTIFACT_TRACE}, "
            f"{ARTIFACT_SLO}, {ARTIFACT_LOADGEN})"
        )
    return data


def _stats_from_snapshot(
    snapshot: Mapping[str, object]
) -> Dict[str, float]:
    """Fleet-level counters out of a registry JSON snapshot."""
    wanted = {
        "serving_fleet_submitted_total": "submitted",
        "serving_fleet_completed_total": "completed",
        "serving_fleet_failed_total": "failed",
        "serving_fleet_expired_total": "expired",
        "serving_fleet_retries_total": "retries",
        "serving_fleet_hedges_total": "hedges",
        "serving_fleet_hedge_wins_total": "hedge_wins",
        "serving_fleet_healthy_replicas": "healthy",
    }
    stats: Dict[str, float] = {}
    for entry in snapshot.get("metrics", []):  # type: ignore[union-attr]
        name = str(entry.get("name", ""))
        label = wanted.get(name)
        if label is None:
            continue
        value = entry.get("value")
        if isinstance(value, (int, float)):
            stats[label] = stats.get(label, 0.0) + float(value)
    return stats


def _queues_from_snapshot(
    snapshot: Mapping[str, object]
) -> Dict[str, float]:
    depths: Dict[str, float] = {}
    for entry in snapshot.get("metrics", []):  # type: ignore[union-attr]
        if str(entry.get("name", "")) != "serving_queue_depth":
            continue
        labels = entry.get("labels", {}) or {}
        key = str(labels.get("replica", len(depths)))
        value = entry.get("value")
        if isinstance(value, (int, float)):
            depths[key] = float(value)
    return depths


def slowest_traces(
    records: Sequence[Mapping[str, object]], top_k: int = 5
) -> List[Mapping[str, object]]:
    """The ``top_k`` slowest request root spans, slowest first.

    Root spans are the ``request`` spans emitted at each request's
    terminal state; ties break on trace id so the ranking is total.
    """
    roots = [
        record
        for record in records
        if record.get("name") == "request" and record.get("trace_id")
    ]
    roots.sort(
        key=lambda r: (
            -float(r.get("duration_s", 0.0)),
            str(r.get("trace_id")),
        )
    )
    return roots[: max(0, int(top_k))]


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _rule(char: str = "-") -> str:
    return char * WIDTH


def _section(title: str) -> List[str]:
    return ["", title, _rule()]


def render_dashboard(
    data: DashboardData, top_k: int = 5
) -> str:
    """Render one deterministic text snapshot of ``data``."""
    lines: List[str] = [
        _rule("="),
        f"repro dashboard :: {data.title}",
        _rule("="),
    ]

    if data.fleet_stats:
        lines += _section("fleet")
        for key in sorted(data.fleet_stats):
            lines.append(
                f"  {key:<22} {_fmt(data.fleet_stats[key]):>12}"
            )

    if data.replica_states or data.queue_depths:
        lines += _section("replicas")
        indices = sorted(
            set(data.replica_states) | set(data.queue_depths),
            key=lambda key: (len(key), key),
        )
        for index in indices:
            state = data.replica_states.get(index, "?")
            depth = data.queue_depths.get(index)
            depth_text = (
                "queue=?" if depth is None else f"queue={_fmt(depth)}"
            )
            lines.append(
                f"  replica {index:<4} {state:<10} {depth_text}"
            )

    if data.slo_report:
        lines += _section(
            f"slo budgets :: spec={data.slo_report.get('spec', '?')}"
        )
        exhausted = set(data.slo_report.get("exhausted", []))
        for status in data.slo_report.get("objectives", []):
            name = str(status.get("objective", "?"))
            flags = []
            if status.get("alerting"):
                flags.append("ALERTING")
            if name in exhausted:
                flags.append("EXHAUSTED")
            lines.append(
                f"  {name:<18} {str(status.get('kind', '?')):<16}"
                f" compliance={_fmt(status.get('compliance'))}"
                f" burn={_fmt(status.get('burn_short'))}/"
                f"{_fmt(status.get('burn_long'))}"
                f" budget={_fmt(status.get('budget_remaining'))}"
                + (f"  [{' '.join(flags)}]" if flags else "")
            )
        alerts = data.slo_report.get("alerts", [])
        lines.append(f"  alerts raised: {len(alerts)}")

    if data.latency_ms:
        lines += _section("latency (ms)")
        for key in ("p50", "p95", "p99", "mean", "max"):
            if key in data.latency_ms:
                lines.append(
                    f"  {key:<6} {data.latency_ms[key]:>10.3f}"
                )

    if data.trace_records:
        lines += _section(f"slowest traces (top {top_k})")
        for record in slowest_traces(data.trace_records, top_k):
            duration_ms = float(
                record.get("duration_s", 0.0)
            ) * 1e3
            attrs = record.get("attrs", {}) or {}
            outcome = attrs.get("outcome", "?")
            lines.append(
                f"  {str(record.get('trace_id')):<22}"
                f" {duration_ms:>9.3f} ms"
                f"  outcome={outcome}"
                f" attempts={_fmt(attrs.get('attempts', 1))}"
            )

    lines.append("")
    lines.append(_rule("="))
    return "\n".join(lines)
