"""One-file run summaries: spans + metrics + breakdown + energy.

:class:`RunReport` merges whatever telemetry a run produced — the
tracer's spans, a metrics snapshot, and the simulated
:class:`~repro.runtime.profiler.StageBreakdown` /
:class:`~repro.runtime.profiler.EnergyReport` — into one
JSON-serializable document, the artifact CI uploads and the BENCH
trajectory consumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from statistics import median
from typing import Dict, List, Optional

from repro.observability.clock import Clock, wall_clock
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer

SCHEMA_VERSION = 1


def breakdown_to_dict(breakdown) -> Dict[str, object]:
    """Serialize a :class:`StageBreakdown` (per-layer order preserved)."""
    return {
        "sample_s": breakdown.sample_s,
        "neighbor_s": breakdown.neighbor_s,
        "grouping_s": breakdown.grouping_s,
        "feature_s": breakdown.feature_s,
        "total_s": breakdown.total_s,
        "sample_and_neighbor_fraction":
            breakdown.sample_and_neighbor_fraction,
        "per_layer_s": dict(breakdown.per_layer_s),
    }


def energy_to_dict(energy) -> Dict[str, float]:
    """Serialize an :class:`EnergyReport`."""
    return {
        "compute_j": energy.compute_j,
        "memory_j": energy.memory_j,
        "total_j": energy.total_j,
    }


@dataclass
class RunReport:
    """Aggregated, serializable summary of one run."""

    meta: Dict[str, object] = field(default_factory=dict)
    spans: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, object] = field(default_factory=dict)
    breakdowns: List[Dict[str, object]] = field(default_factory=list)
    energies: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        breakdowns=(),
        energies=(),
        clock: Optional[Clock] = None,
        **meta: object,
    ) -> "RunReport":
        """Collect telemetry objects into one report.

        ``breakdowns``/``energies`` accept the profiler dataclasses
        directly; ``meta`` keyword arguments (workload name, config
        label, batch count ...) are stored verbatim.  ``clock``
        supplies the ``created_unix`` stamp and defaults to the
        :func:`~repro.observability.clock.wall_clock` shim — pass a
        :class:`~repro.observability.clock.FixedClock` to build
        byte-identical reports.
        """
        report = cls(meta=dict(meta))
        report.meta.setdefault("schema_version", SCHEMA_VERSION)
        report.meta.setdefault(
            "created_unix", (clock or wall_clock)()
        )
        if tracer is not None:
            report.spans = [s.to_dict() for s in tracer.finished()]
        if metrics is not None:
            report.metrics = metrics.snapshot()
        report.breakdowns = [breakdown_to_dict(b) for b in breakdowns]
        report.energies = [energy_to_dict(e) for e in energies]
        return report

    def stage_medians_s(self) -> Dict[str, float]:
        """Per-stage median simulated latency across the collected
        breakdowns — the ``BENCH_observability.json`` payload."""
        out: Dict[str, float] = {}
        if not self.breakdowns:
            return out
        for stage in (
            "sample_s", "neighbor_s", "grouping_s", "feature_s",
            "total_s",
        ):
            out[stage] = median(b[stage] for b in self.breakdowns)
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "meta": self.meta,
            "spans": self.spans,
            "metrics": self.metrics,
            "breakdowns": self.breakdowns,
            "energies": self.energies,
            "stage_medians_s": self.stage_medians_s(),
        }

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunReport":
        with open(path) as fh:
            data = json.load(fh)
        return cls(
            meta=data.get("meta", {}),
            spans=data.get("spans", []),
            metrics=data.get("metrics", {}),
            breakdowns=data.get("breakdowns", []),
            energies=data.get("energies", []),
        )
