"""Evaluation metrics: overall accuracy and mean IoU.

These are the metrics the PC CNN literature reports: overall (point or
instance) accuracy for classification, and mean intersection-over-union
for segmentation tasks.
"""

from __future__ import annotations

import numpy as np


def overall_accuracy(
    predictions: np.ndarray, targets: np.ndarray
) -> float:
    """Fraction of correct predictions over any matching shapes."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    if predictions.size == 0:
        raise ValueError("empty prediction array")
    return float((predictions == targets).mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """``(C, C)`` counts with rows = true class, columns = predicted."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if targets.min() < 0 or targets.max() >= num_classes:
        raise ValueError("target label out of range")
    if predictions.min() < 0 or predictions.max() >= num_classes:
        raise ValueError("predicted label out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets, predictions), 1)
    return matrix


def mean_iou(
    predictions: np.ndarray,
    targets: np.ndarray,
    num_classes: int,
    ignore_empty: bool = True,
) -> float:
    """Mean per-class intersection-over-union.

    Classes absent from both prediction and target are skipped when
    ``ignore_empty`` (the standard convention), so a batch that simply
    lacks a class does not drag the mean to zero.
    """
    matrix = confusion_matrix(predictions, targets, num_classes)
    intersection = np.diag(matrix).astype(np.float64)
    union = (
        matrix.sum(axis=0) + matrix.sum(axis=1) - np.diag(matrix)
    ).astype(np.float64)
    if ignore_empty:
        valid = union > 0
        if not valid.any():
            return 0.0
        return float((intersection[valid] / union[valid]).mean())
    union = np.maximum(union, 1.0)
    return float((intersection / union).mean())


def per_class_accuracy(
    predictions: np.ndarray,
    targets: np.ndarray,
    num_classes: int,
) -> np.ndarray:
    """Recall per class; NaN for classes absent from the targets."""
    matrix = confusion_matrix(predictions, targets, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    out = np.full(num_classes, np.nan)
    present = totals > 0
    out[present] = np.diag(matrix)[present] / totals[present]
    return out


def accuracy_drop(
    baseline_accuracy: float, approx_accuracy: float
) -> float:
    """The paper's headline metric: percentage-point drop from the
    baseline model to the retrained approximate model (Fig. 14a)."""
    if not (0 <= baseline_accuracy <= 1 and 0 <= approx_accuracy <= 1):
        raise ValueError("accuracies must be in [0, 1]")
    return baseline_accuracy - approx_accuracy
