"""Training and retraining loops (paper Secs. 5.3, 6.2).

EdgePC's approximations produce sub-optimal samples and false
neighbors, so pre-trained weights lose accuracy when the approximate
kernels are dropped in.  The fix is *retraining with the approximations
in the loop*: the same training procedure, but every forward pass runs
the Morton sampler / window searcher exactly as it will at inference.
:class:`Trainer` implements both the baseline training and that
retraining (the only difference is the model's
:class:`~repro.core.pipeline.EdgePCConfig`), plus evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.datasets.base import Batch
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.losses import cross_entropy
from repro.nn.optim import Adam, Optimizer
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.train.metrics import mean_iou, overall_accuracy


@dataclass
class TrainResult:
    """Loss/accuracy history of one training run."""

    losses: List[float] = field(default_factory=list)
    train_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("no epochs were run")
        return self.losses[-1]


@dataclass(frozen=True)
class EvalResult:
    """Evaluation metrics over a batch list."""

    accuracy: float
    miou: Optional[float] = None


ForwardFn = Callable[[Module, Batch], Tensor]


def _default_forward(model: Module, batch: Batch) -> Tensor:
    return model(batch.xyz)


class Trainer:
    """Epoch-based trainer for the point-cloud models.

    Args:
        model: any model whose ``forward(xyz)`` returns logits with the
            class axis last.
        optimizer: defaults to Adam(1e-3) over the model parameters.
        forward: optional override for models needing extra inputs.
        label_smoothing: passed through to the loss.
        tracer: optional tracer; epochs and evaluations become
            ``train.*`` spans.  Defaults to the no-op tracer.
        metrics: optional registry; batch/epoch counters and the last
            loss/accuracy gauges are recorded when given.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optional[Optimizer] = None,
        forward: ForwardFn = _default_forward,
        label_smoothing: float = 0.0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer or Adam(model.parameters(), lr=1e-3)
        self.forward = forward
        self.label_smoothing = label_smoothing
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics

    def train_epoch(self, batches: Sequence[Batch]) -> float:
        """One pass over the batches; returns the mean loss."""
        if not batches:
            raise ValueError("no batches to train on")
        self.model.train()
        total = 0.0
        with self.tracer.span("train.epoch", "train") as span:
            for batch in batches:
                self.optimizer.zero_grad()
                logits = self.forward(self.model, batch)
                loss = cross_entropy(
                    logits, batch.labels, self.label_smoothing
                )
                loss.backward()
                self.optimizer.step()
                total += loss.item()
            mean_loss = total / len(batches)
            span.set("batches", len(batches))
            span.set("mean_loss", mean_loss)
        if self.metrics is not None:
            self.metrics.counter("train_epochs_total").inc()
            self.metrics.counter("train_batches_total").inc(
                len(batches)
            )
            self.metrics.gauge("train_last_loss").set(mean_loss)
        return mean_loss

    def fit(
        self,
        batches: Sequence[Batch],
        epochs: int,
        shuffle_seed: Optional[int] = 0,
        scheduler=None,
    ) -> TrainResult:
        """Train for ``epochs`` passes, shuffling batch order.

        Args:
            scheduler: optional LR schedule (e.g.
                :class:`repro.nn.optim.StepLR`); stepped once per
                epoch, the PointNet++ training convention.
        """
        if epochs < 1:
            raise ValueError("epochs must be positive")
        with self.tracer.span("train.fit", "train") as span:
            span.set("epochs", epochs)
            return self._fit(batches, epochs, shuffle_seed, scheduler)

    def _fit(
        self,
        batches: Sequence[Batch],
        epochs: int,
        shuffle_seed: Optional[int],
        scheduler,
    ) -> TrainResult:
        result = TrainResult()
        order = list(range(len(batches)))
        rng = (
            np.random.default_rng(shuffle_seed)
            if shuffle_seed is not None
            else None
        )
        for _ in range(epochs):
            if rng is not None:
                rng.shuffle(order)
            epoch_batches = [batches[i] for i in order]
            result.losses.append(self.train_epoch(epoch_batches))
            result.train_accuracies.append(
                self.evaluate(batches).accuracy
            )
            if scheduler is not None:
                scheduler.step()
        return result

    def evaluate(
        self,
        batches: Sequence[Batch],
        num_classes: Optional[int] = None,
    ) -> EvalResult:
        """Accuracy (and mIoU when ``num_classes`` given) in eval mode."""
        if not batches:
            raise ValueError("no batches to evaluate")
        self.model.eval()
        predictions = []
        targets = []
        with self.tracer.span("train.evaluate", "train"), no_grad():
            for batch in batches:
                logits = self.forward(self.model, batch)
                predictions.append(logits.data.argmax(axis=-1))
                targets.append(batch.labels)
        self.model.train()
        predictions = np.concatenate([p.reshape(-1) for p in predictions])
        targets = np.concatenate([t.reshape(-1) for t in targets])
        accuracy = overall_accuracy(predictions, targets)
        miou = None
        if num_classes is not None:
            miou = mean_iou(predictions, targets, num_classes)
        if self.metrics is not None:
            self.metrics.gauge("train_last_accuracy").set(accuracy)
        return EvalResult(accuracy=accuracy, miou=miou)


@dataclass(frozen=True)
class RetrainComparison:
    """Baseline-vs-retrained-approximate accuracy (Fig. 14a row)."""

    baseline_accuracy: float
    approx_pretrained_accuracy: float
    approx_retrained_accuracy: float

    @property
    def drop_without_retraining(self) -> float:
        return self.baseline_accuracy - self.approx_pretrained_accuracy

    @property
    def drop_after_retraining(self) -> float:
        return self.baseline_accuracy - self.approx_retrained_accuracy


def retrain_comparison(
    build_model: Callable[[object], Module],
    baseline_config: object,
    approx_config: object,
    train_batches: Sequence[Batch],
    test_batches: Sequence[Batch],
    epochs: int,
    lr: float = 1e-3,
) -> RetrainComparison:
    """Run the paper's three-way accuracy experiment.

    1. Train the baseline model (exact kernels) and evaluate it.
    2. Evaluate the *same weights* with approximate kernels swapped in
       (the "directly using pretrained models" case, Sec. 5.3).
    3. Retrain with the approximations in the loop and evaluate.

    ``build_model(config)`` must build identically-initialized models
    so weights transfer between configs.
    """
    baseline_model = build_model(baseline_config)
    baseline_trainer = Trainer(
        baseline_model, Adam(baseline_model.parameters(), lr=lr)
    )
    baseline_trainer.fit(train_batches, epochs)
    baseline_acc = baseline_trainer.evaluate(test_batches).accuracy

    # Same weights, approximate kernels.
    approx_model = build_model(approx_config)
    approx_model.load_state_dict(baseline_model.state_dict())
    pretrained_acc = Trainer(approx_model).evaluate(test_batches).accuracy

    retrained_model = build_model(approx_config)
    retrained_trainer = Trainer(
        retrained_model, Adam(retrained_model.parameters(), lr=lr)
    )
    retrained_trainer.fit(train_batches, epochs)
    retrained_acc = retrained_trainer.evaluate(test_batches).accuracy

    return RetrainComparison(
        baseline_accuracy=baseline_acc,
        approx_pretrained_accuracy=pretrained_acc,
        approx_retrained_accuracy=retrained_acc,
    )
