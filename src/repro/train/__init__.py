"""Training, retraining-with-approximation, and evaluation metrics."""

from repro.train.metrics import (
    accuracy_drop,
    confusion_matrix,
    mean_iou,
    overall_accuracy,
    per_class_accuracy,
)
from repro.train.trainer import (
    EvalResult,
    RetrainComparison,
    Trainer,
    TrainResult,
    retrain_comparison,
)

__all__ = [
    "Trainer",
    "TrainResult",
    "EvalResult",
    "RetrainComparison",
    "retrain_comparison",
    "overall_accuracy",
    "confusion_matrix",
    "mean_iou",
    "per_class_accuracy",
    "accuracy_drop",
]
