"""AST rule engine: contexts, the rule registry, and suppressions.

The engine parses each Python file once into a :class:`ModuleContext`
(source, lines, AST, derived dotted module name) and hands it to every
registered :class:`Rule`.  Rules yield :class:`Finding` objects; the
engine then drops any finding covered by an inline suppression comment

    # repro: allow[RULE-ID]          (this line or the line above)
    # repro: allow[RULE-ID,OTHER-ID]
    # repro: allow[ALL]

before returning the sorted remainder.  Baseline subtraction happens a
layer up, in :mod:`repro.lint.runner`.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.lint.concurrency import ProjectContext

#: Rule id of the synthetic finding emitted for unparseable files.
PARSE_RULE_ID = "PARSE-001"

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s-]+)\]")


def derive_module(path: str) -> str:
    """Dotted module name for ``path``.

    The name is anchored at the last ``repro`` path component, so both
    ``src/repro/core/morton.py`` and a test fixture laid out as
    ``tests/data/lint/bad/repro/core/kernel.py`` resolve to
    ``repro.core...`` and fall under the same scoping rules.  Files
    outside any ``repro`` tree use their bare stem.
    """
    parts = path.replace(os.sep, "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro") :]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> rule ids allowed on that line."""
    out: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = {
            part.strip().upper()
            for part in match.group(1).split(",")
            if part.strip()
        }
        if ids:
            out[number] = ids
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one parsed file."""

    path: str
    module: str
    source: str
    lines: List[str]
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: Whole-program view attached by :func:`lint_paths` /
    #: :func:`lint_source`; cross-module rules (CONC-5xx) read it.
    project: Optional["ProjectContext"] = None

    @classmethod
    def from_source(cls, path: str, source: str) -> "ModuleContext":
        normalized = path.replace(os.sep, "/")
        lines = source.splitlines()
        return cls(
            path=normalized,
            module=derive_module(normalized),
            source=source,
            lines=lines,
            tree=ast.parse(source, filename=normalized),
            suppressions=parse_suppressions(lines),
        )

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
    ) -> Finding:
        """Build a finding for ``node`` under ``rule``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule.rule_id,
            severity=rule.severity,
            message=message,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        for line in (finding.line, finding.line - 1):
            ids = self.suppressions.get(line)
            if ids and (finding.rule in ids or "ALL" in ids):
                return True
        return False


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` ties the rule to the invariant it protects (paper
    section or PR it guards) and is surfaced by ``--format json`` and
    the docs.
    """

    rule_id: str = ""
    severity: str = "warning"
    title: str = ""
    rationale: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def describe(self) -> Dict[str, str]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "title": self.title,
            "rationale": self.rationale,
        }


_REGISTRY: Dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one rule instance to the registry."""
    instance = cls()
    if not instance.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if instance.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.rule_id}")
    _REGISTRY[instance.rule_id] = instance
    return cls


def all_rules() -> Tuple[Rule, ...]:
    """Registered rules, sorted by id (imports the rule modules)."""
    _load_builtin_rules()
    return tuple(
        _REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)
    )


def _load_builtin_rules() -> None:
    # Imported lazily so engine <-> rule-module imports stay acyclic.
    from repro.lint import (  # noqa: F401
        concurrency,
        rules_det,
        rules_obs,
        rules_perf,
        rules_robust,
    )


#: Parsed-module cache keyed on (path, content sha1).  Parsing is the
#: dominant per-file cost; repeated runs (watch loops, the runner's
#: collect + prune passes, tests) reuse the AST.  Entries are shared
#: read-only; :func:`_context_for` hands out shallow copies so each
#: run gets its own ``project`` slot.
_CONTEXT_CACHE: Dict[Tuple[str, str], ModuleContext] = {}
_CONTEXT_CACHE_LOCK = threading.Lock()
_CONTEXT_CACHE_MAX = 2048


def _context_for(path: str, source: str) -> ModuleContext:
    digest = hashlib.sha1(source.encode("utf-8")).hexdigest()
    key = (path.replace(os.sep, "/"), digest)
    with _CONTEXT_CACHE_LOCK:
        cached = _CONTEXT_CACHE.get(key)
    if cached is None:
        cached = ModuleContext.from_source(path, source)
        with _CONTEXT_CACHE_LOCK:
            if len(_CONTEXT_CACHE) >= _CONTEXT_CACHE_MAX:
                _CONTEXT_CACHE.clear()
            _CONTEXT_CACHE[key] = cached
    return replace(cached, project=None)


def _parse_finding(path: str, err: SyntaxError) -> Finding:
    return Finding(
        path=path.replace(os.sep, "/"),
        line=err.lineno or 1,
        col=(err.offset or 1) - 1,
        rule=PARSE_RULE_ID,
        severity="error",
        message=f"file does not parse: {err.msg}",
    )


def _check_context(ctx: ModuleContext, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        for finding in rule.check(ctx):
            if not ctx.is_suppressed(finding):
                findings.append(finding)
    return findings


def lint_source(
    path: str,
    source: str,
    rules: Sequence[Rule] = (),
) -> List[Finding]:
    """Run ``rules`` (default: all) over one in-memory source file."""
    rules = tuple(rules) or all_rules()
    try:
        ctx = ModuleContext.from_source(path, source)
    except SyntaxError as err:
        return [_parse_finding(path, err)]
    from repro.lint.concurrency import ProjectContext

    ctx.project = ProjectContext.build([ctx])
    findings = _check_context(ctx, rules)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_file(path: str, rules: Sequence[Rule] = ()) -> List[Finding]:
    with open(path, encoding="utf-8") as fh:
        return lint_source(path, fh.read(), rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[str]:
    """Expand files/directories into a sorted ``*.py`` file list."""
    seen: Set[str] = set()
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d
                    for d in dirs
                    if not d.startswith(".") and d != "__pycache__"
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        full = os.path.join(root, name)
                        if full not in seen:
                            seen.add(full)
                            out.append(full)
        elif path not in seen:
            seen.add(path)
            out.append(path)
    return iter(out)


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[Rule] = (),
    jobs: int = 1,
) -> List[Finding]:
    """Lint every ``*.py`` file under ``paths``; sorted findings.

    Files are parsed (through the content-hash AST cache) and the
    whole-program :class:`ProjectContext` is built single-threaded;
    with ``jobs > 1`` the per-file rule visits then fan out across a
    thread pool.  The final global sort keeps the output — and every
    fingerprint — byte-identical regardless of ``jobs``.
    """
    from repro.lint.concurrency import ProjectContext

    rules = tuple(rules) or all_rules()
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as fh:
            source = fh.read()
        try:
            contexts.append(_context_for(path, source))
        except SyntaxError as err:
            findings.append(_parse_finding(path, err))
    project = ProjectContext.build(contexts)
    for ctx in contexts:
        ctx.project = project
    if jobs > 1 and len(contexts) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for batch in pool.map(
                lambda ctx: _check_context(ctx, rules), contexts
            ):
                findings.extend(batch)
    else:
        for ctx in contexts:
            findings.extend(_check_context(ctx, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
