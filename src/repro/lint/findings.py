"""Finding model shared by every lint rule and exporter.

A :class:`Finding` is one rule violation pinned to a file/line/column.
Findings carry a *fingerprint* — a stable hash of the file path, rule
id, and message that deliberately excludes the line number — so a
checked-in baseline keeps matching after unrelated edits shift code
up or down.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

#: Severity levels, ordered weakest to strongest.
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

SEVERITY_ORDER: Dict[str, int] = {
    SEVERITY_WARNING: 0,
    SEVERITY_ERROR: 1,
}


def severity_at_least(severity: str, threshold: str) -> bool:
    """True when ``severity`` meets or exceeds ``threshold``."""
    return SEVERITY_ORDER[severity] >= SEVERITY_ORDER[threshold]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location.

    Attributes:
        path: file path as given to the engine (forward slashes).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: rule identifier, e.g. ``"DET-202"``.
        severity: ``"warning"`` or ``"error"``.
        message: human-readable one-line description.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        payload = f"{self.path}::{self.rule}::{self.message}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        """``path:line:col: SEVERITY RULE message`` (one text line)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule} {self.message}"
        )
