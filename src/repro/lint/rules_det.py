"""DET rules: every randomized or timed path must be reproducible.

Retraining with Morton sampling in the loop (paper Sec. 5.3) and the
PR-1 fault-injection harness both promise bit-for-bit reproducible
runs.  That only holds when randomness flows through seeded
``np.random.default_rng`` generators (or the ``FaultInjector``'s own
seeded streams) and when wall-clock reads go through the injectable
clock shim in :mod:`repro.observability.clock` instead of ambient
``time.time()`` / ``datetime.now()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

#: ``np.random.*`` attributes that construct *seedable* generators and
#: types; everything else on the module is legacy global-state RNG.
SEEDABLE_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "RandomState",  # type annotations in legacy signatures
    }
)

#: The only module allowed to read the wall clock directly: the
#: injectable shim everything else must thread a ``clock=`` through.
#: (The tracer is unaffected — monotonic ``perf_counter`` durations
#: are not wall-clock reads and are not flagged.)
CLOCK_EXEMPT_MODULES = frozenset({"repro.observability.clock"})

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


def _dotted(node: ast.AST) -> str:
    """Dotted-name rendering of a Name/Attribute chain ('' if other)."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _imports_stdlib_random(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                return True
    return False


@register
class UnseededRandomRule(Rule):
    """DET-201: RNG use outside seeded ``default_rng`` generators."""

    rule_id = "DET-201"
    severity = "error"
    title = "unseeded / global-state RNG call"
    rationale = (
        "Paper Sec. 5.3 retraining and the PR-1 FaultInjector "
        "require bit-for-bit reproducible runs; all randomness must "
        "flow through np.random.default_rng(seed) generators, never "
        "the legacy np.random.* or stdlib random module globals."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        has_stdlib_random = _imports_stdlib_random(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if (
                dotted.startswith(("np.random.", "numpy.random."))
                and node.attr not in SEEDABLE_NP_RANDOM
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted} uses NumPy's global RNG state; route "
                    "randomness through np.random.default_rng(seed)",
                )
            elif (
                has_stdlib_random
                and dotted.startswith("random.")
                and dotted.count(".") == 1
                and node.attr not in ("Random", "SystemRandom")
            ):
                yield ctx.finding(
                    self,
                    node,
                    f"stdlib {dotted} draws from the process-global "
                    "RNG; use a seeded np.random.default_rng or "
                    "random.Random(seed) instance",
                )
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.module in ("numpy.random", "random")
            ):
                for alias in node.names:
                    if alias.name not in SEEDABLE_NP_RANDOM | {
                        "Random",
                        "SystemRandom",
                    }:
                        yield ctx.finding(
                            self,
                            node,
                            f"from {node.module} import {alias.name} "
                            "bypasses seeded-generator discipline",
                        )


@register
class WallClockRule(Rule):
    """DET-202: ambient wall-clock reads outside the clock shim."""

    rule_id = "DET-202"
    severity = "error"
    title = "direct wall-clock read outside repro.observability"
    rationale = (
        "Run artifacts (RunReport, traces) must be reproducible and "
        "diffable; wall-clock reads go through the injectable "
        "repro.observability.clock shim so tests and replay can pin "
        "time."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module in CLOCK_EXEMPT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _WALL_CLOCK_CALLS:
                yield ctx.finding(
                    self,
                    node,
                    f"{dotted}() reads the ambient wall clock; "
                    "accept a clock= parameter defaulting to "
                    "repro.observability.clock.wall_clock",
                )
