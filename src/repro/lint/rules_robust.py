"""ROBUST rules: the PR-1 guarded-inference discipline.

Failures must be observable and attributable: a broad ``except`` that
swallows everything silently defeats the circuit-breaker/metrics
design, and array-returning kernels without a documented shape/dtype
contract push validation errors downstream to whoever consumes the
array.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

#: Attribute calls inside a handler that count as a deliberate side
#: effect (metrics, breaker bookkeeping, logging) rather than a
#: silent swallow.
_SIDE_EFFECT_ATTRS = frozenset(
    {
        "inc",
        "observe",
        "set",
        "record_trip",
        "record_pass",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
    }
)

_BROAD_NAMES = ("Exception", "BaseException")

#: Packages whose array-returning public functions must document
#: their shape/dtype contract.
CONTRACT_PACKAGES = ("repro.core", "repro.geometry")

_SHAPE_HINT = re.compile(
    r"\bshape\b|\bscalar\b|\b[0-9]-d\b|\(\s*[a-z0-9*.]+\s*,"
)
_DTYPE_HINT = re.compile(
    r"dtype|float64|float32|float16|int64|int32|int16|int8"
    r"|uint\d*|\bbool(ean)?s?\b|\binteger(s)?\b"
)


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The broad exception name an ``except`` clause catches, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _handler_has_outlet(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records a side effect."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _SIDE_EFFECT_ATTRS:
                return True
    return False


@register
class BroadExceptRule(Rule):
    """ROBUST-401: broad except without re-raise or side effect."""

    rule_id = "ROBUST-401"
    severity = "error"
    title = "broad except swallows failures silently"
    rationale = (
        "PR-1 invariant: failures surface as structured rejections, "
        "breaker trips, or metrics — a bare/broad except that "
        "neither re-raises nor records anything hides exactly the "
        "faults the injection harness exists to exercise."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name is None:
                continue
            if _handler_has_outlet(node):
                continue
            yield ctx.finding(
                self,
                node,
                f"{name} handler neither re-raises nor records a "
                "metric/log side effect; narrow the exception or "
                "make the failure observable",
            )


def _returns_array(fn: ast.FunctionDef) -> bool:
    if fn.returns is None:
        return False
    rendered = ast.unparse(fn.returns)
    return "ndarray" in rendered or "NDArray" in rendered


def _public_array_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Public module-level functions and class methods returning
    arrays, as ``(qualified name, node)`` pairs."""

    def visit(body: List[ast.stmt], prefix: str) -> Iterator[
        Tuple[str, ast.FunctionDef]
    ]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from visit(node.body, f"{node.name}.")
            elif isinstance(node, ast.FunctionDef):
                if not node.name.startswith("_") and _returns_array(
                    node
                ):
                    yield f"{prefix}{node.name}", node

    yield from visit(tree.body, "")


@register
class ArrayContractRule(Rule):
    """ROBUST-402: array-returning API without a documented contract."""

    rule_id = "ROBUST-402"
    severity = "warning"
    title = "array-returning public function lacks shape/dtype contract"
    rationale = (
        "The PR-1 sanitization boundary validates shapes and dtypes "
        "at the pipeline edge; inside repro.core / repro.geometry "
        "the contract lives in the docstring so callers (and the "
        "validator) know what an array-returning kernel guarantees."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(CONTRACT_PACKAGES):
            return
        for qualname, fn in _public_array_functions(ctx.tree):
            doc = (ast.get_docstring(fn) or "").lower()
            missing = []
            if not _SHAPE_HINT.search(doc):
                missing.append("shape")
            if not _DTYPE_HINT.search(doc):
                missing.append("dtype")
            if missing:
                yield ctx.finding(
                    self,
                    fn,
                    f"{qualname}() returns an array but its "
                    f"docstring documents no {'/'.join(missing)} "
                    "contract",
                )
