"""ROBUST rules: the PR-1 guarded-inference discipline.

Failures must be observable and attributable: a broad ``except`` that
swallows everything silently defeats the circuit-breaker/metrics
design, and array-returning kernels without a documented shape/dtype
contract push validation errors downstream to whoever consumes the
array.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

#: Attribute calls inside a handler that count as a deliberate side
#: effect (metrics, breaker bookkeeping, logging) rather than a
#: silent swallow.
_SIDE_EFFECT_ATTRS = frozenset(
    {
        "inc",
        "observe",
        "set",
        "record_trip",
        "record_pass",
        "record_failed",
        "warning",
        "error",
        "exception",
        "critical",
        "log",
    }
)

_BROAD_NAMES = ("Exception", "BaseException")

#: Packages whose array-returning public functions must document
#: their shape/dtype contract.  The exact sampler / neighbor-engine
#: packages joined when the large-N fast engines landed: their
#: bit-identity guarantees only mean something if every kernel's
#: output shape and dtype are pinned in the docstring.  The dataset
#: generators joined with scene-scale partitioning: a 1M-point scene
#: assembled from procedural rooms feeds the partitioner directly, so
#: its data path is contract-checked like core/geometry.
CONTRACT_PACKAGES = (
    "repro.core",
    "repro.geometry",
    "repro.sampling",
    "repro.neighbors",
    "repro.datasets",
)

_SHAPE_HINT = re.compile(
    r"\bshape\b|\bscalar\b|\b[0-9]-d\b|\(\s*[a-z0-9*.]+\s*,"
)
_DTYPE_HINT = re.compile(
    r"dtype|float64|float32|float16|int64|int32|int16|int8"
    r"|uint\d*|\bbool(ean)?s?\b|\binteger(s)?\b"
)


def _broad_name(node: Optional[ast.expr]) -> Optional[str]:
    """The broad exception name an ``except`` clause catches, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            name = _broad_name(element)
            if name is not None:
                return name
    return None


def _handler_has_outlet(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records a side effect."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _SIDE_EFFECT_ATTRS:
                return True
    return False


@register
class BroadExceptRule(Rule):
    """ROBUST-401: broad except without re-raise or side effect."""

    rule_id = "ROBUST-401"
    severity = "error"
    title = "broad except swallows failures silently"
    rationale = (
        "PR-1 invariant: failures surface as structured rejections, "
        "breaker trips, or metrics — a bare/broad except that "
        "neither re-raises nor records anything hides exactly the "
        "faults the injection harness exists to exercise."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            name = _broad_name(node.type)
            if name is None:
                continue
            if _handler_has_outlet(node):
                continue
            yield ctx.finding(
                self,
                node,
                f"{name} handler neither re-raises nor records a "
                "metric/log side effect; narrow the exception or "
                "make the failure observable",
            )


def _returns_array(fn: ast.FunctionDef) -> bool:
    if fn.returns is None:
        return False
    rendered = ast.unparse(fn.returns)
    return "ndarray" in rendered or "NDArray" in rendered


def _public_array_functions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.FunctionDef]]:
    """Public module-level functions and class methods returning
    arrays, as ``(qualified name, node)`` pairs."""

    def visit(body: List[ast.stmt], prefix: str) -> Iterator[
        Tuple[str, ast.FunctionDef]
    ]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                if not node.name.startswith("_"):
                    yield from visit(node.body, f"{node.name}.")
            elif isinstance(node, ast.FunctionDef):
                if not node.name.startswith("_") and _returns_array(
                    node
                ):
                    yield f"{prefix}{node.name}", node

    yield from visit(tree.body, "")


@register
class ArrayContractRule(Rule):
    """ROBUST-402: array-returning API without a documented contract."""

    rule_id = "ROBUST-402"
    severity = "warning"
    title = "array-returning public function lacks shape/dtype contract"
    rationale = (
        "The PR-1 sanitization boundary validates shapes and dtypes "
        "at the pipeline edge; inside repro.core / repro.geometry "
        "the contract lives in the docstring so callers (and the "
        "validator) know what an array-returning kernel guarantees."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(CONTRACT_PACKAGES):
            return
        for qualname, fn in _public_array_functions(ctx.tree):
            doc = (ast.get_docstring(fn) or "").lower()
            missing = []
            if not _SHAPE_HINT.search(doc):
                missing.append("shape")
            if not _DTYPE_HINT.search(doc):
                missing.append("dtype")
            if missing:
                yield ctx.finding(
                    self,
                    fn,
                    f"{qualname}() returns an array but its "
                    f"docstring documents no {'/'.join(missing)} "
                    "contract",
                )


#: Package whose retry loops the PR-6 fleet discipline covers.
RETRY_PACKAGE = "repro.serving"

#: Identifier substrings that count as evidence the loop computes a
#: jittered backoff (rather than hammering at a fixed cadence).
_BACKOFF_HINTS = ("backoff", "jitter")

#: Identifier substrings that count as evidence the loop honors the
#: request deadline (bounding total retry time, not just attempts).
_DEADLINE_HINTS = ("deadline", "remaining")


def _is_sleep_call(node: ast.Call) -> bool:
    """``sleep(...)`` or ``<anything>.sleep(...)``.

    ``condition.wait(timeout)`` is deliberately NOT matched: waiting
    on a condition variable is the sanctioned way to park a serving
    thread, because a notify wakes it early.
    """
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "sleep"
    if isinstance(func, ast.Attribute):
        return func.attr == "sleep"
    return False


def _loop_identifiers(loop: ast.stmt) -> Iterator[str]:
    """Every Name / attribute / arg identifier in the loop, lowered."""
    for node in ast.walk(loop):
        if isinstance(node, ast.Name):
            yield node.id.lower()
        elif isinstance(node, ast.Attribute):
            yield node.attr.lower()
        elif isinstance(node, ast.arg):
            yield node.arg.lower()


def _mentions(loop: ast.stmt, hints: Tuple[str, ...]) -> bool:
    return any(
        hint in name
        for name in _loop_identifiers(loop)
        for hint in hints
    )


@register
class RetryLoopRule(Rule):
    """ROBUST-403: retry loop sleeps without backoff or deadline."""

    rule_id = "ROBUST-403"
    severity = "error"
    title = "retry loop sleeps without jittered backoff or deadline"
    rationale = (
        "PR-6 invariant: a serving-layer retry loop that sleeps a "
        "fixed interval synchronizes clients into retry storms, and "
        "one that never consults the request deadline keeps burning "
        "the budget after the answer stopped mattering.  Sleeps "
        "inside repro.serving loops must be computed from a jittered "
        "backoff policy and bounded by the remaining deadline "
        "(see RetryPolicy.next_backoff)."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith(RETRY_PACKAGE):
            return
        for loop in ast.walk(ctx.tree):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            sleeps = [
                node
                for node in ast.walk(loop)
                if isinstance(node, ast.Call) and _is_sleep_call(node)
            ]
            if not sleeps:
                continue
            missing = []
            constant_sleep = any(
                isinstance(call.args[0], ast.Constant)
                for call in sleeps
                if call.args
            )
            if constant_sleep or not _mentions(loop, _BACKOFF_HINTS):
                missing.append("a jittered backoff")
            if not _mentions(loop, _DEADLINE_HINTS):
                missing.append("the request deadline")
            if missing:
                yield ctx.finding(
                    self,
                    sleeps[0],
                    "retry loop sleeps without consulting "
                    f"{' or '.join(missing)}; derive the pause from "
                    "RetryPolicy.next_backoff(attempt, token, "
                    "remaining_s) so retries jitter apart and stop "
                    "at the deadline",
                )
