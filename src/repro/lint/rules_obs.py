"""OBS rules: the PR-2 telemetry contract.

Every public pipeline entry point must be observable — it either
opens a span, touches the metrics registry, or delegates to a sibling
method that does — and every metric name must follow the
``docs/observability.md`` convention (snake_case; counters end in
``_total``; histograms carry a unit suffix) so dashboards and the
Prometheus exposition stay consistent.

PR 7 adds OBS-303: request-terminal events in ``repro.serving``
(resolving a request future, appending a :class:`RetryEvent`) must
stay attached to the end-to-end trace context, so the stitched
cross-replica trace never loses a terminal state.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Set

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

_SNAKE_CASE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Histogram names must end in a unit (or count) suffix.
HISTOGRAM_SUFFIXES = (
    "_seconds",
    "_joules",
    "_bytes",
    "_points",
    "_clouds",
    "_ratio",
    "_total",
)

#: Serving-layer classes held to the OBS-301 instrumentation contract
#: (in addition to ``*Pipeline`` everywhere).
_SERVING_CLASS_SUFFIXES = ("Server", "Batcher", "Queue", "Generator")

#: Method-name hints that a call touches telemetry directly.
_TELEMETRY_ATTRS = frozenset(
    {"span", "counter", "gauge", "histogram", "emit"}
)

#: Decorators whose methods are exempt from the instrumentation rule.
_EXEMPT_DECORATORS = ("property", "cached_property", "staticmethod")


def _touches_telemetry(fn: ast.FunctionDef) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _TELEMETRY_ATTRS:
                return True
        if isinstance(node, ast.Attribute) and node.attr in (
            "metrics",
            "tracer",
        ):
            return True
        if isinstance(node, ast.Name) and node.id in (
            "registry",
            "metrics",
            "tracer",
        ):
            return True
    return False


def _self_calls(fn: ast.FunctionDef) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
    return out


def _is_exempt(fn: ast.FunctionDef) -> bool:
    for decorator in fn.decorator_list:
        rendered = ast.unparse(decorator)
        if any(name in rendered for name in _EXEMPT_DECORATORS):
            return True
    return False


@register
class PipelineInstrumentationRule(Rule):
    """OBS-301: un-instrumented public pipeline stage methods."""

    rule_id = "OBS-301"
    severity = "warning"
    title = "public pipeline method emits no telemetry"
    rationale = (
        "PR-2 invariant: every public stage method on a *Pipeline "
        "class (and, in repro.serving, on *Server/*Batcher/*Queue/"
        "*Generator classes) opens a span or records metrics "
        "(directly or via a sibling method) so production traces "
        "cover every entry point."
    )

    @staticmethod
    def _covered(ctx: ModuleContext, node: ast.ClassDef) -> bool:
        if node.name.endswith("Pipeline"):
            return True
        return ctx.module.startswith("repro.serving") and (
            node.name.endswith(_SERVING_CLASS_SUFFIXES)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.ClassDef)
                and self._covered(ctx, node)
            ):
                continue
            methods: Dict[str, ast.FunctionDef] = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            instrumented = {
                name
                for name, fn in methods.items()
                if _touches_telemetry(fn)
            }
            # Delegation closure: a method that calls an instrumented
            # sibling counts as instrumented itself.
            changed = True
            while changed:
                changed = False
                for name, fn in methods.items():
                    if name in instrumented:
                        continue
                    if _self_calls(fn) & instrumented:
                        instrumented.add(name)
                        changed = True
            for name, fn in methods.items():
                if name.startswith("_") or name in instrumented:
                    continue
                if _is_exempt(fn):
                    continue
                yield ctx.finding(
                    self,
                    fn,
                    f"{node.name}.{name}() opens no span and "
                    "records no metrics (and delegates to no method "
                    "that does)",
                )


def _has_trace_evidence(fn: ast.FunctionDef) -> bool:
    """Does ``fn`` touch the request trace context anywhere?

    Evidence is any identifier that names the propagation machinery:
    a ``*trace*`` helper (``emit_request_trace``, ``_trace_of``,
    ``_close_request_trace``, ``tracer``), a ``*span*`` call, or a
    ``ctx`` reference (``request.ctx``, ``attempt_ctx``).
    """
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) and (
            "trace" in node.attr
            or "span" in node.attr
            or node.attr == "ctx"
        ):
            return True
        if isinstance(node, ast.Name) and (
            "trace" in node.id
            or "span" in node.id
            or "ctx" in node.id
        ):
            return True
    return False


@register
class TraceContextRule(Rule):
    """OBS-303: serving terminal events that drop the trace context."""

    rule_id = "OBS-303"
    severity = "error"
    title = "serving terminal event drops the trace context"
    rationale = (
        "PR-7 invariant: every request-terminal event in "
        "repro.serving stays attributable to its end-to-end trace. "
        "A RetryEvent must carry trace_id=..., and a function that "
        "resolves a request future (.future.set_result / "
        ".future.set_exception) must reference the request's trace "
        "context (a *trace*/*span* helper or a ctx attribute) so the "
        "stitched cross-replica trace has no silent terminal states."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.module.startswith("repro.serving"):
            return
        for fn in ast.walk(ctx.tree):
            if not isinstance(
                fn, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            evidence = _has_trace_evidence(fn)
            for node in ast.walk(fn):
                if not isinstance(node, ast.Call):
                    continue
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "RetryEvent"
                    and not any(
                        kw.arg == "trace_id" for kw in node.keywords
                    )
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"RetryEvent in {fn.name}() carries no "
                        "trace_id=; retry timelines cannot be "
                        "stitched to their request trace",
                    )
                elif (
                    not evidence
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr
                    in ("set_result", "set_exception")
                    and isinstance(node.func.value, ast.Attribute)
                    and node.func.value.attr == "future"
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"{fn.name}() resolves a request future "
                        "without touching the trace context; the "
                        "request terminates outside its trace",
                    )


@register
class MetricNamingRule(Rule):
    """OBS-302: metric names off the documented convention."""

    rule_id = "OBS-302"
    severity = "error"
    title = "metric name violates the naming convention"
    rationale = (
        "docs/observability.md: metric names are snake_case; "
        "counters end in _total; histograms end in a unit suffix "
        "(_seconds, _joules, _bytes, _points, _clouds, _ratio); "
        "metrics emitted by the serving layer carry the serving_ "
        "prefix and metrics emitted by the scene partitioner carry "
        "the partition_ prefix.  Consistent names keep the "
        "Prometheus exposition scrapeable and dashboards portable."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        serving = ctx.module.startswith("repro.serving")
        partition = ctx.module.startswith("repro.partition")
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("counter", "gauge", "histogram")
                and node.args
            ):
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            name = first.value
            kind = node.func.attr
            for problem in self._name_problems(
                name, kind, serving, partition
            ):
                yield ctx.finding(self, node, problem)

    @staticmethod
    def _name_problems(
        name: str,
        kind: str,
        serving: bool = False,
        partition: bool = False,
    ) -> List[str]:
        problems: List[str] = []
        if not _SNAKE_CASE.match(name):
            problems.append(
                f"metric name {name!r} is not snake_case"
            )
        if kind == "counter" and not name.endswith("_total"):
            problems.append(
                f"counter {name!r} must end in '_total'"
            )
        if kind == "histogram" and not name.endswith(
            HISTOGRAM_SUFFIXES
        ):
            problems.append(
                f"histogram {name!r} must end in a unit suffix "
                f"({', '.join(HISTOGRAM_SUFFIXES)})"
            )
        if serving and not name.startswith("serving_"):
            problems.append(
                f"metric {name!r} emitted from the serving layer "
                "must carry the 'serving_' prefix"
            )
        if partition and not name.startswith("partition_"):
            problems.append(
                f"metric {name!r} emitted from the partition layer "
                "must carry the 'partition_' prefix"
            )
        return problems
