"""Project-aware static analysis: ``repro lint``.

An AST-based rule engine enforcing the invariants the test suite can
only sample:

- **PERF** (PERF-101..105) — Morton kernels in ``repro.core`` /
  ``repro.nn`` stay O(W) and vectorized (paper Secs. 5.1-5.2), and
  the exact sampler / neighbor packages never materialize a full
  pairwise distance matrix outside a chunk loop (PR 9);
- **DET** (DET-201/202) — randomness flows through seeded
  ``np.random.default_rng`` generators and wall-clock reads through
  the :mod:`repro.observability.clock` shim (paper Sec. 5.3, PR 1);
- **OBS** (OBS-301/302) — pipeline entry points emit telemetry and
  metric names follow ``docs/observability.md`` (PR 2);
- **ROBUST** (ROBUST-401/402) — no silently swallowed broad excepts,
  and array-returning kernels document their shape/dtype contract
  (PR 1);
- **CONC** (CONC-501..505) — whole-program lock discipline for the
  threaded serving stack: guarded attribute writes, acyclic lock
  acquisition order, predicate-looped condition waits, workspace
  ownership, and no blocking calls under a lock (PR 8).  Backed by
  the cross-module :class:`~repro.lint.concurrency.ProjectContext`
  pass and cross-validated at runtime by
  :class:`repro.robustness.lockwatch.LockOrderWatchdog`.

See ``docs/static_analysis.md`` for the rule catalog, the inline
``# repro: allow[RULE-ID]`` suppression syntax, and the baseline
workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.concurrency import ProjectContext
from repro.lint.engine import (
    ModuleContext,
    PARSE_RULE_ID,
    Rule,
    all_rules,
    derive_module,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.lint.findings import (
    Finding,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    severity_at_least,
)
from repro.lint.runner import (
    LintReport,
    collect,
    render_json,
    render_text,
    run_lint,
)

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleContext",
    "PARSE_RULE_ID",
    "ProjectContext",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "all_rules",
    "collect",
    "derive_module",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
    "run_lint",
    "severity_at_least",
]
