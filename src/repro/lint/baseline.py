"""Checked-in finding baselines: grandfather old findings, gate new.

A baseline is a JSON document listing finding fingerprints (with
occurrence counts, so two identical findings in one file need two
baseline slots).  ``repro lint --baseline FILE`` subtracts baselined
findings before the ``--fail-on`` gate, which turns the linter into a
zero-*new*-findings gate on legacy trees; ``--write-baseline`` emits
the file.  Entries carry the rule/path/message they matched so the
file stays reviewable, plus an optional free-form ``reason``.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

SCHEMA_VERSION = 1


@dataclass
class Baseline:
    """Fingerprint -> allowed-occurrence-count map."""

    counts: Dict[str, int] = field(default_factory=dict)
    note: str = ""
    entries: List[Dict[str, object]] = field(default_factory=list)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], note: str = ""
    ) -> "Baseline":
        baseline = cls(note=note)
        findings = list(findings)
        for finding in findings:
            fp = finding.fingerprint
            baseline.counts[fp] = baseline.counts.get(fp, 0) + 1
        by_fp = {f.fingerprint: f for f in findings}
        for fp, count in sorted(baseline.counts.items()):
            finding = by_fp[fp]
            baseline.entries.append(
                {
                    "fingerprint": fp,
                    "count": count,
                    "rule": finding.rule,
                    "path": finding.path,
                    "message": finding.message,
                }
            )
        return baseline

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        version = data.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema_version {version!r}"
            )
        baseline = cls(note=data.get("note", ""))
        for entry in data.get("findings", []):
            fp = entry["fingerprint"]
            count = int(entry.get("count", 1))
            baseline.counts[fp] = baseline.counts.get(fp, 0) + count
            baseline.entries.append(dict(entry))
        return baseline

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "note": self.note,
            "findings": self.entries,
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def audit(
        self, findings: Iterable[Finding]
    ) -> List[Dict[str, object]]:
        """Entries with more allowed slots than findings that fired.

        Each returned dict is the original entry plus a ``dead`` count
        of unused slots.  Dead entries mean the underlying issue was
        fixed (or the rule changed) but the grandfather list was never
        trimmed — the runner warns on them and ``--prune-baseline``
        drops them, so the baseline can only shrink over time.
        """
        fired = Counter(f.fingerprint for f in findings)
        stale: List[Dict[str, object]] = []
        for entry in self.entries:
            fp = str(entry["fingerprint"])
            allowed = int(entry.get("count", 1))
            used = min(allowed, fired[fp])
            fired[fp] -= used
            if used < allowed:
                dead = dict(entry)
                dead["dead"] = allowed - used
                stale.append(dead)
        return stale

    def prune(self, findings: Iterable[Finding]) -> "Baseline":
        """Copy of this baseline keeping only slots that still fire."""
        fired = Counter(f.fingerprint for f in findings)
        pruned = Baseline(note=self.note)
        for entry in self.entries:
            fp = str(entry["fingerprint"])
            allowed = int(entry.get("count", 1))
            used = min(allowed, fired[fp])
            fired[fp] -= used
            if used:
                kept = dict(entry)
                kept["count"] = used
                pruned.entries.append(kept)
                pruned.counts[fp] = pruned.counts.get(fp, 0) + used
        return pruned

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into ``(new, grandfathered)``.

        Up to ``count`` findings per fingerprint are absorbed by the
        baseline (in input order); the rest are new.
        """
        used: Counter = Counter()
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            fp = finding.fingerprint
            if used[fp] < self.counts.get(fp, 0):
                used[fp] += 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old
