"""PERF rules: keep the Morton kernels O(W) and vectorized.

EdgePC's entire speedup story (paper Secs. 5.1-5.2) is replacing
O(N^2) brute-force sampling/search with vectorized Morton-window
kernels, so a Python-level per-point loop sneaking into a kernel
module silently undoes the contribution.  These rules watch the hot
kernel modules of ``repro.core`` / ``repro.nn`` for the three ways
that happens: data-dependent nested loops, list-append accumulation,
and scalar ``float()`` boxing inside loops.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import Finding

#: Packages whose modules are hot-path kernels by default.
HOT_PACKAGES: Tuple[str, ...] = ("repro.core.", "repro.nn.")

#: Modules under the hot packages that are *not* per-batch kernels:
#: offline exploration, configuration, model graph construction, and
#: training plumbing, where Python loops over layers are idiomatic.
NON_KERNEL_MODULES = frozenset(
    {
        "repro.core.dse",
        "repro.core.pipeline",
        "repro.nn.autograd",
        "repro.nn.dgcnn",
        "repro.nn.layers",
        "repro.nn.losses",
        "repro.nn.optim",
        "repro.nn.pointnet",
        "repro.nn.pointnet2",
        "repro.nn.recorder",
        "repro.nn.serialization",
    }
)


def in_hot_kernel(module: str) -> bool:
    """True for modules the PERF rules police."""
    if module in NON_KERNEL_MODULES:
        return False
    return any(module.startswith(pkg) for pkg in HOT_PACKAGES)


def _is_constant_expr(node: ast.AST) -> bool:
    """Conservative "bounded by a compile-time constant" test.

    Accepts literals, ALL_CAPS names/attributes (module constants),
    and unary/binary arithmetic over those.
    """
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    if isinstance(node, ast.UnaryOp):
        return _is_constant_expr(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_constant_expr(node.left) and _is_constant_expr(
            node.right
        )
    return False


def is_constant_iterable(node: ast.AST) -> bool:
    """True when a ``for`` target iterates a constant-bounded source:
    a literal tuple/list, an ALL_CAPS constant, or ``range``/
    ``enumerate``/``zip``/``reversed`` over such sources."""
    if isinstance(node, (ast.Tuple, ast.List)):
        return True
    if _is_constant_expr(node):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("range", "enumerate", "zip", "reversed"):
            return all(
                _is_constant_expr(arg) or is_constant_iterable(arg)
                for arg in node.args
            )
    return False


def _is_data_dependent_loop(loop: ast.AST) -> bool:
    if isinstance(loop, ast.While):
        return True
    if isinstance(loop, ast.For):
        return not is_constant_iterable(loop.iter)
    return False


def _loops(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.While)):
            yield node


def _inner_loops(loop: ast.AST) -> Iterator[ast.AST]:
    body = loop.body + getattr(loop, "orelse", [])
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.For, ast.While)):
                yield node


@register
class NestedDataLoopRule(Rule):
    """PERF-101: data-dependent nested Python loops in a kernel."""

    rule_id = "PERF-101"
    severity = "warning"
    title = "nested data-dependent Python loops in a hot kernel"
    rationale = (
        "Paper Secs. 5.1-5.2: Morton kernels must stay O(W) and "
        "vectorized; a nested Python loop over data-sized iterables "
        "is the O(N^2) brute-force shape EdgePC exists to avoid."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_hot_kernel(ctx.module):
            return
        reported = set()
        for outer in _loops(ctx.tree):
            if not _is_data_dependent_loop(outer):
                continue
            for inner in _inner_loops(outer):
                if id(inner) in reported:
                    continue
                if _is_data_dependent_loop(inner):
                    reported.add(id(inner))
                    yield ctx.finding(
                        self,
                        inner,
                        "data-dependent loop nested inside another "
                        "data-dependent loop; vectorize with NumPy "
                        "or bound one loop by a constant",
                    )


@register
class AppendAccumulationRule(Rule):
    """PERF-102: list-append accumulation inside a kernel loop."""

    rule_id = "PERF-102"
    severity = "warning"
    title = "list-append accumulation in a hot-kernel loop"
    rationale = (
        "Per-element .append() in a kernel loop reboxes array data "
        "into Python objects; hot paths must preallocate or use "
        "vectorized NumPy ops (paper Sec. 5.1 'fully parallel')."
    )

    _METHODS = ("append", "extend", "insert")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_hot_kernel(ctx.module):
            return
        for node in _calls_in_any_loop(ctx.tree):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._METHODS
            ):
                yield ctx.finding(
                    self,
                    node,
                    f".{node.func.attr}() accumulation inside a "
                    "kernel loop; preallocate the output array "
                    "or use a vectorized expression",
                )


@register
class ScalarFloatBoxingRule(Rule):
    """PERF-103: bare ``float()`` boxing inside a kernel loop."""

    rule_id = "PERF-103"
    severity = "warning"
    title = "scalar float() call in a hot-kernel loop"
    rationale = (
        "Bare float() in a per-point loop forces float64 scalar "
        "boxing and an implicit upcast of downstream array math; "
        "keep per-point arithmetic inside dtype-stable NumPy ops."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_hot_kernel(ctx.module):
            return
        for node in _calls_in_any_loop(ctx.tree):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "float"
            ):
                yield ctx.finding(
                    self,
                    node,
                    "bare float() inside a kernel loop boxes a "
                    "scalar and upcasts to float64; hoist it out "
                    "of the loop or vectorize",
                )


#: Names that conventionally hold the batch extent.  A ``for`` loop
#: over ``range()`` of one of these (or of ``<expr>.shape[0]``) is the
#: per-cloud dispatch shape the batched kernel layer replaced.
BATCH_NAMES = frozenset(
    {
        "batch",
        "batch_size",
        "num_batches",
        "n_batches",
        "nbatch",
        "batches",
        "num_clouds",
        "n_clouds",
    }
)


def _is_batch_extent(node: ast.AST) -> bool:
    """``batch``-style name or a ``<expr>.shape[0]`` subscript."""
    if isinstance(node, ast.Name):
        return node.id in BATCH_NAMES
    if isinstance(node, ast.Subscript):
        index = node.slice
        return (
            isinstance(node.value, ast.Attribute)
            and node.value.attr == "shape"
            and isinstance(index, ast.Constant)
            and index.value == 0
        )
    return False


@register
class PerBatchLoopRule(Rule):
    """PERF-104: a per-cloud Python loop over the batch dimension."""

    rule_id = "PERF-104"
    severity = "warning"
    title = "per-cloud Python loop over the batch dimension"
    rationale = (
        "The batched kernel layer dispatches whole (B, N, 3) batches "
        "in single NumPy calls; `for b in range(batch)` re-enters the "
        "interpreter once per cloud and pays B dispatch overheads. "
        "Call the *_batch kernel, or keep chunked loops to 3-arg "
        "range(start, stop, step) strides."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_hot_kernel(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.For) and isinstance(node.iter, ast.Call)):
                continue
            call = node.iter
            if not (
                isinstance(call.func, ast.Name)
                and call.func.id == "range"
                and len(call.args) == 1
            ):
                continue
            if _is_batch_extent(call.args[0]):
                yield ctx.finding(
                    self,
                    node,
                    "Python loop over the batch dimension; use the "
                    "batched (B, N, ...) kernel instead of a "
                    "per-cloud range() loop",
                )


#: Packages whose kernels must never materialize a full pairwise
#: distance matrix: the exact samplers and neighbor engines, where a
#: broadcast ``(N, M)`` intermediate at 40k+ points is exactly the
#: memory blow-up the chunked / grid fast paths exist to avoid.
PAIRWISE_PACKAGES: Tuple[str, ...] = (
    "repro.core.",
    "repro.sampling.",
    "repro.neighbors.",
)

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.MatMult)


def in_pairwise_kernel(module: str) -> bool:
    """True for modules the pairwise-broadcast rule polices."""
    if module in NON_KERNEL_MODULES:
        return False
    return any(module.startswith(pkg) for pkg in PAIRWISE_PACKAGES)


def _is_none_index(node: ast.AST) -> bool:
    """``None`` literal or ``np.newaxis``-style attribute."""
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    return isinstance(node, ast.Attribute) and node.attr == "newaxis"


def _broadcast_axis(node: ast.AST) -> str:
    """Classify a subscript's inserted broadcast axis.

    ``x[:, None]`` (axis appended after real data) -> ``"trail"``;
    ``y[None, :]`` (axis prepended) -> ``"lead"``; anything else ->
    ``""``.  The trail/lead pair is the outer-product shape that turns
    two ``(N,)``/``(M,)`` operands into an ``(N, M)`` matrix.
    """
    if not isinstance(node, ast.Subscript):
        return ""
    index = node.slice
    if not isinstance(index, ast.Tuple) or len(index.elts) < 2:
        return ""
    head, tail = index.elts[0], index.elts[-1]
    if _is_none_index(head) and not _is_none_index(tail):
        return "lead"
    if _is_none_index(tail) and not _is_none_index(head):
        return "trail"
    return ""


def _is_chunk_stride_loop(node: ast.AST) -> bool:
    """A ``for lo in range(start, stop[, step])`` tile loop — the
    chunking idiom that bounds a pairwise block's row count."""
    return (
        isinstance(node, ast.For)
        and isinstance(node.iter, ast.Call)
        and isinstance(node.iter.func, ast.Name)
        and node.iter.func.id == "range"
        and len(node.iter.args) >= 2
    )


def _is_arith_binop(node: ast.AST) -> bool:
    return isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS)


def _matches_pairwise_broadcast(root: ast.BinOp) -> bool:
    """True when the arithmetic tree under ``root`` both subtracts and
    combines a trailing-``None`` operand with a leading-``None`` one —
    the ``a[:, None] - b[None, :]`` / matmul-expansion shape whose
    result spans every (query, candidate) pair at once."""
    has_sub = False
    axes = set()
    for node in ast.walk(root):
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
            has_sub = True
        axis = _broadcast_axis(node)
        if axis:
            axes.add(axis)
    return has_sub and axes == {"lead", "trail"}


@register
class PairwiseBroadcastRule(Rule):
    """PERF-105: an unchunked full pairwise-distance broadcast."""

    rule_id = "PERF-105"
    severity = "warning"
    title = "full pairwise-distance broadcast without a chunk bound"
    rationale = (
        "Broadcasting queries against candidates in one expression "
        "materializes the whole (N, M) distance matrix — ~13 GB for "
        "a 40k self-query — where the chunked tile loops and the "
        "grid engine keep peak memory at a workspace-sized block. "
        "Tile the query axis with a strided range() loop (see "
        "neighbors.batched._distance_chunks) or use the grid kernels."
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not in_pairwise_kernel(ctx.module):
            return
        yield from self._scan(ctx, ctx.tree, chunked=False)

    def _scan(
        self, ctx: ModuleContext, node: ast.AST, chunked: bool
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            inside_chunk = chunked or _is_chunk_stride_loop(child)
            if not inside_chunk and _is_arith_binop(child):
                if _matches_pairwise_broadcast(child):
                    yield ctx.finding(
                        self,
                        child,
                        "pairwise broadcast materializes the full "
                        "(N, M) distance matrix; bound the query "
                        "axis with a strided range() chunk loop or "
                        "route through the grid engine",
                    )
                # Either way this maximal arithmetic tree is decided;
                # its sub-expressions must not re-match.
                continue
            yield from self._scan(ctx, child, inside_chunk)


def _calls_in_any_loop(tree: ast.AST) -> Iterator[ast.Call]:
    """Call nodes inside at least one loop body, each yielded once
    (loop headers excluded)."""
    seen = set()
    for loop in _loops(tree):
        body = loop.body + getattr(loop, "orelse", [])
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and id(node) not in seen:
                    seen.add(id(node))
                    yield node
