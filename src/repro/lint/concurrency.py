"""Whole-program concurrency analysis and the CONC-5xx rules.

The PR-3 engine is strictly per-module: each rule sees one
:class:`~repro.lint.engine.ModuleContext` at a time.  The threaded
serving stack (PR 5-7) is exactly the code that per-module analysis
cannot defend — a lock lives in one class, the ``with`` region that
guards an attribute lives in another module, and a deadlock needs two
call chains that never share a file.  This module adds the missing
layer:

* :class:`ProjectContext` — built once per lint run over *every*
  parsed module.  It resolves classes, their lock attributes
  (``threading.Lock`` / ``RLock`` / ``Condition``), attribute types
  (from constructor assignments, parameter annotations, and dataclass
  fields), and then walks every function tracking which locks are
  lexically held.  Guard knowledge propagates through private call
  sites: a helper whose internal callers all hold lock L is treated as
  guarded by L, and methods documenting ``Caller must hold
  :attr:`x``` (or named ``*_locked``) are treated as externally
  guarded.
* Five rules over the resolved project:

  ========  =======================================================
  CONC-501  shared attribute written both inside and outside its
            inferred guard
  CONC-502  inconsistent lock-acquisition order (cycle in the
            whole-program lock-order graph) or a plain ``Lock``
            re-acquired while held
  CONC-503  ``Condition.wait()`` outside a predicate re-check loop
  CONC-504  ``Workspace`` created in threaded code without
            ``claim_owner()``
  CONC-505  blocking call (sleep, I/O, ``.result()``, ``.infer()``,
            queue get, …) while holding a lock
  ========  =======================================================

Locks are identified by ``"ClassName.attr"`` (or ``"module.NAME"``
for module-level locks).  The same identities are used by the runtime
sanitizer :mod:`repro.robustness.lockwatch`, so the static lock-order
graph and the watchdog's observed-order report cross-validate.

Known precision limits (deliberate): only ``self.attr`` writes are
attributed (no escape analysis for objects mutated through locals),
``lock.acquire()`` outside a ``with`` is not tracked, and attributes
whose writes are *never* guarded are invisible to CONC-501 — the rule
fires on mixed discipline, not on absent discipline.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import ModuleContext, Rule, register
from repro.lint.findings import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

#: threading factory name -> lock kind.
LOCK_KINDS = {"Lock": "Lock", "RLock": "RLock", "Condition": "Condition"}

#: Kinds a thread may safely re-acquire while already holding them.
REENTRANT_KINDS = {"RLock", "Condition"}

#: Method calls on ``self.attr`` that mutate the container in place.
MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "pop",
    "popleft",
    "appendleft",
    "clear",
    "update",
    "add",
    "remove",
    "discard",
    "setdefault",
}

#: Bare-name calls considered blocking for CONC-505.
BLOCKING_NAMES = {"sleep", "open", "input"}

#: Attribute calls considered blocking for CONC-505 (``.wait`` is the
#: sanctioned park and stays exempt; CONC-503 owns its correctness).
BLOCKING_ATTRS = {
    "sleep",
    "result",
    "join",
    "infer",
    "_infer",
    "next_batch",
    "read",
    "recv",
    "send",
}

#: ``__init__``-like methods whose writes are construction, not races.
CONSTRUCTOR_METHODS = {"__init__", "__post_init__", "__new__"}

_CALLER_HOLDS_RE = re.compile(
    r"[Cc]aller (?:must hold|holds)\s+(?::attr:)?`?([A-Za-z_][A-Za-z0-9_]*)`?"
)


def _last_name(node: ast.AST) -> Optional[str]:
    """Terminal identifier of a dotted expression (``a.b.C`` -> ``C``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _type_name(node: Optional[ast.AST]) -> Optional[str]:
    """Bare class name named by an annotation, unwrapping ``Optional``."""
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        if _last_name(node.value) == "Optional":
            return _type_name(node.slice)
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _type_name(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return None
    return None


def _elem_type_name(node: Optional[ast.AST]) -> Optional[str]:
    """Element class named by a container annotation, if any."""
    if not isinstance(node, ast.Subscript):
        return None
    base = _last_name(node.value)
    inner = node.slice
    if base == "Optional":
        return _elem_type_name(inner)
    if base in {"List", "Sequence", "Deque", "Iterable", "Tuple", "list"}:
        if isinstance(inner, ast.Tuple) and inner.elts:
            return _type_name(inner.elts[0])
        return _type_name(inner)
    if base in {"Dict", "Mapping", "dict"}:
        if isinstance(inner, ast.Tuple) and len(inner.elts) == 2:
            return _type_name(inner.elts[1])
    return None


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id in {"self", "cls"}


def _docstring_guards(node: ast.AST) -> List[str]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return []
    doc = ast.get_docstring(node, clean=True)
    if not doc:
        return []
    return _CALLER_HOLDS_RE.findall(doc)


@dataclass
class ClassInfo:
    """One resolved class: its locks, attribute types, and methods."""

    name: str
    module: str
    path: str
    locks: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    elem_types: Dict[str, str] = field(default_factory=dict)
    methods: Dict[str, ast.AST] = field(default_factory=dict)


@dataclass
class _Site:
    """A source position plus the lock context it occurred in."""

    path: str
    line: int
    col: int
    held: Tuple[str, ...]
    func: str


@dataclass
class _Write(_Site):
    cls: str = ""
    attr: str = ""


@dataclass
class _Wait(_Site):
    lock: str = ""
    in_loop: bool = False


@dataclass
class _Acquire(_Site):
    lock: str = ""


@dataclass
class _Call(_Site):
    callee: str = ""


@dataclass
class _Block(_Site):
    desc: str = ""


@dataclass
class FunctionInfo:
    """Per-function facts collected by the walker."""

    key: str
    name: str
    cls: Optional[str]
    path: str
    module: str
    doc_guard_attrs: List[str] = field(default_factory=list)
    external: bool = False
    acquires: List[_Acquire] = field(default_factory=list)
    writes: List[_Write] = field(default_factory=list)
    waits: List[_Wait] = field(default_factory=list)
    calls: List[_Call] = field(default_factory=list)
    blocks: List[_Block] = field(default_factory=list)
    workspace_sites: List[Tuple[int, int]] = field(default_factory=list)
    has_claim: bool = False
    direct_locks: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class PreFinding:
    """A project-level finding waiting to be emitted for its file."""

    path: str
    lineno: int
    col_offset: int
    message: str


class ProjectContext:
    """Cross-module view of classes, locks, and guard regions.

    Built single-threaded once per lint run (the per-file rule visits
    may then fan out across a thread pool); every
    :class:`ModuleContext` gets this object attached as
    ``ctx.project`` so rules can correlate files.
    """

    def __init__(self) -> None:
        self.classes: Dict[str, ClassInfo] = {}
        self.lock_kinds: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.guards: Dict[str, Set[str]] = {}
        #: (held, acquired) -> earliest site establishing the edge.
        self.edges: Dict[Tuple[str, str], _Site] = {}
        self.self_acquires: List[Tuple[str, _Site]] = []
        self.threaded_modules: Set[str] = set()
        self.findings: Dict[str, List[PreFinding]] = {}
        self._module_locks: Dict[str, Dict[str, str]] = {}
        self._module_funcs: Dict[str, Dict[str, str]] = {}
        self._unique_lock_attrs: Dict[str, str] = {}

    # -- construction ------------------------------------------------

    @classmethod
    def build(cls, contexts: Sequence[ModuleContext]) -> "ProjectContext":
        project = cls()
        ordered = sorted(contexts, key=lambda c: c.path)
        for ctx in ordered:
            project._scan_module(ctx)
        project._finalize_lock_index()
        for ctx in ordered:
            project._walk_module(ctx)
        project._propagate_guards()
        project._build_order_graph()
        project._analyze()
        return project

    @classmethod
    def from_paths(cls, paths: Iterable[str]) -> "ProjectContext":
        """Parse ``*.py`` files under ``paths`` and build a project.

        Unparseable files are skipped — this entry point serves the
        runtime watchdog and docs, not the lint gate (which reports
        PARSE-001 separately).
        """
        from repro.lint.engine import iter_python_files

        contexts: List[ModuleContext] = []
        for path in iter_python_files(paths):
            try:
                with open(path, encoding="utf-8") as fh:
                    contexts.append(ModuleContext.from_source(path, fh.read()))
            except (OSError, SyntaxError):
                continue
        return cls.build(contexts)

    def _scan_module(self, ctx: ModuleContext) -> None:
        tail = ctx.module.rsplit(".", 1)[-1] or ctx.module
        module_locks: Dict[str, str] = {}
        module_funcs: Dict[str, str] = {}
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                kind = self._lock_factory_kind(node.value)
                if isinstance(target, ast.Name) and kind is not None:
                    module_locks[target.id] = kind
                    self.lock_kinds[f"{tail}.{target.id}"] = kind
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_funcs[node.name] = f"{ctx.module}::{node.name}"
            elif isinstance(node, ast.ClassDef):
                self._scan_class(ctx, node)
        self._module_locks[ctx.module] = module_locks
        self._module_funcs[ctx.module] = module_funcs
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _last_name(node.func) == "Thread":
                self.threaded_modules.add(ctx.module)
                break

    def _scan_class(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        info = self.classes.get(node.name)
        if info is not None:
            # Same bare name in two modules: keep the first (sorted
            # path order) for resolution; collisions are rare and only
            # cost precision, never correctness of suppression-free
            # self-hosting (messages stay deterministic).
            info = ClassInfo(name=node.name, module=ctx.module, path=ctx.path)
            self._ingest_class_body(info, node)
            return
        info = ClassInfo(name=node.name, module=ctx.module, path=ctx.path)
        self._ingest_class_body(info, node)
        self.classes[node.name] = info

    def _ingest_class_body(self, info: ClassInfo, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                self._note_attr_annotation(info, stmt.target.id, stmt.annotation)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = stmt
                self._scan_method_assignments(info, stmt)

    def _note_attr_annotation(
        self, info: ClassInfo, attr: str, annotation: Optional[ast.AST]
    ) -> None:
        type_name = _type_name(annotation)
        if type_name in LOCK_KINDS:
            info.locks[attr] = LOCK_KINDS[type_name]
            self.lock_kinds[f"{info.name}.{attr}"] = LOCK_KINDS[type_name]
            return
        if type_name is not None:
            info.attr_types.setdefault(attr, type_name)
        elem = _elem_type_name(annotation)
        if elem is not None:
            info.elem_types.setdefault(attr, elem)

    def _scan_method_assignments(self, info: ClassInfo, func: ast.AST) -> None:
        params: Dict[str, Optional[ast.AST]] = {}
        args = getattr(func, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                params[arg.arg] = arg.annotation
        for stmt in ast.walk(func):  # type: ignore[arg-type]
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            annotation: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign):
                targets, value = list(stmt.targets), stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                targets, value = [stmt.target], stmt.value
                annotation = stmt.annotation
            else:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute) and _is_self(target.value)
                ):
                    continue
                attr = target.attr
                if annotation is not None:
                    self._note_attr_annotation(info, attr, annotation)
                kind = self._lock_factory_kind(value)
                if kind is None and isinstance(value, ast.Name):
                    kind_name = _type_name(params.get(value.id))
                    kind = LOCK_KINDS.get(kind_name or "")
                if kind is not None:
                    info.locks[attr] = kind
                    self.lock_kinds[f"{info.name}.{attr}"] = kind
                    continue
                value_type = self._value_type_name(value, params)
                if value_type is not None:
                    info.attr_types.setdefault(attr, value_type)
                elem = self._value_elem_type_name(value)
                if elem is not None:
                    info.elem_types.setdefault(attr, elem)

    @staticmethod
    def _lock_factory_kind(value: Optional[ast.AST]) -> Optional[str]:
        if isinstance(value, ast.Call):
            name = _last_name(value.func)
            if name in LOCK_KINDS:
                return LOCK_KINDS[name]
        return None

    def _value_type_name(
        self, value: Optional[ast.AST], params: Dict[str, Optional[ast.AST]]
    ) -> Optional[str]:
        if isinstance(value, ast.Call):
            name = _last_name(value.func)
            if name is not None and name[:1].isupper():
                return name
        if isinstance(value, ast.Name) and value.id in params:
            return _type_name(params[value.id])
        return None

    @staticmethod
    def _value_elem_type_name(value: Optional[ast.AST]) -> Optional[str]:
        elt: Optional[ast.AST] = None
        if isinstance(value, ast.ListComp):
            elt = value.elt
        elif isinstance(value, (ast.List, ast.Tuple)) and value.elts:
            elt = value.elts[0]
        if isinstance(elt, ast.Call):
            name = _last_name(elt.func)
            if name is not None and name[:1].isupper():
                return name
        return None

    def _finalize_lock_index(self) -> None:
        by_attr: Dict[str, List[str]] = {}
        for info in self.classes.values():
            for attr in info.locks:
                by_attr.setdefault(attr, []).append(f"{info.name}.{attr}")
        self._unique_lock_attrs = {
            attr: keys[0] for attr, keys in by_attr.items() if len(keys) == 1
        }

    # -- expression resolution --------------------------------------

    def _expr_type(
        self, node: ast.AST, env: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value, env)
            info = self.classes.get(base or "")
            if info is not None:
                return info.attr_types.get(node.attr)
            return None
        if isinstance(node, ast.Call):
            name = _last_name(node.func)
            if name in self.classes:
                return name
            return None
        if isinstance(node, ast.Subscript):
            value = node.value
            if isinstance(value, ast.Attribute):
                base = self._expr_type(value.value, env)
                info = self.classes.get(base or "")
                if info is not None:
                    return info.elem_types.get(value.attr)
        return None

    def resolve_lock(
        self, node: ast.AST, env: Dict[str, str], module: str
    ) -> Optional[str]:
        """Stable identity of the lock named by ``node``, if known."""
        if isinstance(node, ast.Name):
            tail = module.rsplit(".", 1)[-1] or module
            key = f"{tail}.{node.id}"
            if node.id in self._module_locks.get(module, {}):
                return key
            return None
        if isinstance(node, ast.Attribute):
            base = self._expr_type(node.value, env)
            info = self.classes.get(base or "")
            if info is not None and node.attr in info.locks:
                return f"{info.name}.{node.attr}"
            if info is None and base is None:
                return self._unique_lock_attrs.get(node.attr)
        return None

    def resolve_call(
        self, func: ast.AST, env: Dict[str, str], module: str
    ) -> Optional[str]:
        if isinstance(func, ast.Name):
            own = self._module_funcs.get(module, {})
            if func.id in own:
                return own[func.id]
            if func.id in self.classes:
                return f"{func.id}.__init__"
            hits = sorted(
                funcs[func.id]
                for funcs in self._module_funcs.values()
                if func.id in funcs
            )
            if len(hits) == 1:
                return hits[0]
            return None
        if isinstance(func, ast.Attribute):
            base = self._expr_type(func.value, env)
            info = self.classes.get(base or "")
            if info is not None and func.attr in info.methods:
                return f"{info.name}.{func.attr}"
        return None

    # -- function walking -------------------------------------------

    def _walk_module(self, ctx: ModuleContext) -> None:
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{ctx.module}::{node.name}"
                self._walk_function(ctx, node, key, node.name, None)
            elif isinstance(node, ast.ClassDef):
                info = self.classes.get(node.name)
                cls_name = node.name if info is not None else None
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        key = f"{node.name}.{stmt.name}"
                        self._walk_function(ctx, stmt, key, stmt.name, cls_name)

    def _walk_function(
        self,
        ctx: ModuleContext,
        node: ast.AST,
        key: str,
        name: str,
        cls_name: Optional[str],
    ) -> None:
        if key in self.functions:
            # Re-walk under a unique key so duplicate class names
            # (fixture trees) never merge unrelated facts.
            key = f"{key}@{ctx.path}"
            if key in self.functions:
                return
        env: Dict[str, str] = {}
        if cls_name is not None:
            env["self"] = cls_name
            env["cls"] = cls_name
        args = getattr(node, "args", None)
        if args is not None:
            for arg in list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            ):
                arg_type = _type_name(arg.annotation)
                if arg_type is not None and arg.arg not in env:
                    env[arg.arg] = arg_type
        doc_attrs = _docstring_guards(node)
        info = FunctionInfo(
            key=key,
            name=name,
            cls=cls_name,
            path=ctx.path,
            module=ctx.module,
            doc_guard_attrs=doc_attrs,
            external=bool(doc_attrs) or name.endswith("_locked"),
        )
        self.functions[key] = info
        walker = _FunctionWalker(self, ctx, info, env)
        walker.walk(getattr(node, "body", []))
        for nested_node, nested_name in walker.nested:
            nested_key = f"{key}.<locals>.{nested_name}"
            self._walk_function(ctx, nested_node, nested_key, nested_name, cls_name)

    # -- guard propagation ------------------------------------------

    def _doc_guard_locks(self, info: FunctionInfo) -> Set[str]:
        out: Set[str] = set()
        cls = self.classes.get(info.cls or "")
        for attr in info.doc_guard_attrs:
            if cls is not None and attr in cls.locks:
                out.add(f"{cls.name}.{attr}")
            elif attr in self._unique_lock_attrs:
                out.add(self._unique_lock_attrs[attr])
        return out

    def _propagate_guards(self) -> None:
        calls_to: Dict[str, List[_Call]] = {}
        for func in self.functions.values():
            for call in func.calls:
                if call.callee in self.functions:
                    calls_to.setdefault(call.callee, []).append(call)
        guards: Dict[str, Set[str]] = {
            key: self._doc_guard_locks(func)
            for key, func in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, func in self.functions.items():
                # Call-site guards flow only into private helpers (and
                # documented caller-must-hold methods): a public method
                # is part of the class contract and may gain external
                # callers that hold nothing.
                if not (func.name.startswith("_") or func.external):
                    continue
                sites = calls_to.get(key, [])
                if not sites:
                    continue
                inherited: Optional[Set[str]] = None
                for site in sites:
                    effective = set(site.held) | guards.get(site.func, set())
                    if inherited is None:
                        inherited = effective
                    else:
                        inherited &= effective
                new = self._doc_guard_locks(func) | (inherited or set())
                if new != guards[key]:
                    guards[key] = new
                    changed = True
        self.guards = guards

    def effective_held(self, site: _Site) -> Set[str]:
        return set(site.held) | self.guards.get(site.func, set())

    # -- lock-order graph -------------------------------------------

    def _transitive_locks(self) -> Dict[str, Set[str]]:
        trans: Dict[str, Set[str]] = {
            key: set(func.direct_locks)
            for key, func in self.functions.items()
        }
        changed = True
        while changed:
            changed = False
            for key, func in self.functions.items():
                for call in func.calls:
                    callee = trans.get(call.callee)
                    if callee and not callee <= trans[key]:
                        trans[key] |= callee
                        changed = True
        return trans

    def _add_edge(self, held: str, acquired: str, site: _Site) -> None:
        if held == acquired:
            if self.lock_kinds.get(held) not in REENTRANT_KINDS:
                self.self_acquires.append((held, site))
            return
        key = (held, acquired)
        best = self.edges.get(key)
        if best is None or (site.path, site.line, site.col) < (
            best.path,
            best.line,
            best.col,
        ):
            self.edges[key] = site

    def _build_order_graph(self) -> None:
        trans = self._transitive_locks()
        for func in self.functions.values():
            guard = self.guards.get(func.key, set())
            for acq in func.acquires:
                for held in sorted(set(acq.held) | guard):
                    self._add_edge(held, acq.lock, acq)
            for call in func.calls:
                if call.callee not in self.functions:
                    continue
                for target in sorted(trans.get(call.callee, set())):
                    for held in sorted(set(call.held) | guard):
                        self._add_edge(held, target, call)

    def lock_order_edges(self) -> List[Tuple[str, str]]:
        """Sorted (held, acquired) pairs of the static order graph."""
        return sorted(self.edges)

    def has_path(self, start: str, goal: str) -> bool:
        """True when the order graph admits ``start`` ⇝ ``goal``."""
        if start == goal:
            return True
        adjacency: Dict[str, List[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, []).append(acquired)
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            for nxt in adjacency.get(node, ()):
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _order_cycles(self) -> List[List[str]]:
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired in self.edges:
            adjacency.setdefault(held, set()).add(acquired)
            adjacency.setdefault(acquired, set())
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        cycles: List[List[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for nxt in sorted(adjacency.get(node, ())):
                if nxt not in index:
                    strongconnect(nxt)
                    low[node] = min(low[node], low[nxt])
                elif nxt in on_stack:
                    low[node] = min(low[node], index[nxt])
            if low[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cycles.append(sorted(component))

        for node in sorted(adjacency):
            if node not in index:
                strongconnect(node)
        return sorted(cycles)

    # -- analyses ---------------------------------------------------

    def _analyze(self) -> None:
        self.findings = {
            "CONC-501": self._find_mixed_guards(),
            "CONC-502": self._find_order_hazards(),
            "CONC-503": self._find_bare_waits(),
            "CONC-504": self._find_unclaimed_workspaces(),
            "CONC-505": self._find_blocking_under_lock(),
        }

    def _find_mixed_guards(self) -> List[PreFinding]:
        writes: Dict[Tuple[str, str], List[Tuple[_Write, Set[str]]]] = {}
        for func in self.functions.values():
            for write in func.writes:
                writes.setdefault((write.cls, write.attr), []).append(
                    (write, self.effective_held(write))
                )
        out: List[PreFinding] = []
        for (cls_name, attr), sites in sorted(writes.items()):
            info = self.classes.get(cls_name)
            if info is None or attr in info.locks:
                continue
            guarded = [(w, eff) for w, eff in sites if eff]
            unguarded = []
            for write, eff in sites:
                if eff:
                    continue
                func = self.functions[write.func]
                if func.name in CONSTRUCTOR_METHODS or func.external:
                    continue
                unguarded.append(write)
            if not guarded or not unguarded:
                continue
            tally: Dict[str, int] = {}
            for _, eff in guarded:
                for lock in eff:
                    tally[lock] = tally.get(lock, 0) + 1
            guard = sorted(tally, key=lambda k: (-tally[k], k))[0]
            by_func: Dict[str, _Write] = {}
            for write in sorted(unguarded, key=lambda w: (w.line, w.col)):
                by_func.setdefault(write.func, write)
            for func_key in sorted(by_func):
                write = by_func[func_key]
                short = self.functions[func_key].name
                out.append(
                    PreFinding(
                        path=write.path,
                        lineno=write.line,
                        col_offset=write.col,
                        message=(
                            f"'{cls_name}.{attr}' is written in {short}() "
                            f"without holding '{guard}', but other writes "
                            f"are guarded by it"
                        ),
                    )
                )
        return out

    def _find_order_hazards(self) -> List[PreFinding]:
        out: List[PreFinding] = []
        for cycle in self._order_cycles():
            members = set(cycle)
            sites = [
                (site, held, acquired)
                for (held, acquired), site in sorted(self.edges.items())
                if held in members and acquired in members
            ]
            site, held, acquired = min(
                sites, key=lambda item: (item[0].path, item[0].line, item[0].col)
            )
            out.append(
                PreFinding(
                    path=site.path,
                    lineno=site.line,
                    col_offset=site.col,
                    message=(
                        "lock-order cycle among "
                        + ", ".join(f"'{name}'" for name in cycle)
                        + f": '{acquired}' is acquired while holding "
                        + f"'{held}' here, and the reverse order exists "
                        + "elsewhere — a potential deadlock"
                    ),
                )
            )
        seen: Set[Tuple[str, str]] = set()
        for lock, site in sorted(
            self.self_acquires, key=lambda item: (item[1].path, item[0])
        ):
            func = self.functions[site.func]
            if (lock, site.func) in seen:
                continue
            seen.add((lock, site.func))
            out.append(
                PreFinding(
                    path=site.path,
                    lineno=site.line,
                    col_offset=site.col,
                    message=(
                        f"non-reentrant lock '{lock}' may be acquired in "
                        f"{func.name}() by a thread already holding it; "
                        f"a plain Lock deadlocks against itself"
                    ),
                )
            )
        return out

    def _find_bare_waits(self) -> List[PreFinding]:
        out: List[PreFinding] = []
        for key in sorted(self.functions):
            func = self.functions[key]
            for wait in func.waits:
                if wait.in_loop:
                    continue
                out.append(
                    PreFinding(
                        path=wait.path,
                        lineno=wait.line,
                        col_offset=wait.col,
                        message=(
                            f"Condition '{wait.lock}'.wait() in {func.name}() "
                            f"is not wrapped in a predicate re-check loop; "
                            f"spurious wakeups and stolen notifies require "
                            f"'while not <predicate>: wait()'"
                        ),
                    )
                )
        return out

    def _find_unclaimed_workspaces(self) -> List[PreFinding]:
        out: List[PreFinding] = []
        for key in sorted(self.functions):
            func = self.functions[key]
            if not func.workspace_sites or func.has_claim:
                continue
            if not (
                func.module.startswith("repro.serving")
                or func.module in self.threaded_modules
            ):
                continue
            line, col = min(func.workspace_sites)
            out.append(
                PreFinding(
                    path=func.path,
                    lineno=line,
                    col_offset=col,
                    message=(
                        f"Workspace created in {func.name}() without "
                        f"claim_owner(); an unowned scratch buffer can "
                        f"escape to another thread unchecked — claim it "
                        f"so foreign access raises WorkspaceOwnershipError"
                    ),
                )
            )
        return out

    def _find_blocking_under_lock(self) -> List[PreFinding]:
        out: List[PreFinding] = []
        for key in sorted(self.functions):
            func = self.functions[key]
            for block in func.blocks:
                held = sorted(self.effective_held(block))
                if not held:
                    continue
                held_text = ", ".join(f"'{name}'" for name in held)
                out.append(
                    PreFinding(
                        path=block.path,
                        lineno=block.line,
                        col_offset=block.col,
                        message=(
                            f"blocking call {block.desc} in {func.name}() "
                            f"while holding {held_text}; every other thread "
                            f"needing the lock stalls for the full call"
                        ),
                    )
                )
        return out


class _FunctionWalker:
    """Statement walker tracking lexically-held locks for one function."""

    def __init__(
        self,
        project: ProjectContext,
        ctx: ModuleContext,
        info: FunctionInfo,
        env: Dict[str, str],
    ) -> None:
        self.project = project
        self.ctx = ctx
        self.info = info
        self.env = env
        self.held: List[str] = []
        self.loops = 0
        self.nested: List[Tuple[ast.AST, str]] = []

    def _site(self, node: ast.AST) -> Tuple[str, int, int, Tuple[str, ...], str]:
        return (
            self.ctx.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            tuple(self.held),
            self.info.key,
        )

    def walk(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append((node, node.name))
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node)
            return
        if isinstance(node, (ast.While, ast.For, ast.AsyncFor)):
            if isinstance(node, ast.While):
                self.expr(node.test)
            else:
                self.expr(node.iter)
                self._bind_local(node.target, None)
            self.loops += 1
            self.walk(node.body)
            self.walk(node.orelse)
            self.loops -= 1
            return
        if isinstance(node, ast.If):
            self.expr(node.test)
            self.walk(node.body)
            self.walk(node.orelse)
            return
        if isinstance(node, ast.Try):
            self.walk(node.body)
            for handler in node.handlers:
                self.walk(handler.body)
            self.walk(node.orelse)
            self.walk(node.finalbody)
            return
        if isinstance(node, ast.Assign):
            self.expr(node.value)
            for target in node.targets:
                self._write_target(target)
            if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                self._bind_local(node.targets[0], node.value)
            return
        if isinstance(node, ast.AugAssign):
            self.expr(node.value)
            self._write_target(node.target)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self.expr(node.value)
            self._write_target(node.target)
            if isinstance(node.target, ast.Name):
                bound = _type_name(node.annotation)
                if bound is not None:
                    self.env.setdefault(node.target.id, bound)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.stmt):
                self.stmt(child)

    def _bind_local(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if not isinstance(target, ast.Name) or value is None:
            return
        inferred = self.project._expr_type(value, self.env)
        if inferred is not None:
            self.env[target.id] = inferred

    def _with(self, node: ast.stmt) -> None:
        acquired: List[str] = []
        for item in getattr(node, "items", []):
            self.expr(item.context_expr)
            lock = self.project.resolve_lock(
                item.context_expr, self.env, self.ctx.module
            )
            if lock is not None:
                site = _Acquire(*self._site(item.context_expr), lock=lock)
                self.info.acquires.append(site)
                self.info.direct_locks.add(lock)
                self.held.append(lock)
                acquired.append(lock)
        self.walk(getattr(node, "body", []))
        for _ in acquired:
            self.held.pop()

    def _write_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._write_target(elt)
            return
        attr: Optional[str] = None
        node: Optional[ast.AST] = None
        if isinstance(target, ast.Attribute) and _is_self(target.value):
            attr, node = target.attr, target
        elif (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Attribute)
            and _is_self(target.value.value)
        ):
            attr, node = target.value.attr, target
        if attr is None or node is None or self.info.cls is None:
            return
        self.info.writes.append(
            _Write(*self._site(node), cls=self.info.cls, attr=attr)
        )

    def _record_mutator(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or self.info.cls is None:
            return
        if (
            func.attr in MUTATOR_METHODS
            and isinstance(func.value, ast.Attribute)
            and _is_self(func.value.value)
        ):
            self.info.writes.append(
                _Write(
                    *self._site(call), cls=self.info.cls, attr=func.value.attr
                )
            )

    def _record_heapq(self, call: ast.Call) -> None:
        name = _last_name(call.func)
        if name not in {"heappush", "heappop", "heapify", "heappushpop"}:
            return
        if self.info.cls is None or not call.args:
            return
        target = call.args[0]
        if isinstance(target, ast.Attribute) and _is_self(target.value):
            self.info.writes.append(
                _Write(*self._site(call), cls=self.info.cls, attr=target.attr)
            )

    def _blocking_desc(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in BLOCKING_NAMES:
                return f"{func.id}()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        if attr == "join" and isinstance(func.value, ast.Constant):
            return None  # "sep".join(...) builds a string
        if attr == "get":
            receiver = _last_name(func.value) or ""
            if "queue" in receiver.lower():
                return f".{attr}()"
            return None
        if attr in BLOCKING_ATTRS:
            return f".{attr}()"
        return None

    def expr(self, node: Optional[ast.AST]) -> None:
        if node is None:
            return
        if isinstance(node, ast.Call):
            self._call(node)
            return
        if isinstance(node, ast.Lambda):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.comprehension):
                self.expr(child.iter)
                for cond in child.ifs:
                    self.expr(cond)

    def _call(self, call: ast.Call) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            self.expr(func.value)
            if func.attr == "claim_owner":
                self.info.has_claim = True
            if func.attr in {"wait", "wait_for"}:
                lock = self.project.resolve_lock(
                    func.value, self.env, self.ctx.module
                )
                if (
                    lock is not None
                    and self.project.lock_kinds.get(lock) == "Condition"
                ):
                    self.info.waits.append(
                        _Wait(
                            *self._site(call),
                            lock=lock,
                            in_loop=self.loops > 0,
                        )
                    )
        elif isinstance(func, ast.Name) and func.id == "Workspace":
            self.info.workspace_sites.append(
                (getattr(call, "lineno", 1), getattr(call, "col_offset", 0))
            )
        self._record_mutator(call)
        self._record_heapq(call)
        desc = self._blocking_desc(call)
        if desc is not None:
            self.info.blocks.append(_Block(*self._site(call), desc=desc))
        callee = self.project.resolve_call(func, self.env, self.ctx.module)
        if callee is not None:
            self.info.calls.append(_Call(*self._site(call), callee=callee))
        for arg in call.args:
            self.expr(arg)
        for keyword in call.keywords:
            self.expr(keyword.value)


def _project_for(ctx: ModuleContext) -> ProjectContext:
    project = getattr(ctx, "project", None)
    if project is None:
        project = ProjectContext.build([ctx])
        ctx.project = project
    return project


class _ConcRule(Rule):
    """Base: emit the precomputed project findings for this file."""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        project = _project_for(ctx)
        for pre in project.findings.get(self.rule_id, []):
            if pre.path == ctx.path:
                yield ctx.finding(self, pre, pre.message)


@register
class MixedGuardRule(_ConcRule):
    rule_id = "CONC-501"
    severity = SEVERITY_ERROR
    title = "Shared attribute written both inside and outside its guard"
    rationale = (
        "A write that races its guarded siblings loses updates under the "
        "serving thread pool; either every write holds the inferred lock "
        "or the attribute is single-writer by construction."
    )


@register
class LockOrderRule(_ConcRule):
    rule_id = "CONC-502"
    severity = SEVERITY_ERROR
    title = "Inconsistent lock-acquisition order"
    rationale = (
        "A cycle in the whole-program lock-order graph means two threads "
        "can each hold what the other needs — the fleet deadlocks under "
        "load, not in unit tests.  The runtime LockOrderWatchdog "
        "cross-validates this graph against observed acquisitions."
    )


@register
class BareWaitRule(_ConcRule):
    rule_id = "CONC-503"
    severity = SEVERITY_ERROR
    title = "Condition.wait() outside a predicate re-check loop"
    rationale = (
        "Condition waits wake spuriously and notifies can be consumed by "
        "other waiters; only 'while not predicate: wait()' is correct."
    )


@register
class UnclaimedWorkspaceRule(_ConcRule):
    rule_id = "CONC-504"
    severity = SEVERITY_ERROR
    title = "Workspace created in threaded code without claim_owner()"
    rationale = (
        "Workspace is deliberately unlocked; ownership claims are its "
        "only defense.  An unclaimed buffer handed to another thread "
        "corrupts in-flight batches silently instead of raising "
        "WorkspaceOwnershipError."
    )


@register
class BlockingUnderLockRule(_ConcRule):
    rule_id = "CONC-505"
    severity = SEVERITY_WARNING
    title = "Blocking call while holding a lock"
    rationale = (
        "Sleeping, file/socket I/O, joining, or running inference under "
        "a lock serializes every thread that needs it; convoys inflate "
        "tail latency far beyond the blocking call itself."
    )
