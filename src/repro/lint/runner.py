"""Lint run orchestration: collect, subtract baseline, render, gate.

:func:`run_lint` is what the ``repro lint`` CLI subcommand calls and
what the tests drive directly.  It returns a process exit code: 0 when
no *new* finding reaches the ``--fail-on`` severity, 1 otherwise.
The JSON rendering is the machine-readable findings report CI uploads
as an artifact next to the observability telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, TextIO

from repro.lint.baseline import Baseline
from repro.lint.engine import Rule, all_rules, lint_paths
from repro.lint.findings import Finding, severity_at_least

REPORT_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one lint run, before rendering."""

    paths: List[str]
    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    baseline_path: Optional[str] = None
    #: Rules actually run this pass; ``None`` means the full registry.
    rules_run: Optional[List[Rule]] = None
    #: Baseline entries that no longer fire (see ``Baseline.audit``).
    stale_baseline: List[Dict[str, object]] = field(
        default_factory=list
    )

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {"error": 0, "warning": 0}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def failing(self, fail_on: str) -> List[Finding]:
        return [
            f
            for f in self.findings
            if severity_at_least(f.severity, fail_on)
        ]

    def to_dict(self) -> Dict[str, object]:
        rules = (
            self.rules_run
            if self.rules_run is not None
            else all_rules()
        )
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool": "repro-lint",
            "paths": list(self.paths),
            "rules": [rule.describe() for rule in rules],
            "findings": [f.to_dict() for f in self.findings],
            "grandfathered": [
                f.to_dict() for f in self.grandfathered
            ],
            "counts": self.counts(),
            "baseline": self.baseline_path,
            "stale_baseline": list(self.stale_baseline),
        }


def collect(
    paths: Sequence[str],
    baseline_path: Optional[str] = None,
    rules: Sequence[Rule] = (),
    jobs: int = 1,
) -> LintReport:
    """Lint ``paths`` and subtract the baseline, if given."""
    findings = lint_paths(paths, rules=rules, jobs=jobs)
    report = LintReport(
        paths=list(paths),
        baseline_path=baseline_path,
        rules_run=list(rules) if rules else None,
    )
    if baseline_path:
        baseline = Baseline.load(baseline_path)
        report.findings, report.grandfathered = baseline.split(
            findings
        )
        report.stale_baseline = baseline.audit(findings)
    else:
        report.findings = findings
    return report


def render_text(report: LintReport, fail_on: str) -> str:
    lines = [f.render() for f in report.findings]
    counts = report.counts()
    summary = (
        f"{len(report.findings)} finding(s): "
        f"{counts.get('error', 0)} error(s), "
        f"{counts.get('warning', 0)} warning(s)"
    )
    if report.grandfathered:
        summary += (
            f"; {len(report.grandfathered)} grandfathered by "
            f"{report.baseline_path}"
        )
    failing = len(report.failing(fail_on))
    summary += (
        f" — {failing} at/above fail-on={fail_on}"
        if report.findings
        else ""
    )
    lines.append(summary)
    for entry in report.stale_baseline:
        lines.append(
            f"warning: baseline entry {entry['fingerprint']} "
            f"({entry['rule']}) no longer fires "
            f"({entry['dead']} dead slot(s)); "
            "run with --prune-baseline to drop it"
        )
    return "\n".join(lines)


def render_json(report: LintReport) -> str:
    return json.dumps(report.to_dict(), indent=1, sort_keys=True)


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    baseline: Optional[str] = None,
    fail_on: str = "error",
    out: Optional[str] = None,
    write_baseline: Optional[str] = None,
    stream: Optional[TextIO] = None,
    rules: Sequence[Rule] = (),
    jobs: int = 1,
    prune_baseline: bool = False,
) -> int:
    """Full lint run; returns the process exit code.

    Args:
        paths: files/directories to lint (default handled by CLI).
        output_format: ``"text"`` or ``"json"`` for ``stream``.
        baseline: optional baseline JSON to subtract.
        fail_on: ``"warning"`` or ``"error"`` gate threshold.
        out: optional path for the machine-readable JSON report
            (written regardless of ``output_format``).
        write_baseline: write all current findings as a new baseline
            to this path (the run then always exits 0).
        stream: output stream (defaults to ``sys.stdout``).
        rules: optional rule subset (default: the full registry).
        jobs: per-file rule-visit parallelism (see ``lint_paths``).
        prune_baseline: rewrite ``baseline`` in place keeping only
            the fingerprints that still fire.
    """
    import sys

    stream = stream if stream is not None else sys.stdout
    report = collect(paths, baseline, rules=rules, jobs=jobs)
    if output_format == "json":
        stream.write(render_json(report) + "\n")
    else:
        stream.write(render_text(report, fail_on) + "\n")
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(render_json(report) + "\n")
    if prune_baseline and baseline:
        pruned = Baseline.load(baseline).prune(
            report.findings + report.grandfathered
        )
        pruned.save(baseline)
        stream.write(
            f"pruned baseline {baseline}: "
            f"{len(report.stale_baseline)} dead entr(y/ies) "
            "dropped\n"
        )
    if write_baseline:
        Baseline.from_findings(
            report.findings + report.grandfathered,
            note="generated by repro lint --write-baseline",
        ).save(write_baseline)
        return 0
    return 1 if report.failing(fail_on) else 0
