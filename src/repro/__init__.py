"""EdgePC reproduction: Morton-code approximate sampling and neighbor
search for point-cloud CNNs on edge devices (Ying et al., ISCA 2023).

Top-level convenience re-exports cover the public API a downstream user
needs first: the structurizer, the two approximations, the pipeline
config, the models, the workloads, and the edge-device profiler.
"""

from repro.core import (
    EdgePCConfig,
    MortonNeighborSearch,
    MortonSampler,
    MortonUpsampler,
    structurize,
)
from repro.nn import (
    DGCNNClassifier,
    DGCNNSegmentation,
    PointNet2Classifier,
    PointNet2Segmentation,
    StageRecorder,
)
from repro.pipeline import (
    EdgePCPipeline,
    EmptyTraceError,
    InferenceResult,
    ThroughputEstimate,
)
from repro.robustness import (
    CloudValidationError,
    FaultInjector,
    FaultSpec,
    GuardedPipeline,
    GuardThresholds,
    ValidationPolicy,
    sanitize_cloud,
    standard_faults,
)
from repro.runtime import DeviceSpec, PipelineProfiler, xavier
from repro.workloads import WorkloadSpec, standard_workloads, trace

__version__ = "1.0.0"

__all__ = [
    "structurize",
    "MortonSampler",
    "MortonUpsampler",
    "MortonNeighborSearch",
    "EdgePCConfig",
    "PointNet2Segmentation",
    "PointNet2Classifier",
    "DGCNNClassifier",
    "DGCNNSegmentation",
    "StageRecorder",
    "DeviceSpec",
    "xavier",
    "PipelineProfiler",
    "EdgePCPipeline",
    "InferenceResult",
    "EmptyTraceError",
    "ThroughputEstimate",
    "ValidationPolicy",
    "CloudValidationError",
    "sanitize_cloud",
    "GuardedPipeline",
    "GuardThresholds",
    "FaultSpec",
    "FaultInjector",
    "standard_faults",
    "WorkloadSpec",
    "standard_workloads",
    "trace",
    "__version__",
]
