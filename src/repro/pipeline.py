"""High-level orchestration: model + config + simulated device.

:class:`EdgePCPipeline` is the convenience entry point a downstream
application would use: wrap any of the library's models and get
inference, per-batch device profiling, and baseline comparison in one
object, without touching recorders or the cost model directly.  Input
batches pass through the :mod:`repro.robustness.validate` boundary
before touching the model; wrap the pipeline in a
:class:`~repro.robustness.guard.GuardedPipeline` for quality-triggered
exact-kernel fallback on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.pipeline import EdgePCConfig
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.recorder import StageRecorder
from repro.robustness.validate import (
    ValidationPolicy,
    ValidationReport,
    sanitize_batch,
)
from repro.runtime.device import DeviceSpec
from repro.runtime.profiler import (
    ComparisonReport,
    EnergyReport,
    PipelineProfiler,
    StageBreakdown,
    compare,
)


class EmptyTraceError(ValueError):
    """A pass recorded no priced work, so no rate can be derived.

    Subclasses :class:`ValueError` for backwards compatibility, but is
    distinct from input-validation failures
    (:class:`~repro.robustness.validate.CloudValidationError`) so
    callers can tell "your input was bad" from "the model did
    nothing".
    """


class ThroughputEstimate(NamedTuple):
    """Simulated-device throughput of one profiled batch.

    A named tuple, so legacy ``batches, clouds = estimate`` unpacking
    keeps working.
    """

    batches_per_second: float
    clouds_per_second: float

    @property
    def latency_ms(self) -> float:
        return 1e3 / self.batches_per_second


@dataclass(frozen=True)
class InferenceResult:
    """Predictions plus the simulated device profile of the pass."""

    logits: np.ndarray
    predictions: np.ndarray
    breakdown: StageBreakdown
    energy: EnergyReport
    #: Priced operation names of the pass (e.g. ``"fps"`` vs
    #: ``"morton_sort"``) — lets callers verify which kernels ran.
    stage_ops: Tuple[str, ...] = ()
    #: Per-cloud sanitization reports from the validation boundary.
    validation: Tuple[ValidationReport, ...] = ()

    @property
    def latency_ms(self) -> float:
        return self.breakdown.total_s * 1e3

    @property
    def energy_j(self) -> float:
        return self.energy.total_j


class EdgePCPipeline:
    """Wraps a model and profiles every inference on the edge device.

    Args:
        model: any library model whose ``forward(xyz, recorder=...)``
            returns logits (class axis last) — both PointNet++ and
            DGCNN variants qualify.
        config: the model's :class:`EdgePCConfig`; defaults to the
            model's own ``edgepc`` attribute.
        device: simulated device; defaults to the Xavier-like spec.
        validation: sanitization policy applied to every batch
            entering :meth:`infer` / :meth:`record`; defaults to the
            strict ``reject`` policy (raise
            :class:`~repro.robustness.validate.CloudValidationError`
            on NaN/Inf, undersized, or malformed input).
    """

    def __init__(
        self,
        model: Module,
        config: Optional[EdgePCConfig] = None,
        device: Optional[DeviceSpec] = None,
        validation: Optional[ValidationPolicy] = None,
    ) -> None:
        config = config if config is not None else getattr(
            model, "edgepc", None
        )
        if config is None:
            raise ValueError(
                "pass a config or use a model with an .edgepc attribute"
            )
        self.model = model
        self.config = config
        self.profiler = PipelineProfiler(device)
        self.validation = validation or ValidationPolicy()

    def _sanitize(
        self, xyz: np.ndarray
    ) -> Tuple[np.ndarray, List[ValidationReport]]:
        return sanitize_batch(
            np.asarray(xyz, dtype=np.float64), self.validation
        )

    def infer(self, xyz: np.ndarray) -> InferenceResult:
        """Sanitize and run one batch in eval mode, and profile it."""
        xyz, reports = self._sanitize(xyz)
        recorder = StageRecorder()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                logits = self.model(xyz, recorder=recorder)
        finally:
            if was_training:
                self.model.train()
        data = (
            logits.numpy() if isinstance(logits, Tensor) else logits
        )
        return InferenceResult(
            logits=data,
            predictions=data.argmax(axis=-1),
            breakdown=self.profiler.breakdown(recorder, self.config),
            energy=self.profiler.energy(recorder, self.config),
            stage_ops=tuple(recorder.op_names()),
            validation=tuple(reports),
        )

    def record(self, xyz: np.ndarray) -> StageRecorder:
        """Run one batch and return the raw stage trace."""
        xyz, _ = self._sanitize(xyz)
        recorder = StageRecorder()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                self.model(xyz, recorder=recorder)
        finally:
            if was_training:
                self.model.train()
        return recorder

    def compare_with(
        self, baseline: "EdgePCPipeline", xyz: np.ndarray
    ) -> ComparisonReport:
        """Fig. 13-style comparison of this pipeline vs a baseline on
        the same input batch."""
        return compare(
            self.profiler,
            baseline.record(xyz), baseline.config,
            self.record(xyz), self.config,
        )

    def throughput_estimate(
        self, xyz: np.ndarray
    ) -> ThroughputEstimate:
        """Batches/second and clouds/second on the simulated device.

        Raises:
            EmptyTraceError: the model recorded no priced work, so no
                throughput can be derived.
        """
        result = self.infer(xyz)
        if result.breakdown.total_s == 0:
            raise EmptyTraceError(
                "empty trace; model recorded no work"
            )
        batches_per_s = 1.0 / result.breakdown.total_s
        return ThroughputEstimate(
            batches_per_second=batches_per_s,
            clouds_per_second=batches_per_s * xyz.shape[0],
        )
