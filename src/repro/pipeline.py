"""High-level orchestration: model + config + simulated device.

:class:`EdgePCPipeline` is the convenience entry point a downstream
application would use: wrap any of the library's models and get
inference, per-batch device profiling, and baseline comparison in one
object, without touching recorders or the cost model directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.pipeline import EdgePCConfig
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.recorder import StageRecorder
from repro.runtime.device import DeviceSpec
from repro.runtime.profiler import (
    ComparisonReport,
    EnergyReport,
    PipelineProfiler,
    StageBreakdown,
    compare,
)


@dataclass(frozen=True)
class InferenceResult:
    """Predictions plus the simulated device profile of the pass."""

    logits: np.ndarray
    predictions: np.ndarray
    breakdown: StageBreakdown
    energy: EnergyReport

    @property
    def latency_ms(self) -> float:
        return self.breakdown.total_s * 1e3

    @property
    def energy_j(self) -> float:
        return self.energy.total_j


class EdgePCPipeline:
    """Wraps a model and profiles every inference on the edge device.

    Args:
        model: any library model whose ``forward(xyz, recorder=...)``
            returns logits (class axis last) — both PointNet++ and
            DGCNN variants qualify.
        config: the model's :class:`EdgePCConfig`; defaults to the
            model's own ``edgepc`` attribute.
        device: simulated device; defaults to the Xavier-like spec.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[EdgePCConfig] = None,
        device: Optional[DeviceSpec] = None,
    ) -> None:
        config = config if config is not None else getattr(
            model, "edgepc", None
        )
        if config is None:
            raise ValueError(
                "pass a config or use a model with an .edgepc attribute"
            )
        self.model = model
        self.config = config
        self.profiler = PipelineProfiler(device)

    def infer(self, xyz: np.ndarray) -> InferenceResult:
        """Run one batch in eval mode and profile it."""
        xyz = np.asarray(xyz, dtype=np.float64)
        recorder = StageRecorder()
        was_training = self.model.training
        self.model.eval()
        try:
            with no_grad():
                logits = self.model(xyz, recorder=recorder)
        finally:
            if was_training:
                self.model.train()
        data = (
            logits.numpy() if isinstance(logits, Tensor) else logits
        )
        return InferenceResult(
            logits=data,
            predictions=data.argmax(axis=-1),
            breakdown=self.profiler.breakdown(recorder, self.config),
            energy=self.profiler.energy(recorder, self.config),
        )

    def record(self, xyz: np.ndarray) -> StageRecorder:
        """Run one batch and return the raw stage trace."""
        recorder = StageRecorder()
        self.model.eval()
        with no_grad():
            self.model(xyz, recorder=recorder)
        self.model.train()
        return recorder

    def compare_with(
        self, baseline: "EdgePCPipeline", xyz: np.ndarray
    ) -> ComparisonReport:
        """Fig. 13-style comparison of this pipeline vs a baseline on
        the same input batch."""
        return compare(
            self.profiler,
            baseline.record(xyz), baseline.config,
            self.record(xyz), self.config,
        )

    def throughput_estimate(
        self, xyz: np.ndarray
    ) -> Tuple[float, float]:
        """(batches/second, clouds/second) on the simulated device."""
        result = self.infer(xyz)
        if result.breakdown.total_s == 0:
            raise ValueError("empty trace; model recorded no work")
        batches_per_s = 1.0 / result.breakdown.total_s
        return batches_per_s, batches_per_s * xyz.shape[0]
