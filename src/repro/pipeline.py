"""High-level orchestration: model + config + simulated device.

:class:`EdgePCPipeline` is the convenience entry point a downstream
application would use: wrap any of the library's models and get
inference, per-batch device profiling, and baseline comparison in one
object, without touching recorders or the cost model directly.  Input
batches pass through the :mod:`repro.robustness.validate` boundary
before touching the model; wrap the pipeline in a
:class:`~repro.robustness.guard.GuardedPipeline` for quality-triggered
exact-kernel fallback on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from repro.core.pipeline import EdgePCConfig
from repro.nn.autograd import Tensor, no_grad
from repro.nn.layers import Module
from repro.nn.recorder import StageRecorder
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import (
    NULL_TRACER,
    Tracer,
    emit_stage_spans,
)
from repro.robustness.validate import (
    CloudValidationError,
    ValidationPolicy,
    ValidationReport,
    sanitize_batch,
)
from repro.runtime.device import DeviceSpec
from repro.runtime.profiler import (
    ComparisonReport,
    EnergyReport,
    PipelineProfiler,
    StageBreakdown,
    compare,
)


class EmptyTraceError(ValueError):
    """A pass recorded no priced work, so no rate can be derived.

    Subclasses :class:`ValueError` for backwards compatibility, but is
    distinct from input-validation failures
    (:class:`~repro.robustness.validate.CloudValidationError`) so
    callers can tell "your input was bad" from "the model did
    nothing".
    """


class ThroughputEstimate(NamedTuple):
    """Simulated-device throughput of one profiled batch.

    A named tuple, so legacy ``batches, clouds = estimate`` unpacking
    keeps working.
    """

    batches_per_second: float
    clouds_per_second: float

    @property
    def latency_ms(self) -> float:
        """Milliseconds per batch; ``inf`` at zero throughput (a rate
        of 0 means the batch never completes, not a crash)."""
        if self.batches_per_second == 0:
            return float("inf")
        return 1e3 / self.batches_per_second


@dataclass(frozen=True)
class InferenceResult:
    """Predictions plus the simulated device profile of the pass."""

    logits: np.ndarray
    predictions: np.ndarray
    breakdown: StageBreakdown
    energy: EnergyReport
    #: Priced operation names of the pass (e.g. ``"fps"`` vs
    #: ``"morton_sort"``) — lets callers verify which kernels ran.
    stage_ops: Tuple[str, ...] = ()
    #: Per-cloud sanitization reports from the validation boundary.
    validation: Tuple[ValidationReport, ...] = ()

    @property
    def latency_ms(self) -> float:
        return self.breakdown.total_s * 1e3

    @property
    def energy_j(self) -> float:
        return self.energy.total_j


class EdgePCPipeline:
    """Wraps a model and profiles every inference on the edge device.

    Args:
        model: any library model whose ``forward(xyz, recorder=...)``
            returns logits (class axis last) — both PointNet++ and
            DGCNN variants qualify.
        config: the model's :class:`EdgePCConfig`; defaults to the
            model's own ``edgepc`` attribute.
        device: simulated device; defaults to the Xavier-like spec.
        validation: sanitization policy applied to every batch
            entering :meth:`infer` / :meth:`record`; defaults to the
            strict ``reject`` policy (raise
            :class:`~repro.robustness.validate.CloudValidationError`
            on NaN/Inf, undersized, or malformed input).
        tracer: optional :class:`~repro.observability.tracing.Tracer`;
            every inference becomes a ``pipeline.infer`` span with
            validate/forward children plus simulated per-stage spans.
            Defaults to the no-op tracer (zero per-batch allocation).
        metrics: optional
            :class:`~repro.observability.metrics.MetricsRegistry`;
            when given, batch counts, per-stage latency histograms,
            and validation repair/reject counters are recorded.
    """

    def __init__(
        self,
        model: Module,
        config: Optional[EdgePCConfig] = None,
        device: Optional[DeviceSpec] = None,
        validation: Optional[ValidationPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        config = config if config is not None else getattr(
            model, "edgepc", None
        )
        if config is None:
            raise ValueError(
                "pass a config or use a model with an .edgepc attribute"
            )
        self.model = model
        self.config = config
        self.profiler = PipelineProfiler(device)
        self.validation = validation or ValidationPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        # Last-seen (hits, misses) of the model's scratch workspace, so
        # per-batch counter increments report deltas, not totals.
        self._workspace_seen = (0, 0)

    def _count_validation(
        self, reports: List[ValidationReport]
    ) -> None:
        """Fold sanitization outcomes into the metrics registry."""
        registry = self.metrics
        if registry is None:
            return
        for report in reports:
            for issue in report.issues:
                registry.counter(
                    "validation_issues_total",
                    kind=issue.kind, action=issue.action,
                ).inc(issue.count)
            # sanitize_batch pads repaired clouds back to N, so
            # `report.dropped` is 0 here; a repair is any issue the
            # sanitizer acted on rather than just flagged.
            if any(
                issue.action in ("dropped", "clamped")
                for issue in report.issues
            ):
                registry.counter("validation_repairs_total").inc()

    def _sanitize(
        self, xyz: np.ndarray
    ) -> Tuple[np.ndarray, List[ValidationReport]]:
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim == 2 and xyz.shape[-1] == 3:
            # A single (N, 3) cloud rides the batch path at B=1, so
            # direct calls and the serving micro-batcher share one
            # code path (and each pass emits its metrics exactly
            # once).  Outputs keep the leading batch axis.
            xyz = xyz[np.newaxis, ...]
        try:
            xyz, reports = sanitize_batch(xyz, self.validation)
        except CloudValidationError:
            if self.metrics is not None:
                self.metrics.counter("validation_rejects_total").inc()
            raise
        self._count_validation(reports)
        return xyz, reports

    def _forward(self, xyz: np.ndarray, recorder: StageRecorder):
        """One eval-mode forward pass, training mode restored after."""
        was_training = self.model.training
        self.model.eval()
        try:
            with self.tracer.span("pipeline.forward", "pipeline"):
                with no_grad():
                    return self.model(xyz, recorder=recorder)
        finally:
            if was_training:
                self.model.train()

    def infer(self, xyz: np.ndarray) -> InferenceResult:
        """Sanitize and run one batch in eval mode, and profile it.

        Accepts a ``(B, N, 3)`` batch or a single ``(N, 3)`` cloud —
        the latter is routed through the same batch path at ``B=1``
        (outputs keep the leading batch axis).
        """
        tracer = self.tracer
        with tracer.span("pipeline.infer", "pipeline") as span:
            with tracer.span("pipeline.validate", "pipeline"):
                xyz, reports = self._sanitize(xyz)
            recorder = StageRecorder()
            logits = self._forward(xyz, recorder)
            data = (
                logits.numpy() if isinstance(logits, Tensor) else logits
            )
            breakdown = self.profiler.breakdown(recorder, self.config)
            energy = self.profiler.energy(recorder, self.config)
            span.set("batch", int(xyz.shape[0]))
            span.set("points", int(xyz.shape[1]))
            span.set("ops", len(recorder))
            span.add_cost(breakdown.total_s)
            emit_stage_spans(tracer, breakdown)
            self._record_batch_metrics(
                xyz.shape[0], breakdown, energy, recorder
            )
            return InferenceResult(
                logits=data,
                predictions=data.argmax(axis=-1),
                breakdown=breakdown,
                energy=energy,
                stage_ops=tuple(recorder.op_names()),
                validation=tuple(reports),
            )

    def _record_batch_metrics(
        self,
        batch: int,
        breakdown: StageBreakdown,
        energy: EnergyReport,
        recorder: StageRecorder,
    ) -> None:
        registry = self.metrics
        if registry is None:
            return
        reuse_hits = sum(1 for e in recorder if e.op == "reuse")
        if reuse_hits:
            registry.counter("neighbor_reuse_hits_total").inc(
                reuse_hits
            )
        self._record_exact_fast_metrics(registry, recorder)
        registry.counter("pipeline_batches_total").inc()
        registry.counter("pipeline_clouds_total").inc(batch)
        for stage, seconds in (
            ("sample", breakdown.sample_s),
            ("neighbor_search", breakdown.neighbor_s),
            ("grouping", breakdown.grouping_s),
            ("feature_compute", breakdown.feature_s),
        ):
            registry.histogram(
                "pipeline_stage_latency_seconds", stage=stage
            ).observe(seconds)
        registry.histogram(
            "pipeline_batch_latency_seconds"
        ).observe(breakdown.total_s)
        registry.counter("pipeline_simulated_seconds_total").inc(
            breakdown.total_s
        )
        registry.counter("pipeline_energy_joules_total").inc(
            energy.total_j
        )
        self._record_workspace_metrics(registry)

    def _record_exact_fast_metrics(
        self,
        registry: MetricsRegistry,
        recorder: StageRecorder,
    ) -> None:
        """Export fast exact-engine effectiveness (large-N fallback).

        Each fast-engine event contributes one observation to the
        ``exact_fast_scan_ratio`` histogram — the fraction of the brute
        kernel's all-pairs work the pruning / grid probe actually
        performed — and pruned-FPS events also increment the
        ``exact_fast_blocks_pruned_total`` counter.
        """
        for event in recorder:
            c = event.counts
            batch = c.get("batch", 1)
            if event.op == "fps_fast":
                pruned = c.get("blocks_pruned", 0.0) * batch
                if pruned:
                    registry.counter(
                        "exact_fast_blocks_pruned_total"
                    ).inc(pruned)
                worst = c.get("worst_case", 0.0)
                scanned = c.get("points_scanned", 0.0)
                ratio = scanned / worst if worst else 1.0
            elif event.op in ("knn_grid", "ball_query_grid"):
                worst = c["n_queries"] * c["n_candidates"]
                scanned = c.get("pairs_scanned", 0.0)
                ratio = scanned / worst if worst else 1.0
            else:
                continue
            registry.histogram(
                "exact_fast_scan_ratio", op=event.op
            ).observe(ratio)

    def _record_workspace_metrics(
        self, registry: MetricsRegistry
    ) -> None:
        """Export the model's scratch-pool state (batched kernels)."""
        workspace = getattr(self.model, "workspace", None)
        if workspace is None:
            return
        registry.gauge("workspace_bytes_allocated").set(
            float(workspace.bytes_allocated)
        )
        registry.gauge("workspace_budget_bytes").set(
            float(workspace.scratch_bytes)
        )
        registry.gauge("workspace_buffers").set(
            float(workspace.num_buffers)
        )
        seen_hits, seen_misses = self._workspace_seen
        hit_delta = max(0, workspace.hits - seen_hits)
        miss_delta = max(0, workspace.misses - seen_misses)
        if hit_delta:
            registry.counter("workspace_buffer_hits_total").inc(
                hit_delta
            )
        if miss_delta:
            registry.counter("workspace_buffer_misses_total").inc(
                miss_delta
            )
        self._workspace_seen = (workspace.hits, workspace.misses)

    def record(self, xyz: np.ndarray) -> StageRecorder:
        """Run one batch and return the raw stage trace."""
        with self.tracer.span("pipeline.record", "pipeline") as span:
            xyz, _ = self._sanitize(xyz)
            recorder = StageRecorder()
            self._forward(xyz, recorder)
            span.set("ops", len(recorder))
        return recorder

    def compare_with(
        self, baseline: "EdgePCPipeline", xyz: np.ndarray
    ) -> ComparisonReport:
        """Fig. 13-style comparison of this pipeline vs a baseline on
        the same input batch."""
        with self.tracer.span("pipeline.compare", "pipeline"):
            return compare(
                self.profiler,
                baseline.record(xyz), baseline.config,
                self.record(xyz), self.config,
            )

    def throughput_estimate(
        self, xyz: np.ndarray
    ) -> ThroughputEstimate:
        """Batches/second and clouds/second on the simulated device.

        Raises:
            EmptyTraceError: the model recorded no priced work, so no
                throughput can be derived.
        """
        result = self.infer(xyz)
        if result.breakdown.total_s == 0:
            raise EmptyTraceError(
                "empty trace; model recorded no work"
            )
        batches_per_s = 1.0 / result.breakdown.total_s
        return ThroughputEstimate(
            batches_per_second=batches_per_s,
            clouds_per_second=batches_per_s * xyz.shape[0],
        )
