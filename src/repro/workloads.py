"""The paper's Table 1 workloads and their pipeline traces.

Each :class:`WorkloadSpec` captures one W1-W6 row of Table 1: model,
dataset, points per batch element, task, and batch size, plus the
full-scale architecture dimensions of the model variant (layer point
counts, neighbor counts, MLP widths of the *original* PointNet++(s) /
DGCNN networks).

:func:`trace` statically walks that architecture under an
:class:`~repro.core.pipeline.EdgePCConfig` and emits the same
:class:`~repro.nn.recorder.StageEvent` stream a real forward pass
would, without executing any tensors — which is what lets the latency
and energy experiments run at the paper's full 8192-point scale
instantly.  Tests cross-check that the event stream of a *real*
(small-scale) forward matches the synthesized one op for op.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence, Tuple

from repro.core.pipeline import EdgePCConfig
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    StageRecorder,
)


@dataclass(frozen=True)
class PointNet2Arch:
    """Dimensions of a PointNet++(s) variant.

    ``sa_points`` are the per-level sampled counts (from ``num_points``
    inputs); each SA has ``k`` neighbors and an MLP; FP modules mirror
    the SA stack.
    """

    num_points: int
    sa_points: Tuple[int, ...]
    k: int
    sa_mlps: Tuple[Tuple[int, ...], ...]
    fp_mlps: Tuple[Tuple[int, ...], ...]
    head: Tuple[int, ...]
    in_channels: int = 9  # xyz + rgb + normalized xyz, as in S3DIS runs

    def __post_init__(self) -> None:
        if len(self.sa_points) != len(self.sa_mlps):
            raise ValueError("one MLP spec per SA level required")
        if len(self.fp_mlps) != len(self.sa_points):
            raise ValueError("one FP module per SA level required")
        sizes = (self.num_points,) + self.sa_points
        if any(b >= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("sa_points must strictly decrease")


@dataclass(frozen=True)
class DGCNNArch:
    """Dimensions of a DGCNN variant (no sampling stage)."""

    num_points: int
    k: int
    ec_mlps: Tuple[Tuple[int, ...], ...]
    emb_channels: int
    head: Tuple[int, ...]
    in_channels: int = 3

    def __post_init__(self) -> None:
        if not self.ec_mlps:
            raise ValueError("need at least one EdgeConv module")


@dataclass(frozen=True)
class WorkloadSpec:
    """One row of Table 1."""

    name: str
    model: str  # "pointnet2" or "dgcnn"
    dataset: str
    task: str
    points_per_batch: int
    batch_size: int
    num_classes: int
    arch: object

    def __post_init__(self) -> None:
        if self.model not in ("pointnet2", "dgcnn"):
            raise ValueError(f"unknown model {self.model!r}")
        if self.batch_size < 1 or self.points_per_batch < 1:
            raise ValueError("sizes must be positive")


def _pointnet2_arch(num_points: int) -> PointNet2Arch:
    """The PointNet++(s) semantic-segmentation architecture (Qi et
    al.), scaled to the workload's point count."""
    return PointNet2Arch(
        num_points=num_points,
        sa_points=(
            num_points // 8,
            num_points // 32,
            num_points // 128,
            num_points // 512,
        ),
        k=32,
        sa_mlps=((32, 32, 64), (64, 64, 128), (128, 128, 256),
                 (256, 256, 512)),
        fp_mlps=((256, 256), (256, 256), (256, 128), (128, 128, 128)),
        head=(128, 13),
    )


def _dgcnn_arch(num_points: int, num_classes: int) -> DGCNNArch:
    """A 4-module DGCNN (channel plan 64-64-128-256).

    Sec. 6.2 states that with reuse distance 1 "the NS computation can
    be skipped for the second and fourth EC modules", which pins the
    evaluated DGCNN variants at 4 EdgeConv modules.
    """
    return DGCNNArch(
        num_points=num_points,
        k=20,
        ec_mlps=((64,), (64,), (128,), (256,)),
        emb_channels=1024,
        head=(512, 256, num_classes),
    )


def standard_workloads() -> Dict[str, WorkloadSpec]:
    """W1-W6 exactly as Table 1 defines them.

    W2's batch size varies 4-41 in the paper with mean 14; we use the
    mean.
    """
    return {
        "W1": WorkloadSpec(
            "W1", "pointnet2", "S3DIS", "semantic_segmentation",
            8192, 32, 13, _pointnet2_arch(8192),
        ),
        "W2": WorkloadSpec(
            "W2", "pointnet2", "ScanNet", "semantic_segmentation",
            8192, 14, 21, _pointnet2_arch(8192),
        ),
        "W3": WorkloadSpec(
            "W3", "dgcnn", "ModelNet40", "classification",
            1024, 32, 40, _dgcnn_arch(1024, 40),
        ),
        "W4": WorkloadSpec(
            "W4", "dgcnn", "ShapeNet", "part_segmentation",
            2048, 32, 50, _dgcnn_arch(2048, 50),
        ),
        "W5": WorkloadSpec(
            "W5", "dgcnn", "S3DIS", "semantic_segmentation",
            4096, 32, 13, _dgcnn_arch(4096, 13),
        ),
        "W6": WorkloadSpec(
            "W6", "dgcnn", "ScanNet", "semantic_segmentation",
            8192, 16, 21, _dgcnn_arch(8192, 21),
        ),
    }


def scan_batch_sizes(
    num_frames: int, rng=None, low: int = 4, high: int = 41,
    mean: float = 14.0,
) -> "np.ndarray":
    """Per-frame batch sizes of a ScanNet-style scan (W2).

    Sec. 6.2: W2's batch size "ranges from 4 to 41 depending on the PC
    frame, with an average batch size of 14".  We model that with a
    clipped geometric-ish draw whose mean is tuned to the paper's 14.

    Returns an ``(num_frames,)`` int array in ``[low, high]``.
    """
    import numpy as np

    if num_frames < 1:
        raise ValueError("num_frames must be positive")
    if not low <= mean <= high:
        raise ValueError("mean must lie within [low, high]")
    rng = rng or np.random.default_rng(0)
    # Geometric tail above `low` reproduces the skewed distribution of
    # room sizes; p chosen so E[low + G] = mean.
    p = 1.0 / (mean - low + 1.0)
    sizes = low + rng.geometric(p, size=num_frames) - 1
    return np.clip(sizes, low, high).astype(np.int64)


# Trace synthesis -------------------------------------------------------------


def _record_mlp(
    recorder: StageRecorder,
    layer: int,
    channels: Sequence[int],
    rows: int,
) -> None:
    for c_in, c_out in zip(channels[:-1], channels[1:]):
        recorder.record(
            STAGE_FEATURE, "matmul", layer,
            rows=rows, c_in=c_in, c_out=c_out,
            flops=2.0 * rows * c_in * c_out,
        )


def _trace_pointnet2(
    spec: WorkloadSpec, config: EdgePCConfig, recorder: StageRecorder
) -> None:
    arch: PointNet2Arch = spec.arch
    batch = spec.batch_size
    sizes = (arch.num_points,) + arch.sa_points
    channels = max(arch.in_channels, 1)
    skip_channels = [channels]
    # SA encoder.
    for layer, (n_in, n_out) in enumerate(zip(sizes[:-1], sizes[1:])):
        if config.uses_morton_sampling(layer):
            recorder.record(
                STAGE_SAMPLE, "morton_gen", layer,
                n_points=n_in, batch=batch,
            )
            recorder.record(
                STAGE_SAMPLE, "morton_sort", layer,
                n_points=n_in, batch=batch,
            )
            recorder.record(
                STAGE_SAMPLE, "uniform_pick", layer,
                n_samples=n_out, batch=batch,
            )
        else:
            recorder.record(
                STAGE_SAMPLE, "fps", layer,
                n_points=n_in, n_samples=n_out, batch=batch,
            )
        if config.uses_morton_neighbors(layer):
            if not config.uses_morton_sampling(layer):
                recorder.record(
                    STAGE_NEIGHBOR, "morton_gen", layer,
                    n_points=n_in, batch=batch,
                )
                recorder.record(
                    STAGE_NEIGHBOR, "morton_sort", layer,
                    n_points=n_in, batch=batch,
                )
            window = min(n_in, config.window_for(arch.k))
            recorder.record(
                STAGE_NEIGHBOR, "morton_window", layer,
                n_queries=n_out, window=window, k=arch.k, batch=batch,
            )
        else:
            recorder.record(
                STAGE_NEIGHBOR, "ball_query", layer,
                n_queries=n_out, n_candidates=n_in, k=arch.k,
                batch=batch,
            )
        mlp = (channels + 3,) + arch.sa_mlps[layer]
        recorder.record(
            STAGE_GROUPING, "gather", layer,
            n_groups=n_out, k=arch.k, channels=channels + 3,
            batch=batch, sorted=float(config.sorted_grouping),
        )
        _record_mlp(recorder, layer, mlp, batch * n_out * arch.k)
        channels = mlp[-1]
        skip_channels.append(channels)
    # FP decoder (module j upsamples level L-j -> L-j-1).
    num_levels = len(arch.sa_points)
    coarse_channels = skip_channels[num_levels]
    for j in range(num_levels):
        n_fine = sizes[num_levels - j - 1]
        n_coarse = sizes[num_levels - j]
        if config.uses_morton_upsampling(j) and config.uses_morton_sampling(
            num_levels - j - 1
        ):
            recorder.record(
                STAGE_SAMPLE, "interp_morton", j,
                n_points=n_fine, batch=batch,
            )
        else:
            recorder.record(
                STAGE_SAMPLE, "interp_exact", j,
                n_points=n_fine, n_samples=n_coarse, batch=batch,
            )
        mlp = (
            coarse_channels + skip_channels[num_levels - j - 1],
        ) + arch.fp_mlps[j]
        _record_mlp(recorder, j, mlp, batch * n_fine)
        coarse_channels = mlp[-1]
    _record_mlp(
        recorder,
        2 * num_levels,
        (coarse_channels,) + arch.head,
        batch * arch.num_points,
    )


def _trace_dgcnn(
    spec: WorkloadSpec, config: EdgePCConfig, recorder: StageRecorder
) -> None:
    arch: DGCNNArch = spec.arch
    batch = spec.batch_size
    n = arch.num_points
    policy = config.reuse_policy()
    channels = arch.in_channels
    concat_channels = 0
    have_cache = False
    for layer, mlp_out in enumerate(arch.ec_mlps):
        if layer > 0 and policy.should_reuse(layer) and have_cache:
            recorder.record(
                STAGE_NEIGHBOR, "reuse", layer,
                n_queries=n, k=arch.k, batch=batch,
            )
        elif layer == 0 and config.uses_morton_neighbors(0):
            recorder.record(
                STAGE_NEIGHBOR, "morton_gen", 0, n_points=n, batch=batch
            )
            recorder.record(
                STAGE_NEIGHBOR, "morton_sort", 0, n_points=n, batch=batch
            )
            window = min(n, config.window_for(arch.k))
            recorder.record(
                STAGE_NEIGHBOR, "morton_window", 0,
                n_queries=n, window=window, k=arch.k, batch=batch,
            )
            have_cache = True
        else:
            dim = 3 if layer == 0 else channels
            recorder.record(
                STAGE_NEIGHBOR, "knn", layer,
                n_queries=n, n_candidates=n, k=arch.k, dim=dim,
                batch=batch,
            )
            have_cache = True
        recorder.record(
            STAGE_GROUPING, "gather", layer,
            n_groups=n, k=arch.k, channels=2 * channels, batch=batch,
            sorted=float(config.sorted_grouping),
        )
        mlp = (2 * channels,) + mlp_out
        _record_mlp(recorder, layer, mlp, batch * n * arch.k)
        channels = mlp[-1]
        concat_channels += channels
    num_modules = len(arch.ec_mlps)
    _record_mlp(
        recorder,
        num_modules,
        (concat_channels, arch.emb_channels),
        batch * n,
    )
    head_rows = batch * (
        n if spec.task != "classification" else 1
    )
    head_in = (
        arch.emb_channels + concat_channels
        if spec.task != "classification"
        else arch.emb_channels
    )
    _record_mlp(
        recorder, num_modules + 1, (head_in,) + arch.head, head_rows
    )


def trace(spec: WorkloadSpec, config: EdgePCConfig) -> StageRecorder:
    """Synthesize the stage-event trace of one batch of ``spec`` under
    ``config``."""
    recorder = StageRecorder()
    if spec.model == "pointnet2":
        _trace_pointnet2(spec, config, recorder)
    else:
        _trace_dgcnn(spec, config, recorder)
    return recorder


def trace_with_batch(
    spec: WorkloadSpec, config: EdgePCConfig, batch_size: int
) -> StageRecorder:
    """Like :func:`trace` but with an overridden batch size — used for
    W2's variable per-frame batches (:func:`scan_batch_sizes`)."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    return trace(replace(spec, batch_size=batch_size), config)
