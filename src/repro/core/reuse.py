"""Neighbor-index reuse across CNN modules (paper Sec. 5.2.3).

DGCNN's later EdgeConv modules run kNN in *feature* space, which Morton
codes (3-D) cannot index.  EdgePC instead interleaves "reuse" and
"compute": with reuse distance 1, module 2 reuses module 1's neighbor
indices, module 3 recomputes, module 4 reuses module 3's, and so on.
The justification is temporal stability — a point's neighborhood changes
little between consecutive layers.

:class:`NeighborReusePolicy` encodes that schedule, and
:class:`NeighborCache` is the small GPU-memory buffer the paper budgets
(up to 160 KB per batch) holding the most recent index matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class NeighborReusePolicy:
    """Decides, per module index, whether to reuse stored indices.

    Args:
        reuse_distance: how many consecutive modules reuse one computed
            result.  0 disables reuse (always compute); 1 is the paper's
            default (compute, reuse, compute, reuse, ...).
        first_compute_module: index of the first module that computes
            (modules before it always compute too — module 0 must).
    """

    reuse_distance: int = 1
    first_compute_module: int = 0

    def __post_init__(self) -> None:
        if self.reuse_distance < 0:
            raise ValueError("reuse_distance must be non-negative")
        if self.first_compute_module < 0:
            raise ValueError("first_compute_module must be non-negative")

    def should_reuse(self, module_index: int) -> bool:
        """True if ``module_index`` should reuse the cached indices."""
        if module_index < 0:
            raise ValueError("module_index must be non-negative")
        if self.reuse_distance == 0:
            return False
        if module_index <= self.first_compute_module:
            return False
        phase = (module_index - self.first_compute_module) % (
            self.reuse_distance + 1
        )
        return phase != 0

    def schedule(self, num_modules: int) -> list:
        """``['compute' | 'reuse']`` per module, for reports and tests."""
        return [
            "reuse" if self.should_reuse(i) else "compute"
            for i in range(num_modules)
        ]


class NeighborCache:
    """Holds the most recently computed neighbor-index matrix.

    ``stores`` and ``hits`` count lifetime traffic (a hit is one
    :meth:`load` of a populated cache); the observability layer scrapes
    them into the ``neighbor_reuse_hits_total`` metric.
    """

    def __init__(self) -> None:
        self._indices: Optional[np.ndarray] = None
        self.stores = 0
        self.hits = 0

    @property
    def is_empty(self) -> bool:
        return self._indices is None

    def store(self, indices: np.ndarray) -> None:
        indices = np.asarray(indices)
        if indices.ndim not in (2, 3):
            raise ValueError(
                "neighbor index matrix must be (Q, k) or (B, Q, k)"
            )
        self._indices = indices
        self.stores += 1

    def load(self) -> np.ndarray:
        """The cached ``(Q, k)`` / ``(B, Q, k)`` integer neighbor
        index matrix, exactly as stored."""
        if self._indices is None:
            raise RuntimeError("neighbor cache is empty; nothing to reuse")
        self.hits += 1
        return self._indices

    def clear(self) -> None:
        self._indices = None

    @property
    def memory_bytes(self) -> int:
        """Buffer footprint (the paper budgets <= 160 KB per batch)."""
        if self._indices is None:
            return 0
        return int(self._indices.nbytes)
