"""EdgePC's primary contribution: Morton-code structurization and the
approximate sampler / neighbor searcher built on it."""

from repro.core.batched import (
    BatchedMortonOrder,
    BatchedSampleResult,
    sample_batch,
    structurize_batch,
)
from repro.core.hilbert import hilbert_encode, hilbert_structurize
from repro.core.morton import DEFAULT_CODE_BITS, decode, encode
from repro.core.neighbor import MortonNeighborSearch
from repro.core.pipeline import EdgePCConfig
from repro.core.reuse import NeighborCache, NeighborReusePolicy
from repro.core.sampler import (
    MortonSampleResult,
    MortonSampler,
    MortonUpsampler,
    exact_interpolate,
)
from repro.core.sort import radix_argsort, radix_sort
from repro.core.streaming import StreamingMortonOrder
from repro.core.structurize import MortonOrder, structurize, structuredness
from repro.core.workspace import DEFAULT_SCRATCH_BYTES, Workspace

__all__ = [
    "DEFAULT_CODE_BITS",
    "DEFAULT_SCRATCH_BYTES",
    "Workspace",
    "encode",
    "decode",
    "structurize",
    "structurize_batch",
    "sample_batch",
    "BatchedMortonOrder",
    "BatchedSampleResult",
    "structuredness",
    "MortonOrder",
    "MortonSampler",
    "MortonSampleResult",
    "MortonUpsampler",
    "exact_interpolate",
    "MortonNeighborSearch",
    "NeighborReusePolicy",
    "NeighborCache",
    "EdgePCConfig",
    "radix_argsort",
    "radix_sort",
    "StreamingMortonOrder",
    "hilbert_encode",
    "hilbert_structurize",
]
