"""Batched Morton kernels: structurize and stride-sample ``(B, N, 3)``
clouds in single NumPy dispatches.

The per-cloud kernels in :mod:`repro.core.structurize` and
:mod:`repro.core.sampler` are fully vectorized over points, but a model
forward that loops ``for b in range(batch)`` around them still pays one
Python-level kernel dispatch per cloud — the serial shape the paper's
"fully parallel" Algorithm 1 exists to avoid.  This module makes the
batch axis an ordinary vectorized NumPy dimension: one encode, one
sort, one stride pick for the whole batch.

Every batched kernel is **bit-identical** to looping its per-cloud
counterpart over the batch: quantization is elementwise, the stable
argsort runs per row, and all gathers are pure indexing.  The property
tests in ``tests/test_batched.py`` pin this equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import morton
from repro.core.structurize import MortonOrder
from repro.geometry.bbox import BoundingBox
from repro.geometry.voxel import VoxelGrid
from repro.robustness.validate import ensure_finite
from repro.sampling.uniform import uniform_stride_indices


@dataclass(frozen=True)
class BatchedMortonOrder:
    """Morton orders of a whole batch, stored as stacked arrays.

    The batched twin of :class:`~repro.core.structurize.MortonOrder`:
    row ``b`` of every array is exactly what ``structurize(points[b])``
    would produce for the same grid.

    Attributes:
        codes: ``(B, N)`` int64 Morton codes in original point order.
        permutation: ``(B, N)`` int64 map from sorted rank to original
            index per cloud.
        ranks: ``(B, N)`` int64 inverse map (original index to rank).
        origins: ``(B, 3)`` float64 per-cloud grid origins.
        cell_sizes: ``(B,)`` float64 per-cloud cubic cell sizes.
        cells_per_axis: cells along each grid axis (shared).
        code_bits: Morton code width ``a`` (shared).
    """

    codes: np.ndarray
    permutation: np.ndarray
    ranks: np.ndarray
    origins: np.ndarray
    cell_sizes: np.ndarray
    cells_per_axis: int
    code_bits: int

    def __post_init__(self) -> None:
        if (
            self.codes.ndim != 2
            or self.codes.shape != self.permutation.shape
            or self.codes.shape != self.ranks.shape
        ):
            raise ValueError("codes/permutation/ranks must align")
        if self.origins.shape != (self.codes.shape[0], 3):
            raise ValueError("origins must be (B, 3)")
        if self.cell_sizes.shape != (self.codes.shape[0],):
            raise ValueError("cell_sizes must be (B,)")

    @property
    def num_clouds(self) -> int:
        return self.codes.shape[0]

    def __len__(self) -> int:
        """Points per cloud (matches ``len(MortonOrder)``)."""
        return self.codes.shape[1]

    def cloud(self, b: int) -> MortonOrder:
        """The per-cloud :class:`MortonOrder` view of batch row ``b``
        (compatibility bridge for per-cloud call sites)."""
        grid = VoxelGrid(
            origin=self.origins[b],
            cell_size=float(self.cell_sizes[b]),
            cells_per_axis=self.cells_per_axis,
        )
        return MortonOrder(
            codes=self.codes[b],
            permutation=self.permutation[b],
            ranks=self.ranks[b],
            grid=grid,
            code_bits=self.code_bits,
        )

    @classmethod
    def from_single(cls, order: MortonOrder) -> "BatchedMortonOrder":
        """Lift one per-cloud :class:`MortonOrder` to a ``B=1`` batch —
        the bridge per-cloud wrappers use to reach the batched kernels."""
        return cls(
            codes=order.codes[None],
            permutation=order.permutation[None],
            ranks=order.ranks[None],
            origins=np.asarray(
                order.grid.origin, dtype=np.float64
            )[None],
            cell_sizes=np.array(
                [order.grid.cell_size], dtype=np.float64
            ),
            cells_per_axis=order.grid.cells_per_axis,
            code_bits=order.code_bits,
        )

    def sorted_points(self, points: np.ndarray) -> np.ndarray:
        """View ``(B, N, C)`` per-cloud data in Morton order; shape and
        dtype preserved."""
        points = np.asarray(points)
        return np.take_along_axis(
            points, self.permutation[:, :, None], axis=1
        )

    def rank_of(self, original_indices: np.ndarray) -> np.ndarray:
        """``(B, Q)`` int64 sorted rank of each original point index
        (``(Q,)`` input broadcasts across the batch)."""
        return np.take_along_axis(
            self.ranks, _per_cloud(original_indices, self.num_clouds), 1
        )

    def original_index_of(self, sorted_ranks: np.ndarray) -> np.ndarray:
        """``(B, Q)`` int64 original index of each sorted rank
        (``(Q,)`` input broadcasts across the batch)."""
        return np.take_along_axis(
            self.permutation, _per_cloud(sorted_ranks, self.num_clouds), 1
        )


def _per_cloud(indices: np.ndarray, num_clouds: int) -> np.ndarray:
    """Lift ``(Q,)`` shared indices to ``(B, Q)``; pass ``(B, Q)``
    through unchanged."""
    indices = np.asarray(indices, dtype=np.int64)
    if indices.ndim == 1:
        return np.broadcast_to(indices, (num_clouds, indices.shape[0]))
    if indices.ndim != 2 or indices.shape[0] != num_clouds:
        raise ValueError(
            f"expected (Q,) or (B, Q) indices, got {indices.shape}"
        )
    return indices


def _validate_batch_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 3 or points.shape[2] != 3:
        raise ValueError(f"expected (B, N, 3) points, got {points.shape}")
    if points.shape[0] == 0 or points.shape[1] == 0:
        raise ValueError("cannot structurize an empty point set")
    finite = np.isfinite(points).all(axis=2)
    if not finite.all():
        bad = int((~finite).sum())
        raise ValueError(
            f"cannot structurize: {bad} of "
            f"{points.shape[0] * points.shape[1]} points "
            "have non-finite coordinates"
        )
    return points


def structurize_batch(
    points: np.ndarray,
    code_bits: int = morton.DEFAULT_CODE_BITS,
    bounding_box: Optional[BoundingBox] = None,
    stable_sort: bool = True,
) -> BatchedMortonOrder:
    """Morton-order a ``(B, N, 3)`` batch in single NumPy dispatches.

    Bit-identical to calling
    :func:`~repro.core.structurize.structurize` per cloud: each cloud
    gets its own tight bounding box and grid (or the shared
    ``bounding_box`` when given), and ties keep input order under the
    stable sort.

    Returns:
        A :class:`BatchedMortonOrder` with ``(B, N)`` codes,
        permutations, and ranks.
    """
    points = _validate_batch_points(points)
    num_clouds, num_points, _ = points.shape
    per_axis = morton.bits_per_axis(code_bits)
    cells = 1 << per_axis
    if bounding_box is not None:
        grid = VoxelGrid.for_box(bounding_box, per_axis)
        origins = np.broadcast_to(grid.origin, (num_clouds, 3)).copy()
        sizes = np.full(num_clouds, grid.cell_size, dtype=np.float64)
    else:
        origins = points.min(axis=1)
        longest = (points.max(axis=1) - origins).max(axis=1)
        sizes = longest / cells
        # Degenerate clouds (all points identical) quantize to cell
        # (0, 0, 0) under any positive size, as in VoxelGrid.for_box.
        sizes = np.where(sizes <= 0, 1.0, sizes)
    quantized = np.floor(
        (points - origins[:, None, :]) / sizes[:, None, None]
    )
    voxels = np.clip(quantized, 0, cells - 1).astype(np.uint32)
    codes = morton.encode(voxels)
    kind = "stable" if stable_sort else "quicksort"
    permutation = np.argsort(codes, axis=1, kind=kind)
    ranks = np.empty_like(permutation)
    np.put_along_axis(
        ranks,
        permutation,
        np.broadcast_to(
            np.arange(num_points, dtype=permutation.dtype),
            permutation.shape,
        ),
        axis=1,
    )
    return BatchedMortonOrder(
        codes=codes,
        permutation=permutation,
        ranks=ranks,
        origins=origins,
        cell_sizes=sizes,
        cells_per_axis=cells,
        code_bits=code_bits,
    )


@dataclass(frozen=True)
class BatchedSampleResult:
    """Output of the batched Morton sampler.

    Attributes:
        indices: ``(B, n)`` original-point indices of the samples.
        order: the :class:`BatchedMortonOrder` built (reusable by the
            batched neighbor search on the same layer, Sec. 5.2.3).
        sampled_ranks: ``(n,)`` sorted-order ranks that were picked —
            shared across the batch because the uniform stride depends
            only on ``N`` and ``n``.
    """

    indices: np.ndarray
    order: BatchedMortonOrder
    sampled_ranks: np.ndarray

    def __len__(self) -> int:
        """Samples per cloud (matches ``len(MortonSampleResult)``)."""
        return self.indices.shape[1]

    @property
    def num_clouds(self) -> int:
        return self.indices.shape[0]

    def cloud(self, b: int):
        """Per-cloud :class:`~repro.core.sampler.MortonSampleResult`
        view of batch row ``b``."""
        from repro.core.sampler import MortonSampleResult

        return MortonSampleResult(
            indices=self.indices[b],
            order=self.order.cloud(b),
            sampled_ranks=self.sampled_ranks,
        )


def sample_batch(
    points: np.ndarray,
    num_samples: int,
    code_bits: int = morton.DEFAULT_CODE_BITS,
    bounding_box: Optional[BoundingBox] = None,
    order: Optional[BatchedMortonOrder] = None,
) -> BatchedSampleResult:
    """Algorithm 1 over a whole ``(B, N, 3)`` batch at once.

    Bit-identical to running
    :meth:`~repro.core.sampler.MortonSampler.sample` per cloud.  Pass a
    precomputed ``order`` to skip code generation + sort.
    """
    points = np.asarray(points, dtype=np.float64)
    if order is None:
        order = structurize_batch(points, code_bits, bounding_box)
    elif (
        points.ndim != 3
        or order.num_clouds != points.shape[0]
        or len(order) != points.shape[1]
    ):
        raise ValueError("Morton order does not match the point count")
    else:
        # structurize_batch() validates its own input; a precomputed
        # order bypasses it, so check here.
        ensure_finite(points.reshape(-1, 3), "sample")
    ranks = uniform_stride_indices(len(order), num_samples)
    return BatchedSampleResult(
        indices=order.permutation[:, ranks],
        order=order,
        sampled_ranks=ranks,
    )
