"""EdgePC's Morton-code-based (index-window) neighbor search
(paper Sec. 5.2).

For a query at sorted rank ``j``, the candidate set is the window of
ranks ``{j - W/2, ..., j + W/2}`` in the Morton order.  With ``W == k``
the window is taken verbatim ("skip" the search entirely); with
``W > k`` the ``k`` geometrically closest candidates inside the window
are selected, trading a little compute (``O(W)`` per query instead of
``O(1)``) for a much lower false neighbor ratio (Fig. 15a).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.batched import (
    BatchedMortonOrder,
    _per_cloud,
    structurize_batch,
)
from repro.core.structurize import MortonOrder, structurize
from repro.core import morton
from repro.core.workspace import Workspace
from repro.robustness.validate import ensure_finite


def window_ranks(
    query_ranks: np.ndarray, window: int, num_points: int
) -> np.ndarray:
    """``(..., W)`` int64 candidate ranks around each query rank:
    ``(Q, W)`` for a ``(Q,)`` input, ``(B, Q, W)`` for a batched
    ``(B, Q)`` input.

    Windows are shifted (not truncated) at the array boundaries so every
    query sees exactly ``W`` distinct candidates, mirroring how a CUDA
    kernel would clamp its index arithmetic.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if window > num_points:
        raise ValueError("window cannot exceed the point count")
    query_ranks = np.asarray(query_ranks, dtype=np.int64)
    start = query_ranks - window // 2
    start = np.clip(start, 0, num_points - window)
    return start[..., None] + np.arange(window, dtype=np.int64)


class MortonNeighborSearch:
    """Approximate k-NN via index windows on the Morton order.

    Args:
        k: number of neighbors per query.
        window: search window size ``W`` (``k <= W <= N``).  ``None``
            defaults to ``k`` (the pure index-selection mode).
        code_bits: Morton code width used if a cloud must be
            structurized from scratch.
        workspace: optional :class:`~repro.core.workspace.Workspace`
            supplying the gather/distance scratch buffers; a private
            pool is created when omitted.  Pass the model's shared pool
            so steady-state serving reuses the same pages every frame.
    """

    def __init__(
        self,
        k: int,
        window: Optional[int] = None,
        code_bits: int = morton.DEFAULT_CODE_BITS,
        workspace: Optional[Workspace] = None,
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        window = k if window is None else window
        if window < k:
            raise ValueError("window must be >= k")
        morton.bits_per_axis(code_bits)
        self.k = k
        self.window = window
        self.code_bits = code_bits
        self.workspace = workspace or Workspace()

    def search_ranks(
        self,
        points: np.ndarray,
        order: MortonOrder,
        query_ranks: np.ndarray,
    ) -> np.ndarray:
        """Neighbors for queries given by *sorted rank*.

        Thin ``B=1`` wrapper around :meth:`search_ranks_batch`, so the
        per-cloud and batched paths share one kernel.

        Returns ``(Q, k)`` int64 original-point indices.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        return self.search_ranks_batch(
            points[None],
            BatchedMortonOrder.from_single(order),
            np.asarray(query_ranks, dtype=np.int64),
        )[0]

    def search(
        self,
        points: np.ndarray,
        query_indices: Optional[np.ndarray] = None,
        order: Optional[MortonOrder] = None,
    ) -> np.ndarray:
        """Neighbors for queries given by *original index*.

        Args:
            points: ``(N, 3)`` cloud.
            query_indices: original indices to query; all points when
                omitted.
            order: precomputed Morton order to reuse (Sec. 5.2.3 —
                "simply reuse the Morton code ... without any extra
                overhead"); structurized from scratch when omitted.

        Returns:
            ``(Q, k)`` int64 original-point indices.
        """
        points = np.asarray(points, dtype=np.float64)
        if order is None:
            order = structurize(points, self.code_bits)
        else:
            # structurize() validates its own input; a precomputed
            # order bypasses it, so check here.
            ensure_finite(points, "search")
        if query_indices is None:
            query_ranks = np.arange(len(order))
            # All points queried in rank order: remap output rows back
            # to original order below.
            result = self.search_ranks(points, order, query_ranks)
            out = np.empty_like(result)
            out[order.permutation] = result
            return out
        query_ranks = order.rank_of(np.asarray(query_indices))
        return self.search_ranks(points, order, query_ranks)

    # Batched variants (one NumPy dispatch for the whole batch) ---------

    def search_ranks_batch(
        self,
        points: np.ndarray,
        order: BatchedMortonOrder,
        query_ranks: np.ndarray,
    ) -> np.ndarray:
        """Batched :meth:`search_ranks`: queries by *sorted rank* over
        a ``(B, N, 3)`` batch.

        ``query_ranks`` may be ``(Q,)`` (shared across the batch, e.g.
        the uniform stride picks) or ``(B, Q)``.  :meth:`search_ranks`
        is a ``B=1`` wrapper around this kernel, so the per-cloud and
        batched paths are identical by construction.

        Returns ``(B, Q, k)`` int64 original-point indices.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 3 or points.shape[2] != 3:
            raise ValueError(
                f"expected (B, N, 3) points, got {points.shape}"
            )
        if (
            order.num_clouds != points.shape[0]
            or len(order) != points.shape[1]
        ):
            raise ValueError("Morton order does not match the point count")
        n = len(order)
        if self.window > n:
            raise ValueError(
                f"window {self.window} exceeds point count {n}"
            )
        num_clouds = points.shape[0]
        query_ranks = _per_cloud(query_ranks, num_clouds)
        candidates = window_ranks(query_ranks, self.window, n)
        if self.window == self.k:
            picked = candidates
        else:
            workspace = self.workspace
            sorted_xyz = order.sorted_points(points)
            # Flat gather into pooled scratch: one advanced index on
            # axis 0 is markedly faster than a (rows, candidates)
            # multi-axis fancy index, and reusing the pool's pages
            # avoids re-faulting multi-MB allocations every call.
            flat_idx = workspace.buffer(
                "window.idx", candidates.shape, np.int64
            )
            np.add(
                candidates,
                (np.arange(num_clouds, dtype=np.int64) * n)[
                    :, None, None
                ],
                out=flat_idx,
            )
            cand_xyz = workspace.buffer(
                "window.cand", candidates.shape + (3,), np.float64
            )
            np.take(
                sorted_xyz.reshape(-1, 3),
                flat_idx.reshape(-1),
                axis=0,
                out=cand_xyz.reshape(-1, 3),
                # Indices are window ranks, clipped in-bounds by
                # construction; "clip" selects NumPy's no-recheck fast
                # path for the out= gather.
                mode="clip",
            )
            query_xyz = np.take_along_axis(
                sorted_xyz, query_ranks[:, :, None], axis=1
            )
            cand_xyz -= query_xyz[:, :, None, :]
            # einsum fuses square-and-reduce into one pass over the
            # differences; exact ties (duplicate points) still compare
            # equal, so the stable argsort keeps window order for them.
            d2 = workspace.buffer(
                "window.d2", candidates.shape, np.float64
            )
            np.einsum("bqwc,bqwc->bqw", cand_xyz, cand_xyz, out=d2)
            pick = np.argsort(d2, axis=2, kind="stable")[:, :, : self.k]
            picked = np.take_along_axis(candidates, pick, axis=2)
        flat = picked.reshape(num_clouds, -1)
        original = np.take_along_axis(order.permutation, flat, axis=1)
        return original.reshape(picked.shape)

    def search_batch(
        self,
        points: np.ndarray,
        query_indices: Optional[np.ndarray] = None,
        order: Optional[BatchedMortonOrder] = None,
    ) -> np.ndarray:
        """Batched :meth:`search`: queries by *original index* over a
        ``(B, N, 3)`` batch in single NumPy dispatches.

        Args:
            points: ``(B, N, 3)`` batch of clouds.
            query_indices: ``(B, Q)`` (or shared ``(Q,)``) original
                indices to query; all points when omitted.
            order: precomputed :class:`BatchedMortonOrder` to reuse;
                structurized from scratch when omitted.

        Returns:
            ``(B, Q, k)`` int64 original-point indices, bit-identical
            to looping :meth:`search` per cloud.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 3 or points.shape[2] != 3:
            raise ValueError(
                f"expected (B, N, 3) points, got {points.shape}"
            )
        if order is None:
            order = structurize_batch(points, self.code_bits)
        else:
            # structurize_batch() validates its own input; a
            # precomputed order bypasses it, so check here.
            ensure_finite(points.reshape(-1, 3), "search")
        if query_indices is None:
            query_ranks = np.arange(len(order), dtype=np.int64)
            # All points queried in rank order: remap output rows back
            # to original order below.
            result = self.search_ranks_batch(points, order, query_ranks)
            out = np.empty_like(result)
            np.put_along_axis(
                out, order.permutation[:, :, None], result, axis=1
            )
            return out
        query_ranks = order.rank_of(query_indices)
        return self.search_ranks_batch(points, order, query_ranks)

    def operation_count(self, num_queries: int) -> int:
        """Operations the cost model prices: ``Q * k`` in pure-indexing
        mode (``W == k``: no distance math, one gather per returned
        neighbor), else ``Q * W`` windowed distance evaluations."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if self.window == self.k:
            return num_queries * self.k
        return num_queries * self.window
