"""EdgePC's Morton-code-based (index-window) neighbor search
(paper Sec. 5.2).

For a query at sorted rank ``j``, the candidate set is the window of
ranks ``{j - W/2, ..., j + W/2}`` in the Morton order.  With ``W == k``
the window is taken verbatim ("skip" the search entirely); with
``W > k`` the ``k`` geometrically closest candidates inside the window
are selected, trading a little compute (``O(W)`` per query instead of
``O(1)``) for a much lower false neighbor ratio (Fig. 15a).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.structurize import MortonOrder, structurize
from repro.core import morton
from repro.robustness.validate import ensure_finite


def window_ranks(
    query_ranks: np.ndarray, window: int, num_points: int
) -> np.ndarray:
    """``(Q, W)`` int64 candidate ranks around each query rank.

    Windows are shifted (not truncated) at the array boundaries so every
    query sees exactly ``W`` distinct candidates, mirroring how a CUDA
    kernel would clamp its index arithmetic.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if window > num_points:
        raise ValueError("window cannot exceed the point count")
    query_ranks = np.asarray(query_ranks, dtype=np.int64)
    start = query_ranks - window // 2
    start = np.clip(start, 0, num_points - window)
    return start[:, None] + np.arange(window, dtype=np.int64)[None, :]


class MortonNeighborSearch:
    """Approximate k-NN via index windows on the Morton order.

    Args:
        k: number of neighbors per query.
        window: search window size ``W`` (``k <= W <= N``).  ``None``
            defaults to ``k`` (the pure index-selection mode).
        code_bits: Morton code width used if a cloud must be
            structurized from scratch.
    """

    def __init__(
        self,
        k: int,
        window: Optional[int] = None,
        code_bits: int = morton.DEFAULT_CODE_BITS,
    ) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        window = k if window is None else window
        if window < k:
            raise ValueError("window must be >= k")
        morton.bits_per_axis(code_bits)
        self.k = k
        self.window = window
        self.code_bits = code_bits

    def search_ranks(
        self,
        points: np.ndarray,
        order: MortonOrder,
        query_ranks: np.ndarray,
    ) -> np.ndarray:
        """Neighbors for queries given by *sorted rank*.

        Returns ``(Q, k)`` int64 original-point indices.
        """
        points = np.asarray(points, dtype=np.float64)
        if len(order) != points.shape[0]:
            raise ValueError("Morton order does not match the point count")
        n = len(order)
        if self.window > n:
            raise ValueError(
                f"window {self.window} exceeds point count {n}"
            )
        candidates = window_ranks(query_ranks, self.window, n)
        if self.window == self.k:
            picked = candidates
        else:
            sorted_xyz = order.sorted_points(points)
            cand_xyz = sorted_xyz[candidates]  # (Q, W, 3)
            query_xyz = sorted_xyz[np.asarray(query_ranks)]
            d2 = np.sum(
                (cand_xyz - query_xyz[:, None, :]) ** 2, axis=2
            )
            pick = np.argsort(d2, axis=1, kind="stable")[:, : self.k]
            rows = np.arange(candidates.shape[0])[:, None]
            picked = candidates[rows, pick]
        return order.original_index_of(picked)

    def search(
        self,
        points: np.ndarray,
        query_indices: Optional[np.ndarray] = None,
        order: Optional[MortonOrder] = None,
    ) -> np.ndarray:
        """Neighbors for queries given by *original index*.

        Args:
            points: ``(N, 3)`` cloud.
            query_indices: original indices to query; all points when
                omitted.
            order: precomputed Morton order to reuse (Sec. 5.2.3 —
                "simply reuse the Morton code ... without any extra
                overhead"); structurized from scratch when omitted.

        Returns:
            ``(Q, k)`` int64 original-point indices.
        """
        points = np.asarray(points, dtype=np.float64)
        if order is None:
            order = structurize(points, self.code_bits)
        else:
            # structurize() validates its own input; a precomputed
            # order bypasses it, so check here.
            ensure_finite(points, "search")
        if query_indices is None:
            query_ranks = np.arange(len(order))
            # All points queried in rank order: remap output rows back
            # to original order below.
            result = self.search_ranks(points, order, query_ranks)
            out = np.empty_like(result)
            out[order.permutation] = result
            return out
        query_ranks = order.rank_of(np.asarray(query_indices))
        return self.search_ranks(points, order, query_ranks)

    def operation_count(self, num_queries: int) -> int:
        """Distance evaluations performed: ``Q`` for pure indexing
        (one gather per neighbor, priced as O(k) <= O(W)), else
        ``Q * W``."""
        if num_queries < 0:
            raise ValueError("num_queries must be non-negative")
        if self.window == self.k:
            return num_queries * self.k
        return num_queries * self.window
