"""3-D Hilbert curve encoding — the alternative space-filling curve.

EdgePC picks the Morton/Z-order curve for structurization because its
encoding is a pure bit-interleave (Sec. 4.1's low-complexity
requirement).  The Hilbert curve has strictly better locality (no
"jumps" — consecutive curve positions are always face-adjacent cells)
at the cost of a more complex transform.  This module implements the
Hilbert transform so the curve choice can be *measured* rather than
assumed (see ``benchmarks/test_ablations.py``): how much false-neighbor
ratio does Morton leave on the table, and what does Hilbert's encoding
cost?

Implementation: Skilling's transform (John Skilling, "Programming the
Hilbert curve", AIP 2004) specialized to 3-D and vectorized over
point arrays — the transpose-format Gray-code untangling run over
NumPy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core import morton
from repro.core.structurize import MortonOrder
from repro.geometry.bbox import BoundingBox
from repro.geometry.voxel import VoxelGrid

_DIMS = 3


def _cells_to_hilbert_distance(
    cells: np.ndarray, bits: int
) -> np.ndarray:
    """Skilling's inverse transform: cell coords -> curve distance."""
    x = cells.astype(np.int64).copy()  # (N, 3)

    # Inverse undo of the Hilbert transform (coords -> transpose form).
    m = np.int64(1) << (bits - 1)
    q = m
    while q > 1:
        p = q - 1
        for axis in range(_DIMS):
            has_bit = (x[:, axis] & q) != 0
            # Invert low bits of x[0] where the bit is set; otherwise
            # exchange low bits of x[0] and x[axis].
            t = (x[:, 0] ^ x[:, axis]) & p
            x[:, 0] = np.where(has_bit, x[:, 0] ^ p, x[:, 0] ^ t)
            x[:, axis] = np.where(
                has_bit, x[:, axis], x[:, axis] ^ t
            )
        q >>= 1

    # Gray encode.
    for axis in range(1, _DIMS):
        x[:, axis] ^= x[:, axis - 1]
    t = np.zeros(x.shape[0], dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((x[:, _DIMS - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for axis in range(_DIMS):
        x[:, axis] ^= t

    # Interleave the transpose-format words into one distance value:
    # bit b of axis a lands at position 3*b + (2 - a).
    distance = np.zeros(x.shape[0], dtype=np.int64)
    for b in range(bits):
        for axis in range(_DIMS):
            bit = (x[:, axis] >> b) & 1
            distance |= bit << (_DIMS * b + (_DIMS - 1 - axis))
    return distance


def hilbert_encode(cells: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert curve distance of ``(N, 3)`` integer cells.

    Args:
        cells: non-negative integer coordinates ``< 2**bits``.
        bits: bits per axis (1..21, matching the Morton limit).
    """
    cells = np.asarray(cells)
    if cells.ndim != 2 or cells.shape[1] != 3:
        raise ValueError(f"expected (N, 3) cells, got {cells.shape}")
    if not 1 <= bits <= morton.MAX_BITS_PER_AXIS:
        raise ValueError(
            f"bits must be in [1, {morton.MAX_BITS_PER_AXIS}]"
        )
    if cells.min() < 0 or cells.max() >= (1 << bits):
        raise ValueError("cell coordinates out of range for bits")
    return _cells_to_hilbert_distance(cells, bits)


def hilbert_structurize(
    points: np.ndarray,
    code_bits: int = morton.DEFAULT_CODE_BITS,
    bounding_box=None,
) -> MortonOrder:
    """Structurize a cloud along the Hilbert curve.

    Returns a :class:`MortonOrder` (the container is curve-agnostic:
    codes + permutation + grid), so every downstream consumer —
    samplers, window searchers — works unchanged.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("cannot structurize an empty point set")
    if not np.isfinite(points).all():
        raise ValueError("points contain non-finite coordinates")
    per_axis = morton.bits_per_axis(code_bits)
    box = bounding_box or BoundingBox.of_points(points)
    grid = VoxelGrid.for_box(box, per_axis)
    codes = hilbert_encode(grid.voxelize(points), per_axis)
    permutation = np.argsort(codes, kind="stable")
    ranks = np.empty_like(permutation)
    ranks[permutation] = np.arange(len(permutation))
    return MortonOrder(
        codes=codes,
        permutation=permutation,
        ranks=ranks,
        grid=grid,
        code_bits=code_bits,
    )
