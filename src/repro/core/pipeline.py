"""EdgePC pipeline configuration (paper Secs. 5.1.3, 5.2.3, 6.1.3).

:class:`EdgePCConfig` is the single knob object the rest of the library
consumes: which sampling / up-sampling / neighbor-search layers are
replaced by the Morton approximations, the Morton code width, the search
window rule, the DGCNN reuse distance, and whether the feature-compute
stage is deployed to tensor cores.

The paper's chosen design point (Sec. 5.1.3 / 5.2.3): optimize only the
first down-sampling layer, the last up-sampling layer, and the first
neighbor-search layer; 32-bit codes; reuse distance 1 for DGCNN's
feature-space modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable

from repro.core import morton
from repro.core.reuse import NeighborReusePolicy
from repro.core.workspace import DEFAULT_SCRATCH_BYTES


def _as_layer_set(layers: Iterable[int]) -> FrozenSet[int]:
    layers = frozenset(int(layer) for layer in layers)
    if any(layer < 0 for layer in layers):
        raise ValueError("layer indices must be non-negative")
    return layers


@dataclass(frozen=True)
class EdgePCConfig:
    """Which approximations are active, and their parameters.

    Layer indices count from the network input: for PointNet++ the
    down-sample layers are the SA modules 0..3 and the up-sample layers
    are the FP modules 0..3 (FP 3 is the *last*, largest one the paper
    optimizes); for DGCNN the neighbor layers are the EdgeConv modules.

    Attributes:
        code_bits: Morton code width ``a``; 32 per the sensitivity study.
        window_multiplier: search window ``W = multiplier * k``.  1 is
            the pure index-pick mode.
        sample_layers: down-sample layer indices using the Morton
            sampler (others keep FPS).
        upsample_layers: FP layer indices using the Morton up-sampler.
        neighbor_layers: neighbor-search layer indices using the index
            window (others keep kNN / ball query).
        reuse_distance: DGCNN feature-space reuse distance (Sec. 5.2.3).
        use_tensor_cores: deploy feature compute to tensor cores
            (the S+N+F configuration of Sec. 6.1.3).
        sorted_grouping: sort each neighbor-index row before the
            grouping gather (Sec. 5.4.2) — semantically a no-op for
            the max-pooled aggregation, but it improves the gather's
            memory coalescing.
        fc_merge_factor: merge this many Morton-adjacent positions
            into the channel dimension of the feature-compute convs
            (Sec. 5.4.1); raises tensor-core utilization at equal
            FLOPs, at a small approximation cost.
        exact_fast_threshold: point count at and above which the exact
            stages (FPS / kNN / ball query) run the pruning/grid fast
            engines instead of the brute kernels.  The fast engines
            return bit-identical results, so this is purely a
            performance dispatch — it matters most when the guard
            degrades a large-N batch to exact kernels.  Small inputs
            keep brute: its fixed overhead is lower.
        workspace_scratch_bytes: transient-memory budget handed to the
            model's scratch :class:`~repro.core.workspace.Workspace`.
            The 4 MiB default keeps the tiled distance blocks
            cache-resident on paper-scale clouds, but thrashes on
            100k-point halo gathers — scene partitioning raises it.
    """

    code_bits: int = morton.DEFAULT_CODE_BITS
    window_multiplier: int = 2
    sample_layers: FrozenSet[int] = field(
        default_factory=lambda: frozenset({0})
    )
    upsample_layers: FrozenSet[int] = field(
        default_factory=lambda: frozenset({3})
    )
    neighbor_layers: FrozenSet[int] = field(
        default_factory=lambda: frozenset({0})
    )
    reuse_distance: int = 1
    use_tensor_cores: bool = False
    sorted_grouping: bool = False
    fc_merge_factor: int = 1
    exact_fast_threshold: int = 8192
    workspace_scratch_bytes: int = DEFAULT_SCRATCH_BYTES

    def __post_init__(self) -> None:
        morton.bits_per_axis(self.code_bits)
        if self.window_multiplier < 1:
            raise ValueError("window_multiplier must be >= 1")
        if self.reuse_distance < 0:
            raise ValueError("reuse_distance must be non-negative")
        if self.fc_merge_factor < 1:
            raise ValueError("fc_merge_factor must be >= 1")
        if self.exact_fast_threshold < 1:
            raise ValueError("exact_fast_threshold must be >= 1")
        if self.workspace_scratch_bytes < 1:
            raise ValueError("workspace_scratch_bytes must be positive")
        object.__setattr__(
            self, "sample_layers", _as_layer_set(self.sample_layers)
        )
        object.__setattr__(
            self, "upsample_layers", _as_layer_set(self.upsample_layers)
        )
        object.__setattr__(
            self, "neighbor_layers", _as_layer_set(self.neighbor_layers)
        )

    # Factory design points ---------------------------------------------

    @classmethod
    def baseline(cls) -> "EdgePCConfig":
        """The SOTA pipeline: no approximation anywhere."""
        return cls(
            sample_layers=frozenset(),
            upsample_layers=frozenset(),
            neighbor_layers=frozenset(),
            reuse_distance=0,
            use_tensor_cores=False,
        )

    @classmethod
    def paper_default(cls) -> "EdgePCConfig":
        """The S+N configuration evaluated in Sec. 6.2."""
        return cls()

    @classmethod
    def paper_with_tensor_cores(cls) -> "EdgePCConfig":
        """The S+N+F configuration (feature compute on tensor cores)."""
        return cls(use_tensor_cores=True)

    @classmethod
    def with_architectural_insights(cls) -> "EdgePCConfig":
        """S+N+F plus the Sec. 5.4 future-direction optimizations:
        sorted grouping and a 10x channel merge."""
        return cls(
            use_tensor_cores=True,
            sorted_grouping=True,
            fc_merge_factor=10,
        )

    @classmethod
    def all_layers(cls, num_modules: int = 4) -> "EdgePCConfig":
        """Approximate every layer — the aggressive point Fig. 15b shows
        trades a lot of accuracy for little extra speed."""
        layers = frozenset(range(num_modules))
        return cls(
            sample_layers=layers,
            upsample_layers=layers,
            neighbor_layers=layers,
        )

    # Queries -------------------------------------------------------------

    def uses_morton_sampling(self, layer: int) -> bool:
        return layer in self.sample_layers

    def uses_morton_upsampling(self, layer: int) -> bool:
        return layer in self.upsample_layers

    def uses_morton_neighbors(self, layer: int) -> bool:
        return layer in self.neighbor_layers

    def window_for(self, k: int) -> int:
        """Search window ``W`` for ``k`` requested neighbors."""
        if k < 1:
            raise ValueError("k must be positive")
        return self.window_multiplier * k

    def exact_engine_for(self, num_points: int) -> str:
        """Which exact engine a stage should run at ``num_points``:
        ``"fast"`` (pruning FPS / grid neighbor search) at or above
        :attr:`exact_fast_threshold`, else ``"brute"``.  Both engines
        are bit-identical; the choice is purely about speed."""
        if num_points < 0:
            raise ValueError("num_points must be non-negative")
        if num_points >= self.exact_fast_threshold:
            return "fast"
        return "brute"

    def reuse_policy(self) -> NeighborReusePolicy:
        return NeighborReusePolicy(reuse_distance=self.reuse_distance)

    def morton_memory_bytes(self, num_points: int) -> float:
        """Per-frame storage for Morton codes (Sec. 5.1.3): 0 when no
        layer structurizes."""
        if not (
            self.sample_layers
            or self.upsample_layers
            or self.neighbor_layers
        ):
            return 0.0
        return morton.code_memory_bytes(num_points, self.code_bits)

    def with_window_multiplier(self, multiplier: int) -> "EdgePCConfig":
        return replace(self, window_multiplier=multiplier)

    def with_code_bits(self, code_bits: int) -> "EdgePCConfig":
        return replace(self, code_bits=code_bits)

    def with_workspace_scratch_bytes(
        self, scratch_bytes: int
    ) -> "EdgePCConfig":
        return replace(self, workspace_scratch_bytes=scratch_bytes)

    @property
    def is_baseline(self) -> bool:
        return (
            not self.sample_layers
            and not self.upsample_layers
            and not self.neighbor_layers
            and self.reuse_distance == 0
        )
