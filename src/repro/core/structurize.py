"""Structurizing point clouds: Morton ordering (paper Sec. 4.1).

The :class:`MortonOrder` object captures everything downstream consumers
need from the structurization step:

- the Morton ``codes`` of the points (in original order),
- the ``permutation`` ``I' = [i_0, ..., i_{N-1}]`` mapping sorted rank to
  original index (``i_0`` has the minimum code),
- the inverse ``ranks`` mapping original index to sorted rank,
- the :class:`~repro.geometry.voxel.VoxelGrid` used for quantization.

EdgePC's sampler and neighbor searcher then operate purely on ranks:
index arithmetic on the sorted order replaces geometric search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import morton
from repro.geometry.bbox import BoundingBox
from repro.geometry.voxel import VoxelGrid


@dataclass(frozen=True)
class MortonOrder:
    """The result of structurizing a point cloud with Morton codes."""

    codes: np.ndarray
    permutation: np.ndarray
    ranks: np.ndarray
    grid: VoxelGrid
    code_bits: int

    def __post_init__(self) -> None:
        if (
            self.codes.shape != self.permutation.shape
            or self.codes.shape != self.ranks.shape
        ):
            raise ValueError("codes/permutation/ranks must align")

    def __len__(self) -> int:
        return self.codes.shape[0]

    @property
    def sorted_codes(self) -> np.ndarray:
        """``(N,)`` int64 codes in ascending order (the 'structured'
        view)."""
        return self.codes[self.permutation]

    def sorted_points(self, points: np.ndarray) -> np.ndarray:
        """View the original ``(N, ...)`` point array in Morton order,
        dtype preserved."""
        return np.asarray(points)[self.permutation]

    def rank_of(self, original_indices: np.ndarray) -> np.ndarray:
        """``(Q,)`` int64 sorted rank of each original point index."""
        return self.ranks[np.asarray(original_indices)]

    def original_index_of(self, sorted_ranks: np.ndarray) -> np.ndarray:
        """``(Q,)`` int64 original index of each sorted rank
        (``I'`` lookup)."""
        return self.permutation[np.asarray(sorted_ranks)]

    @property
    def memory_overhead_bytes(self) -> float:
        """Extra storage for the codes: ``N * a / 8`` B (Sec. 5.1.3)."""
        return morton.code_memory_bytes(len(self), self.code_bits)


def structurize(
    points: np.ndarray,
    code_bits: int = morton.DEFAULT_CODE_BITS,
    bounding_box: Optional[BoundingBox] = None,
    stable_sort: bool = True,
    curve: str = "morton",
) -> MortonOrder:
    """Compute the space-filling-curve order of ``(N, 3)`` points.

    Args:
        points: ``(N, 3)`` coordinates.
        code_bits: total Morton code width ``a``; each axis gets
            ``floor(a / 3)`` bits.  The paper's default is 32.
        bounding_box: the quantization domain.  Defaults to the tight box
            of the points; pass an explicit box to share a grid across
            frames (e.g. streaming LiDAR).
        stable_sort: use a stable sort so ties (points in the same voxel)
            keep their input order, making the pipeline deterministic.
        curve: ``"morton"`` (the paper's choice) or ``"hilbert"``
            (better locality, ~4x costlier encoding — see the
            curve-choice ablation).

    Returns:
        A :class:`MortonOrder` carrying codes, the rank permutation, its
        inverse, and the voxel grid used.
    """
    if curve == "hilbert":
        from repro.core.hilbert import hilbert_structurize

        return hilbert_structurize(points, code_bits, bounding_box)
    if curve != "morton":
        raise ValueError(f"unknown curve {curve!r}")
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    if points.shape[0] == 0:
        raise ValueError("cannot structurize an empty point set")
    finite = np.isfinite(points).all(axis=1)
    if not finite.all():
        bad = int((~finite).sum())
        raise ValueError(
            f"cannot structurize: {bad} of {points.shape[0]} points "
            "have non-finite coordinates"
        )
    per_axis = morton.bits_per_axis(code_bits)
    box = bounding_box or BoundingBox.of_points(points)
    grid = VoxelGrid.for_box(box, per_axis)
    codes = morton.encode(grid.voxelize(points))
    kind = "stable" if stable_sort else "quicksort"
    permutation = np.argsort(codes, kind=kind)
    ranks = np.empty_like(permutation)
    ranks[permutation] = np.arange(len(permutation))
    return MortonOrder(
        codes=codes,
        permutation=permutation,
        ranks=ranks,
        grid=grid,
        code_bits=code_bits,
    )


def structuredness(order: MortonOrder, points: np.ndarray) -> float:
    """A scalar measure of how 'structured' the ordering left the cloud.

    Defined as the mean distance between consecutive points in the given
    order, normalized by the same statistic for a random order.  A value
    of 1.0 means no better than random; Morton-sorted clouds typically
    score far below 1 because consecutive points are spatial neighbors.
    (Used by the quantitative analysis mirroring paper Sec. 4.3.)
    """
    points = np.asarray(points, dtype=np.float64)
    if len(points) < 3:
        return 1.0
    ordered = order.sorted_points(points)
    sorted_gap = np.linalg.norm(np.diff(ordered, axis=0), axis=1).mean()
    rng = np.random.default_rng(0)
    shuffled = points[rng.permutation(len(points))]
    random_gap = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
    if random_gap == 0:
        return 1.0
    return float(sorted_gap / random_gap)
