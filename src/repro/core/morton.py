"""Morton (Z-order) codes for 3-D integer coordinates.

A Morton code maps an n-dimensional integer coordinate to a single
integer by bit interleaving, preserving spatial locality: points that are
close in space tend to have numerically close codes (paper Sec. 4.1).
For the 3-D case used by EdgePC, the code of ``(x, y, z)`` places bit
``i`` of ``x`` at position ``3 i``, of ``y`` at ``3 i + 1``, and of ``z``
at ``3 i + 2``; e.g. ``(2, 3, 4) = (010, 011, 100)b`` encodes to
``100 011 010 b = 282``.

The implementation is fully vectorized ("fully parallel" in the paper's
Algorithm 1, line 3): the bit-spreading runs as a short sequence of
NumPy mask-and-shift operations over the whole array at once.
"""

from __future__ import annotations

import numpy as np

#: Maximum Morton code width supported: 21 bits per axis packs into 63
#: bits, the most that fits a signed 64-bit integer.
MAX_BITS_PER_AXIS = 21

#: The paper's default code width (Sec. 5.1.3 / 6.1.3): 32-bit codes,
#: i.e. floor(32 / 3) = 10 bits per axis.
DEFAULT_CODE_BITS = 32

# Magic-number spreading constants for 21-bit inputs -> every 3rd bit.
# Standard "spread by 2" sequence (see e.g. Baert's Morton encoding
# reference, the paper's [27]).
_SPREAD_MASKS = (
    (32, 0x1F00000000FFFF),
    (16, 0x1F0000FF0000FF),
    (8, 0x100F00F00F00F00F),
    (4, 0x10C30C30C30C30C3),
    (2, 0x1249249249249249),
)


def bits_per_axis(code_bits: int) -> int:
    """Bits available per axis for an ``a``-bit Morton code:
    ``floor(a / 3)`` (paper Sec. 5.1.3)."""
    per_axis = code_bits // 3
    if per_axis < 1:
        raise ValueError(f"code width {code_bits} leaves no bits per axis")
    if per_axis > MAX_BITS_PER_AXIS:
        raise ValueError(
            f"code width {code_bits} exceeds the 63-bit packing limit"
        )
    return per_axis


def spread_bits(values: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each value so bit ``i`` moves to ``3 i``.

    This is the building block of interleaving: the three spread axes are
    OR-ed together at offsets 0/1/2.

    Returns:
        int64 array of the input's shape with every value's bits
        spread to each third position.
    """
    spread = np.asarray(values, dtype=np.int64)
    if np.any(spread < 0) or np.any(spread >= (1 << MAX_BITS_PER_AXIS)):
        raise ValueError("values must fit in 21 unsigned bits")
    for shift, mask in _SPREAD_MASKS:
        spread = (spread | (spread << shift)) & mask
    return spread


# Inverse sequence: each shift is paired with the mask of the *previous*
# forward stage, ending with the plain 21-bit mask.
_COMPACT_STEPS = (
    (2, 0x10C30C30C30C30C3),
    (4, 0x100F00F00F00F00F),
    (8, 0x1F0000FF0000FF),
    (16, 0x1F00000000FFFF),
    (32, (1 << MAX_BITS_PER_AXIS) - 1),
)


def compact_bits(codes: np.ndarray) -> np.ndarray:
    """Inverse of :func:`spread_bits`: gather every 3rd bit back down
    into an int64 array of the input's shape."""
    compact = np.asarray(codes, dtype=np.int64) & 0x1249249249249249
    for shift, mask in _COMPACT_STEPS:
        compact = (compact ^ (compact >> shift)) & mask
    return compact


def encode(cells: np.ndarray) -> np.ndarray:
    """Interleave ``(..., 3)`` integer cell coordinates into Morton
    codes, returning an int64 array of the leading shape (``(N,)`` for
    a single cloud, ``(B, N)`` for a batch in one dispatch).

    Axis order follows the paper's worked example: x occupies the least
    significant interleaved bit, then y, then z.
    """
    cells = np.asarray(cells)
    if cells.ndim < 2 or cells.shape[-1] != 3:
        raise ValueError(f"expected (..., 3) cells, got {cells.shape}")
    x = spread_bits(cells[..., 0])
    y = spread_bits(cells[..., 1])
    z = spread_bits(cells[..., 2])
    return x | (y << 1) | (z << 2)


def decode(codes: np.ndarray) -> np.ndarray:
    """Recover ``(..., 3)`` int64 integer cells from an array of
    Morton codes of any shape."""
    codes = np.asarray(codes, dtype=np.int64)
    if np.any(codes < 0):
        raise ValueError("Morton codes must be non-negative")
    return np.stack(
        [
            compact_bits(codes),
            compact_bits(codes >> 1),
            compact_bits(codes >> 2),
        ],
        axis=-1,
    )


def encode_scalar(x: int, y: int, z: int) -> int:
    """Convenience scalar encoder (used by tests and examples)."""
    return int(encode(np.array([[x, y, z]]))[0])


def decode_scalar(code: int) -> tuple:
    """Convenience scalar decoder returning ``(x, y, z)``."""
    x, y, z = decode(np.array([code]))[0]
    return int(x), int(y), int(z)


def code_memory_bytes(num_points: int, code_bits: int) -> float:
    """Memory overhead of storing the codes: ``N * a / 8`` bytes
    (paper Sec. 5.1.3)."""
    if num_points < 0:
        raise ValueError("num_points must be non-negative")
    bits_per_axis(code_bits)  # validates the width
    return num_points * code_bits / 8.0
