"""EdgePC's Morton-code-based sampler (paper Sec. 5.1, Algorithm 1).

Down-sampling replaces FPS with three steps: Morton code generation
(``O(N)``, fully parallel), a sort (``O(N log N)``), and a uniform
stride pick over the sorted order (``O(n)``, fully parallel).  The
up-sampler replaces the interpolation stage's nearest-sampled-point
search (``O(n)`` per point) with a constant-size candidate set derived
from stride arithmetic: the 4 sampled points at strides ``-2, -1, +1,
+2`` around a point's own stride block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core import morton
from repro.core.batched import (
    BatchedMortonOrder,
    BatchedSampleResult,
    sample_batch,
)
from repro.core.structurize import MortonOrder, structurize
from repro.geometry.bbox import BoundingBox
from repro.robustness.validate import ensure_finite
from repro.sampling.uniform import uniform_stride_indices


@dataclass(frozen=True)
class MortonSampleResult:
    """Output of the Morton sampler.

    Attributes:
        indices: ``(n,)`` original-point indices of the samples.
        order: the :class:`MortonOrder` built (reusable by the neighbor
            searcher on the same layer at zero extra cost, Sec. 5.2.3).
        sampled_ranks: ``(n,)`` sorted-order ranks that were picked.
    """

    indices: np.ndarray
    order: MortonOrder
    sampled_ranks: np.ndarray

    def __len__(self) -> int:
        return self.indices.shape[0]


class MortonSampler:
    """Approximate down-sampler: uniform stride over the Morton order.

    Args:
        code_bits: Morton code width ``a`` (default 32, Sec. 5.1.3).
        bounding_box: optional fixed quantization domain shared across
            frames; defaults to each cloud's tight box.
    """

    def __init__(
        self,
        code_bits: int = morton.DEFAULT_CODE_BITS,
        bounding_box: Optional[BoundingBox] = None,
    ) -> None:
        morton.bits_per_axis(code_bits)  # validate early
        self.code_bits = code_bits
        self.bounding_box = bounding_box

    def sample(
        self,
        points: np.ndarray,
        num_samples: int,
        order: Optional[MortonOrder] = None,
    ) -> MortonSampleResult:
        """Sample ``num_samples`` of ``(N, 3)`` points (Algorithm 1).

        Pass a precomputed ``order`` to skip code generation + sort when
        the cloud was already structurized (e.g. by an earlier layer).
        """
        points = np.asarray(points, dtype=np.float64)
        if order is None:
            order = structurize(
                points, self.code_bits, self.bounding_box
            )
        elif len(order) != points.shape[0]:
            raise ValueError("Morton order does not match the point count")
        else:
            # structurize() validates its own input; a precomputed
            # order bypasses it, so check here.
            ensure_finite(points, "sample")
        ranks = uniform_stride_indices(len(order), num_samples)
        return MortonSampleResult(
            indices=order.original_index_of(ranks),
            order=order,
            sampled_ranks=ranks,
        )

    def sample_batch(
        self,
        points: np.ndarray,
        num_samples: int,
        order: Optional[BatchedMortonOrder] = None,
    ) -> BatchedSampleResult:
        """Batched :meth:`sample`: Algorithm 1 over a ``(B, N, 3)``
        batch in single NumPy dispatches, bit-identical to looping
        :meth:`sample` per cloud."""
        return sample_batch(
            points,
            num_samples,
            self.code_bits,
            self.bounding_box,
            order,
        )


class MortonUpsampler:
    """Approximate interpolation for FP modules (paper 'Optimizing
    Up-sampling').

    Given a cloud of ``N`` points down-sampled by the Morton sampler to
    ``n`` points at stride ``step = N / n``, the 3 interpolation anchors
    of point ``j`` (sorted rank) are chosen among the 4 samples at ranks
    ``j' - 2*step, j' - step, j' + step, j' + 2*step`` with
    ``j' = j - j % step``, instead of searched over all ``n`` samples.
    """

    def __init__(self, num_candidates: int = 4, num_anchors: int = 3):
        if num_anchors > num_candidates:
            raise ValueError("cannot pick more anchors than candidates")
        if num_anchors < 1:
            raise ValueError("need at least one anchor")
        self.num_candidates = num_candidates
        self.num_anchors = num_anchors

    def candidate_sample_slots(
        self,
        num_points: int,
        sample_result: MortonSampleResult | BatchedSampleResult,
    ) -> np.ndarray:
        """``(N, num_candidates)`` int64 sample slots per sorted rank.

        Slot ``s`` means "the s-th sampled point" (row into the sampled
        feature matrix).  Out-of-range candidates are clamped to the
        valid slot range, mirroring the edge handling of the reference
        implementation (the first/last stride blocks see their nearest
        in-range samples instead).
        """
        num_samples = len(sample_result)
        if num_samples < 1:
            raise ValueError("sample result is empty")
        step = num_points / num_samples
        ranks = np.arange(num_points, dtype=np.float64)
        block = np.floor(ranks / step)  # j' / step, the owning slot
        half = self.num_candidates // 2
        offsets = np.array(
            [o for o in range(-half, half + 1) if o != 0][
                : self.num_candidates
            ],
            dtype=np.float64,
        )
        slots = block[:, None] + offsets[None, :]
        return np.clip(slots, 0, num_samples - 1).astype(np.int64)

    def interpolation_weights(
        self,
        points: np.ndarray,
        sample_result: MortonSampleResult,
    ) -> tuple:
        """Anchors and inverse-distance weights for feature propagation.

        Returns:
            ``(anchor_slots, weights)`` where ``anchor_slots`` is
            ``(N, num_anchors)`` rows into the sampled set and
            ``weights`` is the matching ``(N, num_anchors)`` convex
            weights (inverse-distance, as in PointNet++ FP).

        Rows follow the *sorted* order of ``points``; use
        ``sample_result.order`` to map back if original order is needed.
        """
        points = np.asarray(points, dtype=np.float64)
        order = sample_result.order
        n_points = points.shape[0]
        if len(order) != n_points:
            raise ValueError("order does not match point count")
        slots = self.candidate_sample_slots(n_points, sample_result)
        sorted_points = order.sorted_points(points)
        sampled_xyz = points[sample_result.indices]  # (n, 3) slot order
        candidates = sampled_xyz[slots]  # (N, C, 3)
        d2 = np.sum(
            (candidates - sorted_points[:, None, :]) ** 2, axis=2
        )
        pick = np.argsort(d2, axis=1, kind="stable")[:, : self.num_anchors]
        rows = np.arange(n_points)[:, None]
        anchor_slots = slots[rows, pick]
        anchor_d2 = d2[rows, pick]
        inv = 1.0 / np.maximum(anchor_d2, 1e-10)
        weights = inv / inv.sum(axis=1, keepdims=True)
        return anchor_slots, weights

    def interpolation_weights_batch(
        self,
        points: np.ndarray,
        sample_result: BatchedSampleResult,
    ) -> tuple:
        """Batched :meth:`interpolation_weights` over ``(B, N, 3)``.

        Returns:
            ``(anchor_slots, weights)`` of shape
            ``(B, N, num_anchors)``, bit-identical to looping
            :meth:`interpolation_weights` per cloud.  Rows follow each
            cloud's *sorted* order, as in the per-cloud method.
        """
        points = np.asarray(points, dtype=np.float64)
        order = sample_result.order
        if points.ndim != 3 or points.shape[2] != 3:
            raise ValueError(
                f"expected (B, N, 3) points, got {points.shape}"
            )
        if (
            order.num_clouds != points.shape[0]
            or len(order) != points.shape[1]
        ):
            raise ValueError("order does not match point count")
        n_points = points.shape[1]
        slots = self.candidate_sample_slots(n_points, sample_result)
        sorted_points = order.sorted_points(points)
        sampled_xyz = np.take_along_axis(
            points, sample_result.indices[:, :, None], axis=1
        )
        candidates = sampled_xyz[:, slots]  # (B, N, C, 3)
        d2 = np.sum(
            (candidates - sorted_points[:, :, None, :]) ** 2, axis=3
        )
        pick = np.argsort(d2, axis=2, kind="stable")
        pick = pick[:, :, : self.num_anchors]
        anchor_slots = np.take_along_axis(
            np.broadcast_to(slots, d2.shape), pick, axis=2
        )
        anchor_d2 = np.take_along_axis(d2, pick, axis=2)
        inv = 1.0 / np.maximum(anchor_d2, 1e-10)
        weights = inv / inv.sum(axis=2, keepdims=True)
        return anchor_slots, weights

    def interpolate(
        self,
        points: np.ndarray,
        sample_result: MortonSampleResult,
        sampled_features: np.ndarray,
    ) -> np.ndarray:
        """Propagate ``(n, C)`` sampled features back to ``(N, C)``.

        Output rows are float64, in the *original* point order.
        """
        sampled_features = np.asarray(sampled_features, dtype=np.float64)
        if sampled_features.shape[0] != len(sample_result):
            raise ValueError("feature rows must match the sample count")
        anchor_slots, weights = self.interpolation_weights(
            points, sample_result
        )
        gathered = sampled_features[anchor_slots]  # (N, A, C)
        sorted_out = np.einsum("nac,na->nc", gathered, weights)
        out = np.empty_like(sorted_out)
        out[sample_result.order.permutation] = sorted_out
        return out


def exact_interpolate(
    points: np.ndarray,
    sampled_indices: np.ndarray,
    sampled_features: np.ndarray,
    num_anchors: int = 3,
) -> np.ndarray:
    """The SOTA interpolation: 3-NN over the full sampled set.

    Baseline counterpart of :meth:`MortonUpsampler.interpolate`, used by
    the unoptimized FP modules and by tests as the exactness oracle.
    Returns an ``(N, C)`` float64 feature array in original point
    order.
    """
    points = np.asarray(points, dtype=np.float64)
    sampled_indices = np.asarray(sampled_indices)
    sampled_features = np.asarray(sampled_features, dtype=np.float64)
    sampled_xyz = points[sampled_indices]
    k = min(num_anchors, sampled_xyz.shape[0])
    s_sq = np.sum(sampled_xyz**2, axis=1)[None, :]
    out = np.empty(
        (points.shape[0], sampled_features.shape[1]), dtype=np.float64
    )
    # Tile the query axis so a large-N cloud never materializes the
    # full (N, n) distance matrix; clouds at or below the chunk size
    # take a single tile spanning every row, unchanged from the
    # untiled expression.
    chunk = 4096
    for lo in range(0, points.shape[0], chunk):
        block = points[lo : lo + chunk]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ sampled_xyz.T
            + s_sq
        )
        np.maximum(d2, 0.0, out=d2)
        pick = np.argsort(d2, axis=1, kind="stable")[:, :k]
        rows = np.arange(block.shape[0])[:, None]
        inv = 1.0 / np.maximum(d2[rows, pick], 1e-10)
        weights = inv / inv.sum(axis=1, keepdims=True)
        out[lo : lo + chunk] = np.einsum(
            "nac,na->nc", sampled_features[pick], weights
        )
    return out
