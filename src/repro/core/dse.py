"""Design-space exploration for EdgePC's knobs (paper Secs. 5.1.3, 6.3).

The paper tunes three axes against three objectives:

=================  ==================================================
axis               objective it moves
=================  ==================================================
Morton code width  memory overhead vs. quantization (false neighbors)
search window W    neighbor-search speedup vs. false neighbor ratio
# optimized layers speedup vs. accuracy
=================  ==================================================

:func:`explore_window_sizes` and :func:`explore_code_bits` measure the
empirical side (false neighbor ratio on a concrete cloud) together with
the analytic operation-count speedup; the result records feed Fig. 15's
sensitivity benchmarks and the ``EXPERIMENTS.md`` tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core import morton
from repro.core.neighbor import MortonNeighborSearch
from repro.core.structurize import structurize
from repro.neighbors.brute import knn, pairwise_operation_count
from repro.neighbors.metrics import false_neighbor_ratio


@dataclass(frozen=True)
class WindowDesignPoint:
    """One row of the window-size sensitivity sweep (Fig. 15a)."""

    window: int
    window_multiplier: float
    false_neighbor_ratio: float
    search_speedup: float


@dataclass(frozen=True)
class CodeBitsDesignPoint:
    """One row of the code-width sweep (Sec. 5.1.3 / 6.1.3)."""

    code_bits: int
    bits_per_axis: int
    memory_bytes: float
    false_neighbor_ratio: float


def explore_window_sizes(
    points: np.ndarray,
    k: int,
    multipliers: Sequence[float] = (1, 2, 4, 8, 16),
    code_bits: int = morton.DEFAULT_CODE_BITS,
    query_indices: Optional[np.ndarray] = None,
) -> List[WindowDesignPoint]:
    """Sweep the search window and report FNR + analytic speedup.

    Speedup is the ratio of brute-force distance evaluations
    (``Q x N``) to windowed evaluations (``Q x W``), the same quantity
    the paper's Fig. 15a tracks.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    order = structurize(points, code_bits)
    if query_indices is None:
        query_indices = np.arange(n)
    query_indices = np.asarray(query_indices)
    exact = knn(points[query_indices], points, k)
    results = []
    for multiplier in multipliers:
        window = min(n, max(k, int(round(multiplier * k))))
        searcher = MortonNeighborSearch(k, window, code_bits)
        approx = searcher.search(points, query_indices, order)
        fnr = false_neighbor_ratio(approx, exact)
        brute_ops = pairwise_operation_count(query_indices.shape[0], n)
        approx_ops = searcher.operation_count(query_indices.shape[0])
        results.append(
            WindowDesignPoint(
                window=window,
                window_multiplier=window / k,
                false_neighbor_ratio=fnr,
                search_speedup=brute_ops / approx_ops,
            )
        )
    return results


def explore_code_bits(
    points: np.ndarray,
    k: int,
    code_bits_options: Sequence[int] = (12, 18, 24, 32, 48, 63),
    window_multiplier: int = 2,
    query_indices: Optional[np.ndarray] = None,
) -> List[CodeBitsDesignPoint]:
    """Sweep the Morton code width.

    Reproduces the Sec. 6.1.3 finding: FNR falls as the code widens and
    saturates around 32 bits, while memory grows linearly (``N a / 8``).
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if query_indices is None:
        query_indices = np.arange(n)
    query_indices = np.asarray(query_indices)
    exact = knn(points[query_indices], points, k)
    window = min(n, window_multiplier * k)
    results = []
    for code_bits in code_bits_options:
        order = structurize(points, code_bits)
        searcher = MortonNeighborSearch(k, window, code_bits)
        approx = searcher.search(points, query_indices, order)
        results.append(
            CodeBitsDesignPoint(
                code_bits=code_bits,
                bits_per_axis=morton.bits_per_axis(code_bits),
                memory_bytes=morton.code_memory_bytes(n, code_bits),
                false_neighbor_ratio=false_neighbor_ratio(approx, exact),
            )
        )
    return results


def pareto_front(
    points: Sequence[WindowDesignPoint],
) -> List[WindowDesignPoint]:
    """Design points not dominated on (FNR, speedup).

    A point dominates another if it is no worse on both objectives and
    strictly better on at least one (lower FNR, higher speedup).
    """
    front = []
    for p in points:
        dominated = any(
            (
                q.false_neighbor_ratio <= p.false_neighbor_ratio
                and q.search_speedup >= p.search_speedup
                and (
                    q.false_neighbor_ratio < p.false_neighbor_ratio
                    or q.search_speedup > p.search_speedup
                )
            )
            for q in points
        )
        if not dominated:
            front.append(p)
    return front
