"""Reusable scratch buffers for the batched kernel engine.

Steady-state serving runs the same kernel shapes frame after frame, so
re-allocating the multi-megabyte distance blocks of the exact kernels
(and the candidate buffers of the Morton window search) on every batch
is pure overhead.  A :class:`Workspace` is a grow-only pool of named
scratch arrays: the first request for a name allocates, subsequent
requests of the same or smaller size reuse the existing allocation and
return a reshaped view.  The pool also carries the **scratch budget**
that bounds how much transient memory the chunked exact kernels
(:mod:`repro.neighbors.batched`) may materialize at once, instead of
building full ``(N, N)`` distance matrices.

A workspace is *not* thread-safe: give each serving thread its own
instance (the buffers it hands out alias its pool).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: Default transient-memory budget for chunked kernels.  Deliberately
#: small: besides bounding worst-case scratch far below an ``(N, N)``
#: materialization at LiDAR scale, it sizes the tiled distance blocks
#: to stay cache-resident — on the paper-scale suite a 4 MiB tile beats
#: a 64 MiB one by ~25% wall-clock because the argpartition pass reads
#: the block back while it is still hot.
DEFAULT_SCRATCH_BYTES = 4 << 20


class Workspace:
    """A named, grow-only scratch-buffer pool with a chunking budget.

    Args:
        scratch_bytes: transient-memory budget consumed by the chunked
            exact kernels when sizing their tiled distance blocks.

    Attributes:
        hits: requests served from an existing allocation.
        misses: requests that had to (re)allocate.
    """

    def __init__(self, scratch_bytes: int = DEFAULT_SCRATCH_BYTES) -> None:
        if scratch_bytes < 1:
            raise ValueError("scratch_bytes must be positive")
        self.scratch_bytes = int(scratch_bytes)
        self.hits = 0
        self.misses = 0
        self._pool: Dict[str, np.ndarray] = {}

    def buffer(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """An uninitialized scratch array of ``shape``/``dtype``.

        Returns a C-contiguous view into the pooled flat buffer
        registered under ``name`` (contents are garbage — callers must
        fully overwrite it).  The pool only grows: asking for a
        smaller size later reuses the same allocation.
        """
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        existing = self._pool.get(name)
        if (
            existing is None
            or existing.dtype != np.dtype(dtype)
            or existing.size < size
        ):
            existing = np.empty(size, dtype=dtype)
            self._pool[name] = existing
            self.misses += 1
        else:
            self.hits += 1
        return existing[:size].reshape(shape)

    def chunk_rows(self, row_bytes: int, total_rows: int) -> int:
        """Rows of a tiled block that fit the scratch budget.

        Always at least 1 (a single row may exceed the budget; the
        kernels cannot tile below one row), at most ``total_rows``.
        """
        if row_bytes < 1:
            raise ValueError("row_bytes must be positive")
        if total_rows < 1:
            raise ValueError("total_rows must be positive")
        return max(1, min(total_rows, self.scratch_bytes // row_bytes))

    @property
    def bytes_allocated(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._pool.values())

    @property
    def num_buffers(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        """Drop every pooled buffer (hit/miss counters are kept)."""
        self._pool.clear()

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers={self.num_buffers}, "
            f"bytes={self.bytes_allocated}, hits={self.hits}, "
            f"misses={self.misses})"
        )
