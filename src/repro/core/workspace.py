"""Reusable scratch buffers for the batched kernel engine.

Steady-state serving runs the same kernel shapes frame after frame, so
re-allocating the multi-megabyte distance blocks of the exact kernels
(and the candidate buffers of the Morton window search) on every batch
is pure overhead.  A :class:`Workspace` is a grow-only pool of named
scratch arrays: the first request for a name allocates, subsequent
requests of the same or smaller size reuse the existing allocation and
return a reshaped view.  The pool also carries the **scratch budget**
that bounds how much transient memory the chunked exact kernels
(:mod:`repro.neighbors.batched`) may materialize at once, instead of
building full ``(N, N)`` distance matrices.

A workspace is *not* thread-safe — and deliberately not locked: the
views :meth:`Workspace.buffer` hands out alias the pool, so a lock
around ``buffer()`` could not stop two threads from scribbling on the
same scratch array anyway.  The supported concurrency model is
**per-worker ownership**: each serving thread creates (or is handed)
its own instance and may opt in to enforcement with
:meth:`Workspace.claim_owner`, after which use from any other thread
raises :class:`WorkspaceOwnershipError` instead of silently corrupting
a neighbor's scratch space.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np


class WorkspaceOwnershipError(RuntimeError):
    """A claimed workspace was used from a thread that never owned it."""

#: Default transient-memory budget for chunked kernels.  Deliberately
#: small: besides bounding worst-case scratch far below an ``(N, N)``
#: materialization at LiDAR scale, it sizes the tiled distance blocks
#: to stay cache-resident — on the paper-scale suite a 4 MiB tile beats
#: a 64 MiB one by ~25% wall-clock because the argpartition pass reads
#: the block back while it is still hot.
DEFAULT_SCRATCH_BYTES = 4 << 20


class Workspace:
    """A named, grow-only scratch-buffer pool with a chunking budget.

    Args:
        scratch_bytes: transient-memory budget consumed by the chunked
            exact kernels when sizing their tiled distance blocks.

    Attributes:
        hits: requests served from an existing allocation.
        misses: requests that had to (re)allocate.
    """

    def __init__(self, scratch_bytes: int = DEFAULT_SCRATCH_BYTES) -> None:
        if scratch_bytes < 1:
            raise ValueError("scratch_bytes must be positive")
        self.scratch_bytes = int(scratch_bytes)
        self.hits = 0
        self.misses = 0
        self._pool: Dict[str, np.ndarray] = {}
        self._owner: Optional[int] = None
        self._owner_name = ""

    # Ownership (opt-in; see the module docstring) --------------------

    def claim_owner(self) -> "Workspace":
        """Bind this workspace to the calling thread; returns ``self``.

        After claiming, :meth:`buffer` and :meth:`clear` raise
        :class:`WorkspaceOwnershipError` from any other thread.
        Re-claiming from the owning thread is a no-op; stealing a
        claim from another thread is refused.
        """
        thread = threading.current_thread()
        if self._owner is not None and self._owner != thread.ident:
            raise WorkspaceOwnershipError(
                f"workspace already owned by thread "
                f"{self._owner_name!r}; cannot be re-claimed by "
                f"{thread.name!r}"
            )
        self._owner = thread.ident
        self._owner_name = thread.name
        return self

    def release_owner(self) -> None:
        """Drop the ownership claim (only the owner may release)."""
        if self._owner is not None:
            self._assert_owner("release")
        self._owner = None
        self._owner_name = ""

    def _assert_owner(self, action: str) -> None:
        if (
            self._owner is not None
            and self._owner != threading.get_ident()
        ):
            raise WorkspaceOwnershipError(
                f"cannot {action}: workspace is owned by thread "
                f"{self._owner_name!r} but was used from "
                f"{threading.current_thread().name!r}; serving "
                "threads must each use their own workspace"
            )

    def buffer(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.float64,
    ) -> np.ndarray:
        """An uninitialized scratch array of ``shape``/``dtype``.

        Returns a C-contiguous view into the pooled flat buffer
        registered under ``name`` (contents are garbage — callers must
        fully overwrite it).  The pool only grows: asking for a
        smaller size later reuses the same allocation.
        """
        self._assert_owner("hand out a buffer")
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        existing = self._pool.get(name)
        if (
            existing is None
            or existing.dtype != np.dtype(dtype)
            or existing.size < size
        ):
            existing = np.empty(size, dtype=dtype)
            self._pool[name] = existing
            self.misses += 1
        else:
            self.hits += 1
        return existing[:size].reshape(shape)

    def chunk_rows(self, row_bytes: int, total_rows: int) -> int:
        """Rows of a tiled block that fit the scratch budget.

        Always at least 1 (a single row may exceed the budget; the
        kernels cannot tile below one row), at most ``total_rows``.
        """
        if row_bytes < 1:
            raise ValueError("row_bytes must be positive")
        if total_rows < 1:
            raise ValueError("total_rows must be positive")
        return max(1, min(total_rows, self.scratch_bytes // row_bytes))

    @property
    def bytes_allocated(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(buf.nbytes for buf in self._pool.values())

    @property
    def num_buffers(self) -> int:
        return len(self._pool)

    def clear(self) -> None:
        """Drop every pooled buffer (hit/miss counters are kept)."""
        self._assert_owner("clear the pool")
        self._pool.clear()

    def __repr__(self) -> str:
        return (
            f"Workspace(buffers={self.num_buffers}, "
            f"bytes={self.bytes_allocated}, hits={self.hits}, "
            f"misses={self.misses})"
        )
