"""Streaming Morton-order maintenance across frames.

The paper's motivating applications (AR/VR, autonomous driving,
Sec. 2.1.1) process *streams* of point-cloud frames.  Re-structurizing
every frame from scratch repeats the full sort; when consecutive
frames overlap heavily (a scanner panning a scene), it is cheaper to
*maintain* the order: encode only the new points and merge them into
the standing sorted sequence (``O(new log new + N)`` instead of
``O(N log N)``), and drop departed points with a mask.

:class:`StreamingMortonOrder` implements that maintenance over a fixed
scene-level grid (codes must be comparable across frames, so the
bounding box is supplied up front, exactly as
:class:`~repro.core.sampler.MortonSampler` supports).
"""

from __future__ import annotations

import numpy as np

from typing import Optional

from repro.core import morton
from repro.core.structurize import MortonOrder
from repro.geometry.bbox import BoundingBox
from repro.geometry.voxel import VoxelGrid
from repro.observability.metrics import MetricsRegistry
from repro.robustness.validate import (
    CloudValidationError,
    ValidationPolicy,
    sanitize_cloud,
)


class StreamingMortonOrder:
    """Maintains a Morton-sorted point set across insertions/removals.

    Args:
        bounding_box: the fixed scene-level quantization domain.
        code_bits: Morton code width.
        validation: sanitization policy applied to every insertion.
            The default rejects non-finite points (a NaN would poison
            its Morton code and break the sorted invariant for every
            later merge) but accepts out-of-box points, which quantize
            to the scene-boundary voxels exactly as before.  Pass a
            policy with ``bounding_box`` set (usually the scene box)
            to drop (``repair``) or clip (``clamp``) strays instead.
        metrics: optional
            :class:`~repro.observability.metrics.MetricsRegistry`;
            when given, inserts, insert/evict point counts,
            maintenance ops, and the current size/scratch-resort cost
            are kept as ``streaming_*`` counters and gauges.

    The object stores points in sorted order internally;
    :attr:`points` exposes them, and :meth:`as_order` materializes a
    standard :class:`MortonOrder` view for the samplers/searchers.
    """

    def __init__(
        self,
        bounding_box: BoundingBox,
        code_bits: int = morton.DEFAULT_CODE_BITS,
        validation: Optional[ValidationPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        per_axis = morton.bits_per_axis(code_bits)
        self.code_bits = code_bits
        self.validation = validation or ValidationPolicy()
        self.metrics = metrics
        self.grid = VoxelGrid.for_box(bounding_box, per_axis)
        self._points = np.empty((0, 3), dtype=np.float64)
        self._codes = np.empty(0, dtype=np.int64)
        #: Sanitization report of the most recent insert (None before
        #: the first one).
        self.last_report = None
        #: Sort work performed so far, in merge-equivalent element ops
        #: (for comparing against from-scratch re-sorts).
        self.maintenance_ops = 0

    def _update_gauges(self) -> None:
        registry = self.metrics
        if registry is None:
            return
        registry.gauge("streaming_points").set(len(self))
        registry.gauge("streaming_scratch_resort_ops").set(
            self.scratch_resort_ops()
        )

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def __len__(self) -> int:
        return self._points.shape[0]

    @property
    def points(self) -> np.ndarray:
        """The current ``(N, 3)`` float64 point set, in Morton order
        (read-only view)."""
        return self._points

    @property
    def codes(self) -> np.ndarray:
        """The matching ``(N,)`` int64 Morton codes, ascending."""
        return self._codes

    def insert(self, new_points: np.ndarray) -> None:
        """Merge new points into the standing order.

        Cost: sorting the new block plus one linear merge — cheaper
        than re-sorting everything when ``len(new) << len(self)``.
        """
        new_points = np.asarray(new_points, dtype=np.float64)
        if new_points.ndim != 2 or new_points.shape[1] != 3:
            raise ValueError(
                f"expected (M, 3) points, got {new_points.shape}"
            )
        if new_points.shape[0] == 0:
            return
        offered = new_points.shape[0]
        try:
            new_points, self.last_report = sanitize_cloud(
                new_points, self.validation
            )
        except CloudValidationError as err:
            if (
                self.validation.on_invalid == "repair"
                and err.report.n_output == 0
            ):
                # Repair discarded the whole frame (e.g. every point
                # was a stray outside the scene box): a no-op insert,
                # not an error.
                self.last_report = err.report
                self._count("streaming_points_dropped_total", offered)
                return
            raise
        if new_points.shape[0] == 0:
            self._count("streaming_points_dropped_total", offered)
            return
        new_codes = morton.encode(self.grid.voxelize(new_points))
        block_order = np.argsort(new_codes, kind="stable")
        new_codes = new_codes[block_order]
        new_points = new_points[block_order]
        positions = np.searchsorted(
            self._codes, new_codes, side="right"
        )
        self._codes = np.insert(self._codes, positions, new_codes)
        self._points = np.insert(
            self._points, positions, new_points, axis=0
        )
        m = new_points.shape[0]
        merge_ops = int(m * max(1, np.log2(max(m, 2))) + len(self))
        self.maintenance_ops += merge_ops
        self._count("streaming_inserts_total")
        self._count("streaming_points_inserted_total", m)
        self._count("streaming_points_dropped_total", offered - m)
        self._count("streaming_maintenance_ops_total", merge_ops)
        self._update_gauges()

    def remove_outside(self, box: BoundingBox) -> int:
        """Drop points outside ``box`` (scene scrolling); returns the
        number removed.  Order is preserved (mask keeps sortedness)."""
        keep = box.contains(self._points)
        removed = int((~keep).sum())
        if removed:
            self._points = self._points[keep]
            self._codes = self._codes[keep]
            self.maintenance_ops += len(keep)
            self._count("streaming_evictions_total", removed)
            self._count("streaming_maintenance_ops_total", len(keep))
            self._update_gauges()
        return removed

    def remove_oldest_duplicates(self) -> int:
        """Keep only the most recent point per occupied voxel — a
        simple stream-compaction policy bounding memory on long scans.
        Returns the number removed."""
        if len(self) == 0:
            return 0
        # Later insertions land after earlier equal codes
        # (side="right"), so keeping each run's last entry keeps the
        # newest.
        last_of_run = np.append(np.diff(self._codes) != 0, True)
        removed = int((~last_of_run).sum())
        if removed:
            self._points = self._points[last_of_run]
            self._codes = self._codes[last_of_run]
            self.maintenance_ops += len(last_of_run)
            self._count("streaming_evictions_total", removed)
            self._count(
                "streaming_maintenance_ops_total", len(last_of_run)
            )
            self._update_gauges()
        return removed

    def as_order(self) -> MortonOrder:
        """A standard :class:`MortonOrder` over the current points.

        The internal storage *is* sorted, so the permutation is the
        identity — downstream samplers/searchers work unmodified.
        """
        n = len(self)
        if n == 0:
            raise ValueError("stream holds no points")
        identity = np.arange(n, dtype=np.int64)
        return MortonOrder(
            codes=self._codes.copy(),
            permutation=identity,
            ranks=identity.copy(),
            grid=self.grid,
            code_bits=self.code_bits,
        )

    def scratch_resort_ops(self) -> int:
        """Element ops a from-scratch re-sort of the current set would
        cost (``N log N``) — the baseline for maintenance_ops."""
        n = len(self)
        if n == 0:
            return 0
        return int(n * max(1, np.ceil(np.log2(n))))
