"""Sorting kernels for Morton codes.

Algorithm 1's line 10 is a sort of the generated codes.  On the GPU
the reference implementation uses a radix/merge sort; here we provide
a from-scratch **LSD radix argsort** specialized for non-negative
64-bit keys, each digit pass fully vectorized as one stable NumPy
scatter — the closest CPU analog of the GPU kernel, and the component
the cost model prices as ``morton_sort``.

``radix_argsort`` is stable (equal keys keep input order), matching
the determinism guarantee :func:`repro.core.structurize.structurize`
documents.
"""

from __future__ import annotations

import numpy as np

#: Radix digit width; 8 bits = 256 buckets per pass, 8 passes for the
#: 63 usable bits of a Morton code.
DIGIT_BITS = 8
_NUM_BUCKETS = 1 << DIGIT_BITS
_MASK = _NUM_BUCKETS - 1


def radix_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort of non-negative int64 keys via LSD radix passes.

    Passes over digits the keys do not use are skipped (a cloud whose
    codes fit 32 bits pays 4 passes, not 8).

    Returns:
        ``(N,)`` int64 index array; ``keys[result]`` is sorted and
        equal keys keep their input order.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("keys must be a 1-D array")
    if not np.issubdtype(keys.dtype, np.integer):
        raise TypeError("keys must be integers")
    if keys.size == 0:
        return np.empty(0, dtype=np.int64)
    if keys.min() < 0:
        raise ValueError("keys must be non-negative")
    keys = keys.astype(np.int64)
    order = np.arange(keys.size, dtype=np.int64)
    significant_bits = int(keys.max()).bit_length()
    num_passes = max(
        1, (significant_bits + DIGIT_BITS - 1) // DIGIT_BITS
    )
    current = keys
    for pass_index in range(num_passes):
        digits = (current >> (DIGIT_BITS * pass_index)) & _MASK
        # Counting-sort scatter, vectorized: a stable argsort of the
        # 256-valued digit array places every key at exactly the slot
        # the bucket-offset scatter would (equal digits keep input
        # order, buckets come out in ascending digit order).  One
        # NumPy dispatch per pass instead of a Python loop over
        # occupied buckets.
        perm = np.argsort(digits, kind="stable")
        order = order[perm]
        current = current[perm]
    return order


def radix_sort(keys: np.ndarray) -> np.ndarray:
    """Sorted ``(N,)`` copy of the integer keys, original dtype
    preserved (via :func:`radix_argsort`)."""
    keys = np.asarray(keys)
    return keys[radix_argsort(keys)]


def sort_operation_count(num_keys: int, key_bits: int = 63) -> int:
    """Digit-scatter operations the radix sort performs: one pass per
    ``DIGIT_BITS`` of key width, each touching every key once.  (The
    cost model instead prices sorts as ``N log N`` with a latency
    floor, which matches the *comparison* merge sort the paper names;
    this count is exposed for the radix alternative.)"""
    if num_keys < 0:
        raise ValueError("num_keys must be non-negative")
    if key_bits < 1:
        raise ValueError("key_bits must be positive")
    passes = (key_bits + DIGIT_BITS - 1) // DIGIT_BITS
    return num_keys * passes
