"""Neighbor-search quality metrics, chiefly the false neighbor ratio.

The false neighbor ratio (FNR, paper Fig. 6) is the fraction of
neighbors returned by an approximate searcher that the exact (SOTA)
searcher would not return.  The paper reports FNR as low as 23% at
``W = k`` and about 5% with enlarged windows (Fig. 15a).
"""

from __future__ import annotations

import numpy as np


def false_neighbor_ratio(
    approx_neighbors: np.ndarray, exact_neighbors: np.ndarray
) -> float:
    """Fraction of approximate neighbors absent from the exact set.

    Both arguments are ``(Q, k)`` index matrices.  Rows are compared as
    sets (the order in which neighbors are listed does not matter to the
    downstream max-pooled feature aggregation), and duplicate padding in
    either row is counted once.
    """
    approx_neighbors = np.asarray(approx_neighbors)
    exact_neighbors = np.asarray(exact_neighbors)
    if approx_neighbors.shape != exact_neighbors.shape:
        raise ValueError(
            "approximate and exact neighbor matrices must have equal shape"
        )
    if approx_neighbors.ndim != 2:
        raise ValueError("neighbor matrices must be (Q, k)")
    false_count = 0
    total = 0
    for approx_row, exact_row in zip(approx_neighbors, exact_neighbors):
        approx_set = set(approx_row.tolist())
        exact_set = set(exact_row.tolist())
        total += len(approx_set)
        false_count += len(approx_set - exact_set)
    if total == 0:
        return 0.0
    return false_count / total


def recall(
    approx_neighbors: np.ndarray, exact_neighbors: np.ndarray
) -> float:
    """Fraction of exact neighbors that the approximation recovered."""
    approx_neighbors = np.asarray(approx_neighbors)
    exact_neighbors = np.asarray(exact_neighbors)
    if approx_neighbors.shape[0] != exact_neighbors.shape[0]:
        raise ValueError("row counts must match")
    hit = 0
    total = 0
    for approx_row, exact_row in zip(approx_neighbors, exact_neighbors):
        approx_set = set(approx_row.tolist())
        exact_set = set(exact_row.tolist())
        total += len(exact_set)
        hit += len(exact_set & approx_set)
    if total == 0:
        return 1.0
    return hit / total


def mean_neighbor_distance(
    points: np.ndarray, queries: np.ndarray, neighbors: np.ndarray
) -> float:
    """Average geometric distance from each query to its listed
    neighbors — a set-free quality signal (smaller is tighter)."""
    points = np.asarray(points, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    neighbors = np.asarray(neighbors)
    gathered = points[neighbors]  # (Q, k, 3)
    d = np.linalg.norm(gathered - queries[:, None, :], axis=2)
    return float(d.mean())
