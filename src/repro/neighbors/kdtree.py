"""A from-scratch k-d tree for exact nearest-neighbor queries.

This is the ``O(N log N)`` alternative the paper's footnote 1 mentions:
lower asymptotic complexity than brute force, but with serial tree
construction and branchy traversal — the irregular-memory-access problem
Crescent (the paper's [17]) attacks by splitting the tree.  We implement
it both as an exactness oracle for tests and as the substrate for the
:mod:`repro.baselines.crescent` comparison model.

The tree is stored in flat arrays (node split axis/value, child links,
point index) rather than Python objects, keeping construction and
traversal reasonably fast in pure NumPy/Python.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

import numpy as np


class KDTree:
    """A balanced median-split k-d tree over ``(N, 3)`` points."""

    __slots__ = (
        "points",
        "_axis",
        "_split",
        "_left",
        "_right",
        "_point_index",
        "depth",
        "_next_node",
    )

    def __init__(self, points: np.ndarray, leaf_size: int = 1) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if points.shape[0] == 0:
            raise ValueError("cannot build a tree over no points")
        if leaf_size != 1:
            raise ValueError("only leaf_size=1 trees are supported")
        self.points = points
        n = points.shape[0]
        # One node per point (median point stored at the node).
        self._axis = np.zeros(n, dtype=np.int8)
        self._split = np.zeros(n, dtype=np.float64)
        self._left = np.full(n, -1, dtype=np.int64)
        self._right = np.full(n, -1, dtype=np.int64)
        self._point_index = np.zeros(n, dtype=np.int64)
        self.depth = 0
        self._next_node = 0
        self._build(np.arange(n), 0)
        del self._next_node

    # Building ---------------------------------------------------------

    def _allocate(self) -> int:
        node = self._next_node
        self._next_node += 1
        return node

    def _build(self, indices: np.ndarray, depth: int) -> int:
        """Recursively build; returns the node id of the subtree root."""
        self.depth = max(self.depth, depth)
        axis = depth % 3
        order = np.argsort(self.points[indices, axis], kind="stable")
        indices = indices[order]
        median = indices.shape[0] // 2
        node = self._allocate()
        self._axis[node] = axis
        self._point_index[node] = indices[median]
        self._split[node] = self.points[indices[median], axis]
        if median > 0:
            self._left[node] = self._build(indices[:median], depth + 1)
        if median + 1 < indices.shape[0]:
            self._right[node] = self._build(indices[median + 1 :], depth + 1)
        return node

    # Queries ----------------------------------------------------------

    def query(self, point: np.ndarray, k: int = 1) -> np.ndarray:
        """Indices of the ``k`` nearest stored points: a ``(k,)``
        int64 array, ascending distance."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (3,):
            raise ValueError("query point must be a 3-vector")
        if not 1 <= k <= self.points.shape[0]:
            raise ValueError("k out of range")
        # Max-heap of (-distance2, point index), kept at size k.
        heap: List[Tuple[float, int]] = []
        self._search(0, point, k, heap)
        ordered = sorted(heap, key=lambda item: -item[0])
        return np.array([idx for _, idx in ordered], dtype=np.int64)

    def query_batch(self, queries: np.ndarray, k: int = 1) -> np.ndarray:
        """Vector of :meth:`query` calls; returns ``(Q, k)`` int64
        indices."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.stack([self.query(q, k) for q in queries])

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """All stored indices within ``radius`` of ``point``: a 1-D
        int64 array in ascending index order."""
        point = np.asarray(point, dtype=np.float64)
        if radius <= 0:
            raise ValueError("radius must be positive")
        found: List[int] = []
        self._search_radius(0, point, radius * radius, found)
        return np.array(sorted(found), dtype=np.int64)

    def _search(
        self,
        node: int,
        point: np.ndarray,
        k: int,
        heap: List[Tuple[float, int]],
    ) -> None:
        if node < 0:
            return
        idx = self._point_index[node]
        d2 = float(np.sum((self.points[idx] - point) ** 2))
        if len(heap) < k:
            heapq.heappush(heap, (-d2, int(idx)))
        elif d2 < -heap[0][0]:
            heapq.heapreplace(heap, (-d2, int(idx)))
        axis = self._axis[node]
        delta = float(point[axis] - self._split[node])
        near, far = (
            (self._left[node], self._right[node])
            if delta <= 0
            else (self._right[node], self._left[node])
        )
        self._search(near, point, k, heap)
        if len(heap) < k or delta * delta < -heap[0][0]:
            self._search(far, point, k, heap)

    def _search_radius(
        self, node: int, point: np.ndarray, r2: float, found: List[int]
    ) -> None:
        if node < 0:
            return
        idx = self._point_index[node]
        if float(np.sum((self.points[idx] - point) ** 2)) <= r2:
            found.append(int(idx))
        axis = self._axis[node]
        delta = float(point[axis] - self._split[node])
        near, far = (
            (self._left[node], self._right[node])
            if delta <= 0
            else (self._right[node], self._left[node])
        )
        self._search_radius(near, point, r2, found)
        if delta * delta <= r2:
            self._search_radius(far, point, r2, found)
