"""Batched, memory-bounded exact neighbor search.

The brute-force baselines in :mod:`repro.neighbors.brute` scan the full
candidate set per query; a batched model forward that loops them per
cloud pays one Python-level dispatch per cloud *and* risks
materializing per-cloud ``(Q, N)`` distance blocks back to back.  The
kernels here make the batch axis an ordinary vectorized dimension and
tile the query axis so the transient distance block never exceeds a
configurable scratch budget (:class:`~repro.core.workspace.Workspace`),
instead of building ``(B, Q, N)`` — or worse, ``(N, N)`` — matrices.

Both kernels are **bit-identical** to looping their per-cloud
counterparts over the batch: the distance expression keeps the exact
per-element accumulation order (the inner dimension is a single GEMM
panel), and selection runs per 1-D lane.  The per-cloud functions in
:mod:`repro.neighbors.brute` are thin ``B=1`` wrappers over these.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.workspace import Workspace
from repro.neighbors.grid import (
    GridQueryStats,
    UniformGridIndex,
    canonical_top_k,
    suggest_cell_size,
)


def _validate_batch(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    queries = np.asarray(queries, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if queries.ndim != 3 or candidates.ndim != 3:
        raise ValueError("queries and candidates must be 3-D arrays")
    if queries.shape[0] != candidates.shape[0]:
        raise ValueError("batch size mismatch")
    if queries.shape[2] != candidates.shape[2]:
        raise ValueError("dimensionality mismatch")
    if not 1 <= k <= candidates.shape[1]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[1]}], got {k}"
        )
    return queries, candidates


def _distance_chunks(
    queries: np.ndarray,
    candidates: np.ndarray,
    workspace: Workspace,
    extra_row_bytes: int = 0,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(lo, d2_block)`` tiles of the ``(B, Q, N)`` distance
    tensor, sized so each tile fits the workspace scratch budget.

    ``extra_row_bytes`` accounts for per-query-row scratch the caller
    allocates on top of the distance block itself (e.g. selection
    index arrays), so the budget covers the kernel's true peak.

    The block is a reused workspace buffer — consumers must finish
    with one tile before requesting the next.
    """
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    c_sq = np.sum(candidates**2, axis=2)  # (B, N)
    cand_t = candidates.transpose(0, 2, 1)  # (B, D, N) view
    # Per query row: the float64 distance block plus the caller's
    # selection scratch, both spanning all B * N candidates.
    row_bytes = num_clouds * num_candidates * 8 + extra_row_bytes
    chunk = workspace.chunk_rows(row_bytes, num_queries)
    for lo in range(0, num_queries, chunk):
        block = queries[:, lo : lo + chunk]
        rows = block.shape[1]
        q_sq = np.sum(block**2, axis=2)  # (B, rows)
        d2 = workspace.buffer(
            "exact.d2", (num_clouds, rows, num_candidates)
        )
        np.matmul(block, cand_t, out=d2)
        # In-place ((q_sq - 2 m) + c_sq): bit-identical to the
        # per-cloud expression — IEEE addition is commutative and the
        # sign flip of 2*m is exact.
        d2 *= -2.0
        d2 += q_sq[:, :, None]
        d2 += c_sq[:, None, :]
        np.maximum(d2, 0.0, out=d2)
        yield lo, d2


def knn_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    k: int,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Exact k-nearest neighbors over a batch, tiled to a scratch
    budget.

    Works in any dimensionality — DGCNN's later EdgeConv modules run
    kNN in feature space (paper Sec. 5.2.3), not just on xyz.

    Args:
        queries: ``(B, Q, D)`` query points.
        candidates: ``(B, N, D)`` candidate points.
        k: neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.

    Returns:
        ``(B, Q, k)`` int64 candidate indices in the canonical
        ``(distance, candidate index)`` order of
        :func:`repro.neighbors.grid.canonical_top_k`, bit-identical to
        looping :func:`repro.neighbors.brute.knn` per cloud.
    """
    queries, candidates = _validate_batch(queries, candidates, k)
    workspace = workspace or Workspace()
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    # argpartition materializes a full-width int64 index block.
    extra = num_clouds * num_candidates * 8
    for lo, d2 in _distance_chunks(queries, candidates, workspace, extra):
        out[:, lo : lo + d2.shape[1]] = canonical_top_k(d2, k)
    return out


def ball_query_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    k: int,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Fixed-width ball query over a batch, tiled to a scratch budget.

    Follows the PointNet++ SA-module convention: up to ``k`` candidate
    indices with distance ``<= radius`` per query, in candidate-scan
    order; short rows are padded by repeating the first in-radius hit
    (or the nearest candidate if the ball is empty).

    Args:
        queries: ``(B, Q, D)`` query points.
        candidates: ``(B, N, D)`` candidate points.
        radius: ball radius (``> 0``).
        k: maximum neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.

    Returns:
        ``(B, Q, k)`` int64 candidate indices, bit-identical to
        looping :func:`repro.neighbors.brute.ball_query` per cloud.
    """
    queries, candidates = _validate_batch(queries, candidates, k)
    if radius <= 0:
        raise ValueError("radius must be positive")
    workspace = workspace or Workspace()
    r2 = radius * radius
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    pad_width = np.arange(k)
    # The inside mask (bool) plus the stable argsort over it (int64).
    extra = num_clouds * num_candidates * 9
    for lo, d2 in _distance_chunks(queries, candidates, workspace, extra):
        inside = d2 <= r2
        counts = inside.sum(axis=2)  # (B, rows)
        # Stable argsort of the negated mask lists in-radius hits in
        # candidate-scan order, then the misses — so the first
        # min(count, k) slots are exactly the scan-order hits.
        first = np.argsort(~inside, axis=2, kind="stable")[:, :, :k]
        padded = np.where(
            pad_width < counts[:, :, None], first, first[:, :, :1]
        )
        nearest = np.argmin(d2, axis=2)  # (B, rows)
        out[:, lo : lo + d2.shape[1]] = np.where(
            counts[:, :, None] > 0, padded, nearest[:, :, None]
        )
    return out


def _validate_grid_batch(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    queries, candidates = _validate_batch(queries, candidates, k)
    if queries.shape[2] != 3:
        raise ValueError(
            "grid kernels index Euclidean xyz space; expected "
            f"(B, Q, 3) queries, got {queries.shape}"
        )
    return queries, candidates


def knn_grid_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    k: int,
    workspace: Optional[Workspace] = None,
    cell_size: Optional[float] = None,
    stats: Optional[GridQueryStats] = None,
) -> np.ndarray:
    """Exact k-nearest neighbors via a uniform-grid cell list.

    The large-N exact engine: bins each cloud's candidates into a
    sparse cell list and probes expanding cell rings per query
    (:meth:`repro.neighbors.grid.UniformGridIndex.query_knn_batch`),
    so the scan touches ``O(k)`` candidates per query instead of all
    ``N`` and the transient scratch stays inside the workspace budget
    — no ``(Q, N)`` block is ever materialized.  xyz-space only
    (``D == 3``); feature-space kNN keeps :func:`knn_batch`.

    Matches :func:`knn_batch` row for row — including exact distance
    ties, which both engines break by ascending candidate index.
    (Candidates whose distances are *computed* differently by the two
    engines' accumulation orders can differ only when two true
    distances land within one rounding step of each other.)

    Args:
        queries: ``(B, Q, 3)`` query points.
        candidates: ``(B, N, 3)`` candidate points.
        k: neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.
        cell_size: grid cell side; auto-sized per cloud via
            :func:`repro.neighbors.grid.suggest_cell_size` when
            omitted.
        stats: optional :class:`~repro.neighbors.grid.GridQueryStats`
            scan accounting, accumulated across the batch.

    Returns:
        ``(B, Q, k)`` int64 candidate indices in canonical
        ``(distance, index)`` order per row.
    """
    queries, candidates = _validate_grid_batch(queries, candidates, k)
    workspace = workspace or Workspace()
    num_clouds, num_queries, _ = queries.shape
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    for b in range(num_clouds):
        cell = (
            cell_size
            if cell_size is not None
            else suggest_cell_size(candidates[b], k)
        )
        index = UniformGridIndex(candidates[b], cell)
        out[b] = index.query_knn_batch(
            queries[b], k, workspace=workspace, stats=stats
        )
    return out


def ball_query_grid_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    k: int,
    workspace: Optional[Workspace] = None,
    cell_size: Optional[float] = None,
    stats: Optional[GridQueryStats] = None,
) -> np.ndarray:
    """Fixed-width ball query via a uniform-grid cell list.

    Grid counterpart of :func:`ball_query_batch` with identical
    output semantics: up to ``k`` in-radius candidate indices per
    query in candidate-scan (ascending index) order, short rows padded
    with the first hit, empty balls filled with the nearest candidate.
    Only the cells overlapping each query's radius are scanned, tiled
    through the workspace scratch pool.

    Args:
        queries: ``(B, Q, 3)`` query points.
        candidates: ``(B, N, 3)`` candidate points.
        radius: ball radius (``> 0``).
        k: maximum neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.
        cell_size: grid cell side; defaults to ``radius`` so one ring
            of cells covers the ball.
        stats: optional :class:`~repro.neighbors.grid.GridQueryStats`
            scan accounting, accumulated across the batch.

    Returns:
        ``(B, Q, k)`` int64 candidate indices, matching
        :func:`ball_query_batch` (same rounding caveat as
        :func:`knn_grid_batch` for radius-boundary candidates).
    """
    queries, candidates = _validate_grid_batch(queries, candidates, k)
    if radius <= 0:
        raise ValueError("radius must be positive")
    workspace = workspace or Workspace()
    r2 = radius * radius
    num_clouds, num_queries, _ = queries.shape
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    pad_width = np.arange(k)
    for b in range(num_clouds):
        cloud_q = queries[b]
        cloud_c = candidates[b]
        cell = cell_size if cell_size is not None else float(radius)
        index = UniformGridIndex(cloud_c, cell)
        reach = int(np.ceil(radius / index.cell_size))
        q_sq = np.sum(cloud_q[None] ** 2, axis=2)[0]
        base_cells = np.floor(
            (cloud_q - index.origin) / index.cell_size
        ).astype(np.int64)
        starts, ends = index._ring_runs(base_cells, reach)
        if stats is not None:
            stats.num_queries += num_queries
            stats.rounds += 1
            stats.cells_probed += int(starts.shape[0] * starts.shape[1])
        # Order rows by candidate count so padded tiles stay tight
        # (see UniformGridIndex.query_knn_batch).
        row_order = np.argsort(
            (ends - starts).sum(axis=1), kind="stable"
        )
        empties = []
        for lo, ids, d2, _totals in index._score_rows(
            cloud_q[row_order],
            q_sq[row_order],
            starts[row_order],
            ends[row_order],
            workspace,
            stats,
        ):
            inside = d2 <= r2  # pad lanes are +inf -> excluded
            counts = inside.sum(axis=1)
            # Hits first, each group in ascending candidate index —
            # the candidate-scan order of the reference kernel.
            order = np.lexsort((ids, ~inside), axis=-1)[:, :k]
            first = np.take_along_axis(ids, order, axis=-1)
            if first.shape[1] < k:
                # Ring narrower than k slots: the missing columns are
                # beyond every row's hit count and pad like the rest.
                first = np.concatenate(
                    [
                        first,
                        np.broadcast_to(
                            first[:, :1],
                            (first.shape[0], k - first.shape[1]),
                        ),
                    ],
                    axis=1,
                )
            padded = np.where(
                pad_width < counts[:, None], first, first[:, :1]
            )
            # Empty rows get a placeholder; the 1-NN fallback below
            # overwrites them.
            padded = np.where(counts[:, None] > 0, padded, 0)
            out[b, row_order[lo : lo + d2.shape[0]]] = padded
            empty_rows = np.flatnonzero(counts == 0)
            if empty_rows.size:
                empties.append(row_order[lo + empty_rows])
        if empties:
            # Empty balls fall back to the global nearest candidate —
            # a 1-NN query (ties by index, matching np.argmin).
            empty_idx = np.concatenate(empties)
            out[b, empty_idx] = index.query_knn_batch(
                cloud_q[empty_idx], 1, workspace=workspace, stats=stats
            )
    return out
