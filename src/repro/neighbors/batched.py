"""Batched, memory-bounded exact neighbor search.

The brute-force baselines in :mod:`repro.neighbors.brute` scan the full
candidate set per query; a batched model forward that loops them per
cloud pays one Python-level dispatch per cloud *and* risks
materializing per-cloud ``(Q, N)`` distance blocks back to back.  The
kernels here make the batch axis an ordinary vectorized dimension and
tile the query axis so the transient distance block never exceeds a
configurable scratch budget (:class:`~repro.core.workspace.Workspace`),
instead of building ``(B, Q, N)`` — or worse, ``(N, N)`` — matrices.

Both kernels are **bit-identical** to looping their per-cloud
counterparts over the batch: the distance expression keeps the exact
per-element accumulation order (the inner dimension is a single GEMM
panel), and selection runs per 1-D lane.  The per-cloud functions in
:mod:`repro.neighbors.brute` are thin ``B=1`` wrappers over these.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core.workspace import Workspace


def _validate_batch(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    queries = np.asarray(queries, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if queries.ndim != 3 or candidates.ndim != 3:
        raise ValueError("queries and candidates must be 3-D arrays")
    if queries.shape[0] != candidates.shape[0]:
        raise ValueError("batch size mismatch")
    if queries.shape[2] != candidates.shape[2]:
        raise ValueError("dimensionality mismatch")
    if not 1 <= k <= candidates.shape[1]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[1]}], got {k}"
        )
    return queries, candidates


def _distance_chunks(
    queries: np.ndarray,
    candidates: np.ndarray,
    workspace: Workspace,
    extra_row_bytes: int = 0,
) -> Iterator[Tuple[int, np.ndarray]]:
    """Yield ``(lo, d2_block)`` tiles of the ``(B, Q, N)`` distance
    tensor, sized so each tile fits the workspace scratch budget.

    ``extra_row_bytes`` accounts for per-query-row scratch the caller
    allocates on top of the distance block itself (e.g. selection
    index arrays), so the budget covers the kernel's true peak.

    The block is a reused workspace buffer — consumers must finish
    with one tile before requesting the next.
    """
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    c_sq = np.sum(candidates**2, axis=2)  # (B, N)
    cand_t = candidates.transpose(0, 2, 1)  # (B, D, N) view
    # Per query row: the float64 distance block plus the caller's
    # selection scratch, both spanning all B * N candidates.
    row_bytes = num_clouds * num_candidates * 8 + extra_row_bytes
    chunk = workspace.chunk_rows(row_bytes, num_queries)
    for lo in range(0, num_queries, chunk):
        block = queries[:, lo : lo + chunk]
        rows = block.shape[1]
        q_sq = np.sum(block**2, axis=2)  # (B, rows)
        d2 = workspace.buffer(
            "exact.d2", (num_clouds, rows, num_candidates)
        )
        np.matmul(block, cand_t, out=d2)
        # In-place ((q_sq - 2 m) + c_sq): bit-identical to the
        # per-cloud expression — IEEE addition is commutative and the
        # sign flip of 2*m is exact.
        d2 *= -2.0
        d2 += q_sq[:, :, None]
        d2 += c_sq[:, None, :]
        np.maximum(d2, 0.0, out=d2)
        yield lo, d2


def knn_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    k: int,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Exact k-nearest neighbors over a batch, tiled to a scratch
    budget.

    Works in any dimensionality — DGCNN's later EdgeConv modules run
    kNN in feature space (paper Sec. 5.2.3), not just on xyz.

    Args:
        queries: ``(B, Q, D)`` query points.
        candidates: ``(B, N, D)`` candidate points.
        k: neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.

    Returns:
        ``(B, Q, k)`` int64 candidate indices sorted by ascending
        distance, bit-identical to looping
        :func:`repro.neighbors.brute.knn` per cloud.
    """
    queries, candidates = _validate_batch(queries, candidates, k)
    workspace = workspace or Workspace()
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    # argpartition materializes a full-width int64 index block.
    extra = num_clouds * num_candidates * 8
    for lo, d2 in _distance_chunks(queries, candidates, workspace, extra):
        if k < num_candidates:
            part = np.argpartition(d2, k - 1, axis=2)[:, :, :k]
        else:
            part = np.broadcast_to(
                np.arange(num_candidates), d2.shape
            ).copy()
        order = np.argsort(
            np.take_along_axis(d2, part, axis=2), axis=2, kind="stable"
        )
        out[:, lo : lo + d2.shape[1]] = np.take_along_axis(
            part, order, axis=2
        )
    return out


def ball_query_batch(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    k: int,
    workspace: Optional[Workspace] = None,
) -> np.ndarray:
    """Fixed-width ball query over a batch, tiled to a scratch budget.

    Follows the PointNet++ SA-module convention: up to ``k`` candidate
    indices with distance ``<= radius`` per query, in candidate-scan
    order; short rows are padded by repeating the first in-radius hit
    (or the nearest candidate if the ball is empty).

    Args:
        queries: ``(B, Q, D)`` query points.
        candidates: ``(B, N, D)`` candidate points.
        radius: ball radius (``> 0``).
        k: maximum neighbors per query (``1 <= k <= N``).
        workspace: scratch pool carrying the tiling budget; a fresh
            default-budget :class:`Workspace` when omitted.

    Returns:
        ``(B, Q, k)`` int64 candidate indices, bit-identical to
        looping :func:`repro.neighbors.brute.ball_query` per cloud.
    """
    queries, candidates = _validate_batch(queries, candidates, k)
    if radius <= 0:
        raise ValueError("radius must be positive")
    workspace = workspace or Workspace()
    r2 = radius * radius
    num_clouds, num_queries, _ = queries.shape
    num_candidates = candidates.shape[1]
    out = np.empty((num_clouds, num_queries, k), dtype=np.int64)
    pad_width = np.arange(k)
    # The inside mask (bool) plus the stable argsort over it (int64).
    extra = num_clouds * num_candidates * 9
    for lo, d2 in _distance_chunks(queries, candidates, workspace, extra):
        inside = d2 <= r2
        counts = inside.sum(axis=2)  # (B, rows)
        # Stable argsort of the negated mask lists in-radius hits in
        # candidate-scan order, then the misses — so the first
        # min(count, k) slots are exactly the scan-order hits.
        first = np.argsort(~inside, axis=2, kind="stable")[:, :, :k]
        padded = np.where(
            pad_width < counts[:, :, None], first, first[:, :, :1]
        )
        nearest = np.argmin(d2, axis=2)  # (B, rows)
        out[:, lo : lo + d2.shape[1]] = np.where(
            counts[:, :, None] > 0, padded, nearest[:, :, None]
        )
    return out
