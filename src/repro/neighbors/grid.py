"""Uniform-grid (cell list) neighbor search.

The grid-based strategy the paper's related work discusses ([22, 26, 39,
50] in Sec. 3.2): hash points into cubic cells of side ``cell_size``,
then answer fixed-radius queries by scanning only the 27 cells around
the query.  Exact for ``radius <= cell_size``; used as a second exact
oracle and as a fast generator of ground-truth neighbor sets on large
clouds where brute force is slow.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np


class UniformGridIndex:
    """A cell-list index over ``(N, 3)`` points."""

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.origin = points.min(axis=0)
        cells = np.floor((points - self.origin) / self.cell_size).astype(
            np.int64
        )
        self._cells: Dict[Tuple[int, int, int], List[int]] = {}
        for i, cell in enumerate(map(tuple, cells)):
            self._cells.setdefault(cell, []).append(i)

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def num_occupied_cells(self) -> int:
        return len(self._cells)

    def _candidates(self, point: np.ndarray, reach: int) -> np.ndarray:
        base = np.floor((point - self.origin) / self.cell_size).astype(
            np.int64
        )
        found: List[int] = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                for dz in range(-reach, reach + 1):
                    cell = (base[0] + dx, base[1] + dy, base[2] + dz)
                    found.extend(self._cells.get(cell, ()))
        return np.array(found, dtype=np.int64)

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """All indices within ``radius`` of ``point`` (sorted)."""
        point = np.asarray(point, dtype=np.float64)
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        candidates = self._candidates(point, reach)
        if candidates.size == 0:
            return candidates
        d2 = np.sum((self.points[candidates] - point) ** 2, axis=1)
        return np.sort(candidates[d2 <= radius * radius])

    def query_knn(self, point: np.ndarray, k: int) -> np.ndarray:
        """k nearest indices, expanding the cell reach until enough
        candidates are *provably* inside the searched shell."""
        point = np.asarray(point, dtype=np.float64)
        if not 1 <= k <= len(self):
            raise ValueError("k out of range")
        reach = 1
        while True:
            candidates = self._candidates(point, reach)
            if candidates.size >= k:
                d2 = np.sum(
                    (self.points[candidates] - point) ** 2, axis=1
                )
                order = np.argsort(d2, kind="stable")[:k]
                # The shell of `reach` cells is guaranteed to contain the
                # true k-NN only if the k-th distance fits inside it.
                safe = (reach * self.cell_size) ** 2
                if d2[order[-1]] <= safe or candidates.size == len(self):
                    return candidates[order]
            if candidates.size == len(self):
                d2 = np.sum(
                    (self.points[candidates] - point) ** 2, axis=1
                )
                return candidates[np.argsort(d2, kind="stable")[:k]]
            reach += 1
