"""Uniform-grid (cell list) neighbor search.

The grid-based strategy the paper's related work discusses ([22, 26, 39,
50] in Sec. 3.2): hash points into cubic cells of side ``cell_size``,
then answer fixed-radius queries by scanning only the cells around the
query.  Exact for ``radius <= cell_size``; used as a second exact
oracle, as a fast generator of ground-truth neighbor sets on large
clouds where brute force is slow, and — through
:meth:`UniformGridIndex.query_knn_batch` — as the large-N exact engine
behind :func:`repro.neighbors.batched.knn_grid_batch`.

The index is a sparse CSR cell list built with one stable argsort: no
dense ``(dx, dy, dz)`` cell array is ever materialized, so degenerate
clouds (outliers, planes) cannot blow up memory, and per-cell candidate
runs keep ascending point order — which the canonical ``(distance,
index)`` tie-break relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.workspace import Workspace


def canonical_top_k(d2: np.ndarray, k: int) -> np.ndarray:
    """Per-row indices of the ``k`` smallest values, canonically
    ordered by ``(value, column index)``.

    This is the exact-kNN tie-break contract every neighbor engine in
    :mod:`repro.neighbors` shares: neighbors sort by ascending
    distance, and equal distances by ascending candidate index — so
    two engines that compute bit-identical distances return
    byte-identical index arrays regardless of how they enumerate
    candidates.

    Args:
        d2: ``(..., N)`` float distance rows.
        k: selection width (``1 <= k <= N``).

    Returns:
        ``(..., k)`` int64 column indices into the last axis.
    """
    n = d2.shape[-1]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        return np.argsort(d2, axis=-1, kind="stable")
    # Hot path: argpartition narrows each row to *some* k smallest,
    # then a (value, column) lexsort orders the selection canonically.
    part = np.argpartition(d2, k - 1, axis=-1)[..., :k]
    pvals = np.take_along_axis(d2, part, axis=-1)
    order = np.lexsort((part, pvals), axis=-1)
    sel = np.take_along_axis(part, order, axis=-1)
    svals = np.take_along_axis(pvals, order, axis=-1)
    # Boundary ties: if more columns share the k-th value than the
    # selection holds, argpartition chose an arbitrary subset of them;
    # re-derive those rare rows from a full stable argsort (stable ==
    # ascending column among equal values == the canonical order).
    kth = svals[..., -1:]
    ambiguous = np.count_nonzero(d2 == kth, axis=-1) > np.count_nonzero(
        svals == kth, axis=-1
    )
    if np.any(ambiguous):
        for idx in zip(*np.nonzero(ambiguous)):
            sel[idx] = np.argsort(d2[idx], kind="stable")[:k]
    return sel


def _canonical_top_k_ids(
    d2: np.ndarray, ids: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-``k`` of padded score rows, ordered by ``(d2, id)``.

    The ragged-row variant of :func:`canonical_top_k`: each ``(m,
    width)`` row carries explicit candidate ids (pad lanes hold
    ``+inf`` distances and an out-of-range id), and ties break on the
    *id*, not the column — gathered runs interleave cells, so column
    order is meaningless.

    Returns:
        ``(sel_ids, kth_d2)``: ``(m, k)`` int64 ids in canonical order
        and the ``(m,)`` k-th distances.
    """
    width = d2.shape[1]
    if width <= k:
        order = np.lexsort((ids, d2), axis=-1)
        sids = np.take_along_axis(ids, order, axis=-1)
        kth = np.take_along_axis(d2, order[:, -1:], axis=-1)[:, 0]
        return sids, kth
    part = np.argpartition(d2, k - 1, axis=1)[:, :k]
    pvals = np.take_along_axis(d2, part, axis=1)
    pids = np.take_along_axis(ids, part, axis=1)
    order = np.lexsort((pids, pvals), axis=-1)
    svals = np.take_along_axis(pvals, order, axis=1)
    sids = np.take_along_axis(pids, order, axis=1)
    # Boundary ties: argpartition may have chosen an arbitrary subset
    # of the candidates sharing the k-th distance; repair those rare
    # rows with a full-row canonical sort.
    kth = svals[:, -1:]
    ambiguous = np.count_nonzero(d2 == kth, axis=1) > np.count_nonzero(
        svals == kth, axis=1
    )
    for row in np.flatnonzero(ambiguous):
        full = np.lexsort((ids[row], d2[row]))[:k]
        sids[row] = ids[row][full]
        svals[row] = d2[row][full]
    return sids, svals[:, -1]


def suggest_cell_size(points: np.ndarray, k: int) -> float:
    """Cell side so one ring of cells holds roughly the ``k`` nearest.

    Sizes cells for a mean occupancy of ``~max(k / 8, 1.5)`` points —
    small enough that the dense regions of non-uniform clouds don't
    drown each ring in candidates, large enough that the expanding
    rings of :meth:`UniformGridIndex.query_knn_batch` resolve most
    queries within a round or two.  Degenerate extents (planar or
    linear clouds, or a single repeated point) fall back to the
    largest finite extent so the cell count stays ``O(N)``.

    Returns:
        A positive scalar float cell side.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"expected (N, 3) points, got {points.shape}")
    extents = points.max(axis=0) - points.min(axis=0)
    longest = float(extents.max()) if extents.size else 0.0
    if longest <= 0.0:
        return 1.0  # every point coincides; one cell holds them all
    # Flat axes contribute one cell layer; pricing them at the longest
    # extent keeps the volume estimate finite.
    extents = np.where(extents > 0.0, extents, longest)
    volume = float(np.prod(extents))
    occupancy = max(k / 8.0, 1.5)
    cell = (volume * occupancy / points.shape[0]) ** (1.0 / 3.0)
    return max(cell, longest * 1e-6)


class UniformGridIndex:
    """A cell-list index over ``(N, 3)`` points.

    Cells are identified by collision-free linear ids and stored as a
    CSR structure: ``_sorted_ids`` groups point indices by cell (each
    run ascending), ``_cell_ids`` / ``_cell_starts`` / ``_cell_ends``
    delimit the runs.  Lookups are ``searchsorted`` probes — no Python
    dict, no dense cell volume.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self.origin = points.min(axis=0)
        cells = np.floor((points - self.origin) / self.cell_size).astype(
            np.int64
        )
        self._dims = cells.max(axis=0) + 1
        linear = self._linearize(cells)
        order = np.argsort(linear, kind="stable")
        self._sorted_ids = order
        sorted_linear = linear[order]
        cell_ids, starts = np.unique(sorted_linear, return_index=True)
        self._cell_ids = cell_ids
        self._cell_starts = starts
        self._cell_ends = np.append(starts[1:], linear.shape[0])
        # ||c||^2 in the reference full-shape expression, computed once
        # and gathered per query round (gathering preserves bits).
        self._points_sq = np.sum(points[None] ** 2, axis=2)[0]

    def _linearize(self, cells: np.ndarray) -> np.ndarray:
        """Collision-free linear cell ids for ``(..., 3)`` int cells."""
        dims = self._dims
        return (
            cells[..., 0] * dims[1] + cells[..., 1]
        ) * dims[2] + cells[..., 2]

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def num_occupied_cells(self) -> int:
        return int(self._cell_ids.shape[0])

    def _ring_runs(
        self, base_cells: np.ndarray, reach: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Candidate runs for each query's ``(2 reach + 1)^3`` cell
        ring.

        Args:
            base_cells: ``(Q, 3)`` integer cell coordinates.
            reach: ring half-width in cells (``>= 1``).

        Returns:
            ``(starts, ends)`` int64 arrays of shape ``(Q, C)`` (``C``
            = ring cell count) delimiting runs in ``_sorted_ids``;
            empty/out-of-grid cells have ``starts == ends``.  Ring
            cells enumerate in ``dx, dy, dz`` nesting order, matching
            the scalar ``_candidates`` scan.
        """
        span = np.arange(-reach, reach + 1, dtype=np.int64)
        ox, oy, oz = np.meshgrid(span, span, span, indexing="ij")
        offsets = np.stack(
            [ox.ravel(), oy.ravel(), oz.ravel()], axis=1
        )  # (C, 3)
        ring = base_cells[:, None, :] + offsets[None, :, :]  # (Q, C, 3)
        valid = np.all((ring >= 0) & (ring < self._dims), axis=2)
        linear = self._linearize(ring)
        pos = np.searchsorted(self._cell_ids, linear)
        pos[pos == self._cell_ids.shape[0]] = 0
        occupied = (self._cell_ids[pos] == linear) & valid
        starts = np.where(occupied, self._cell_starts[pos], 0)
        ends = np.where(occupied, self._cell_ends[pos], 0)
        return starts, ends

    def _score_rows(
        self,
        query_rows: np.ndarray,
        q_sq_rows: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        workspace: Workspace,
        stats: Optional["GridQueryStats"] = None,
    ):
        """Score ring candidates for query rows, tiled to the scratch
        budget.

        Args:
            query_rows: ``(R, 3)`` query coordinates.
            q_sq_rows: ``(R,)`` precomputed ``||q||^2`` (reference
                expression, gathered).
            starts, ends: ``(R, C)`` candidate-run bounds from
                :meth:`_ring_runs`.
            workspace: scratch pool bounding each padded tile.
            stats: optional scan accounting.

        Yields:
            ``(lo, ids, d2, totals)`` tiles covering rows ``lo ..
            lo + m``: ``ids`` is ``(m, width)`` int64 candidate indices
            (pad lanes hold ``len(self)``), ``d2`` the matching
            squared distances (pad lanes ``+inf``), ``totals`` the
            ``(m,)`` real-candidate counts.  Buffers are reused across
            tiles — consume one tile before advancing.
        """
        n_candidates = len(self)
        lengths = ends - starts
        counts = lengths.sum(axis=1)
        num_rows = query_rows.shape[0]
        lo = 0
        while lo < num_rows:
            width = int(counts[lo:].max(initial=1))
            # Padded row bytes: ids + distances (8 each) + xyz (24).
            chunk = workspace.chunk_rows(
                max(width, 1) * 40, num_rows - lo
            )
            sl = slice(lo, lo + chunk)
            run_len = lengths[sl]
            totals = counts[sl]
            m = run_len.shape[0]
            width = int(totals.max(initial=1))
            ids = workspace.buffer("grid.ids", (m, width), dtype=np.int64)
            d2 = workspace.buffer("grid.d2", (m, width))
            ids[:] = n_candidates  # pad sentinel
            total = int(totals.sum())
            if total:
                # Column of each gathered candidate inside its padded
                # row: running position of its run plus offset in run.
                run_pos = np.cumsum(run_len, axis=1) - run_len
                flat_len = run_len.ravel()
                flat_cum = np.cumsum(flat_len) - flat_len
                seq = np.arange(total, dtype=np.int64)
                within = seq - np.repeat(flat_cum, flat_len)
                cols = np.repeat(run_pos.ravel(), flat_len) + within
                src = np.repeat(starts[sl].ravel(), flat_len) + within
                rows_of = np.repeat(
                    np.arange(m, dtype=np.int64), totals
                )
                ids[rows_of, cols] = self._sorted_ids[src]
            if stats is not None:
                stats.pairs_scanned += total
            cand_ids = np.minimum(ids, n_candidates - 1)
            coords = self.points[cand_ids]  # (m, width, 3)
            qblock = query_rows[sl]
            # The reference distance expression of the brute kernels,
            # with the dot as a shape-stable einsum.
            np.einsum("qmc,qc->qm", coords, qblock, out=d2)
            d2 *= -2.0
            d2 += q_sq_rows[sl][:, None]
            d2 += self._points_sq[cand_ids]
            np.maximum(d2, 0.0, out=d2)
            d2[ids == n_candidates] = np.inf
            yield lo, ids, d2, totals
            lo += chunk

    def _candidates(self, point: np.ndarray, reach: int) -> np.ndarray:
        base = np.floor((point - self.origin) / self.cell_size).astype(
            np.int64
        )
        starts, ends = self._ring_runs(base[None, :], reach)
        starts, ends = starts[0], ends[0]
        lengths = ends - starts
        total = int(lengths.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        run_offsets = np.cumsum(lengths) - lengths
        flat = np.arange(total, dtype=np.int64)
        flat += np.repeat(starts - run_offsets, lengths)
        return self._sorted_ids[flat]

    def query_radius(self, point: np.ndarray, radius: float) -> np.ndarray:
        """All indices within ``radius`` of ``point``.

        Returns a sorted 1-D int64 index array.
        """
        point = np.asarray(point, dtype=np.float64)
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        candidates = self._candidates(point, reach)
        if candidates.size == 0:
            return candidates
        d2 = np.sum((self.points[candidates] - point) ** 2, axis=1)
        return np.sort(candidates[d2 <= radius * radius])

    def query_knn(self, point: np.ndarray, k: int) -> np.ndarray:
        """k nearest indices (1-D int64), expanding the cell reach
        until enough candidates are *provably* inside the searched
        shell."""
        point = np.asarray(point, dtype=np.float64)
        if not 1 <= k <= len(self):
            raise ValueError("k out of range")
        reach = 1
        while True:
            candidates = self._candidates(point, reach)
            if candidates.size >= k:
                d2 = np.sum(
                    (self.points[candidates] - point) ** 2, axis=1
                )
                order = np.argsort(d2, kind="stable")[:k]
                # The shell of `reach` cells is guaranteed to contain the
                # true k-NN only if the k-th distance fits inside it.
                safe = (reach * self.cell_size) ** 2
                if d2[order[-1]] <= safe or candidates.size == len(self):
                    return candidates[order]
            if candidates.size == len(self):
                d2 = np.sum(
                    (self.points[candidates] - point) ** 2, axis=1
                )
                return candidates[np.argsort(d2, kind="stable")[:k]]
            reach += 1

    def query_knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        workspace: Optional[Workspace] = None,
        stats: Optional["GridQueryStats"] = None,
    ) -> np.ndarray:
        """Exact k-nearest candidates for a whole query block.

        Probes expanding cell rings round by round: every still-open
        query gathers the candidates of its current ring, scores them
        with the reference distance expression, and closes once its
        k-th distance provably fits inside the searched shell.  Scratch
        (padded id / coordinate / distance blocks) comes from the
        shared workspace pool and is bounded by its budget — the
        ``(Q, N)`` distance matrix is never materialized.

        Neighbor rows follow the canonical ``(distance, index)`` order
        of :func:`canonical_top_k`.

        Args:
            queries: ``(Q, 3)`` float query coordinates.
            k: neighbors per query (``1 <= k <= N``).
            workspace: scratch pool; a fresh default-budget
                :class:`Workspace` when omitted.
            stats: optional :class:`GridQueryStats` accumulator.

        Returns:
            ``(Q, k)`` int64 candidate indices, ascending ``(distance,
            index)`` per row.
        """
        queries = np.asarray(queries, dtype=np.float64)
        if queries.ndim != 2 or queries.shape[1] != 3:
            raise ValueError(
                f"expected (Q, 3) queries, got {queries.shape}"
            )
        n_candidates = len(self)
        if not 1 <= k <= n_candidates:
            raise ValueError(f"k must be in [1, {n_candidates}], got {k}")
        workspace = workspace or Workspace()
        num_queries = queries.shape[0]
        out = np.empty((num_queries, k), dtype=np.int64)
        if stats is not None:
            stats.num_queries += num_queries
        # Reference-shape ||q||^2, gathered per round (bit-preserving).
        q_sq_all = np.sum(queries[None] ** 2, axis=2)[0]
        base_cells = np.floor(
            (queries - self.origin) / self.cell_size
        ).astype(np.int64)
        active = np.arange(num_queries, dtype=np.int64)
        reach = 1
        while active.size:
            starts, ends = self._ring_runs(base_cells[active], reach)
            counts = (ends - starts).sum(axis=1)
            safe = (reach * self.cell_size) ** 2
            still_open = np.zeros(active.shape[0], dtype=bool)
            # Queries whose ring cannot hold k candidates yet (and has
            # not swallowed the whole cloud) expand without scoring.
            scoreable = (counts >= k) | (counts >= n_candidates)
            still_open[~scoreable] = True
            rows = np.flatnonzero(scoreable)
            # Grouping rows of similar candidate count keeps each
            # padded tile tight: tiles pad to their widest row, and
            # non-uniform clouds mix narrow and wide rings.
            rows = rows[np.argsort(counts[rows], kind="stable")]
            if stats is not None:
                stats.rounds += 1
                stats.cells_probed += int(
                    starts.shape[0] * starts.shape[1]
                )
            row_queries = queries[active[rows]]
            row_q_sq = q_sq_all[active[rows]]
            for lo, ids, d2, totals in self._score_rows(
                row_queries,
                row_q_sq,
                starts[rows],
                ends[rows],
                workspace,
                stats,
            ):
                block = rows[lo : lo + totals.shape[0]]
                # Canonical (distance, candidate index) order — ids,
                # not columns, break ties (runs interleave cells).
                sel, kth = _canonical_top_k_ids(d2, ids, k)
                # Strict < keeps boundary ties exact: a candidate just
                # outside the shell could tie the k-th distance, and
                # the canonical order must then consider its index.
                done = (kth < safe) | (totals >= n_candidates)
                out[active[block[done]]] = sel[done]
                still_open[block[~done]] = True
            active = active[still_open]
            reach += 1
        return out


@dataclass
class GridQueryStats:
    """Scan accounting for the grid neighbor engines.

    Attributes:
        num_queries: total queries answered.
        pairs_scanned: query-candidate distance evaluations performed.
        rounds: ring-expansion rounds executed.
        cells_probed: (query, cell) lookups issued.
    """

    num_queries: int = 0
    pairs_scanned: int = 0
    rounds: int = 0
    cells_probed: int = 0

    def merge(self, other: "GridQueryStats") -> None:
        self.num_queries += other.num_queries
        self.pairs_scanned += other.pairs_scanned
        self.rounds += other.rounds
        self.cells_probed += other.cells_probed
