"""Brute-force neighbor search: k-NN and ball query (the SOTA baselines).

These mirror the reference CUDA kernels PointNet++/DGCNN ship with
(paper Sec. 5.2.1): for every query the full candidate set is scanned,
giving ``O(N)`` per query and ``O(N^2)`` for all-pairs search.  Both
return *fixed-width* ``(Q, k)`` index matrices because the downstream
grouping stage needs a rectangular gather.

Ball query follows the PointNet++ convention: candidates inside the
radius are taken in scan order, and if fewer than ``k`` qualify the
first hit is repeated to pad the row (a row with no hit pads with the
query's own nearest point, matching the reference behaviour of always
returning *something* groupable).
"""

from __future__ import annotations

import numpy as np

_CHUNK = 2048


def _squared_distances(queries: np.ndarray, candidates: np.ndarray):
    """Yield ``(lo, d2_block)`` chunks of the Q x N distance matrix."""
    c_sq = np.sum(candidates**2, axis=1)[None, :]
    for lo in range(0, queries.shape[0], _CHUNK):
        block = queries[lo : lo + _CHUNK]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ candidates.T
            + c_sq
        )
        np.maximum(d2, 0.0, out=d2)
        yield lo, d2


def _validate(queries: np.ndarray, candidates: np.ndarray, k: int):
    queries = np.asarray(queries, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if queries.ndim != 2 or candidates.ndim != 2:
        raise ValueError("queries and candidates must be 2-D arrays")
    if queries.shape[1] != candidates.shape[1]:
        raise ValueError("dimensionality mismatch")
    if not 1 <= k <= candidates.shape[0]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[0]}], got {k}"
        )
    return queries, candidates


def knn(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> np.ndarray:
    """Exact k-nearest neighbors.

    Works in any dimensionality — DGCNN's later EdgeConv modules run kNN
    in feature space (paper Sec. 5.2.3), not just on xyz.

    Returns ``(Q, k)`` candidate indices sorted by ascending distance.
    """
    queries, candidates = _validate(queries, candidates, k)
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    for lo, d2 in _squared_distances(queries, candidates):
        if k < d2.shape[1]:
            part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        else:
            part = np.broadcast_to(
                np.arange(d2.shape[1]), (d2.shape[0], d2.shape[1])
            ).copy()
        row = np.arange(d2.shape[0])[:, None]
        order = np.argsort(d2[row, part], axis=1, kind="stable")
        out[lo : lo + d2.shape[0]] = part[row, order]
    return out


def ball_query(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    k: int,
) -> np.ndarray:
    """Fixed-width ball query (PointNet++ SA-module convention).

    For each query, up to ``k`` candidate indices with distance
    ``<= radius`` are returned in candidate-scan order; short rows are
    padded by repeating the first in-radius hit (or the nearest
    candidate if the ball is empty).
    """
    queries, candidates = _validate(queries, candidates, k)
    if radius <= 0:
        raise ValueError("radius must be positive")
    r2 = radius * radius
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    for lo, d2 in _squared_distances(queries, candidates):
        inside = d2 <= r2
        for i in range(d2.shape[0]):
            hits = np.flatnonzero(inside[i])
            if hits.size == 0:
                out[lo + i] = int(np.argmin(d2[i]))
            elif hits.size >= k:
                out[lo + i] = hits[:k]
            else:
                row = np.full(k, hits[0], dtype=np.int64)
                row[: hits.size] = hits
                out[lo + i] = row
    return out


def pairwise_operation_count(num_queries: int, num_candidates: int) -> int:
    """Distance evaluations brute-force search performs (cost model)."""
    if num_queries < 0 or num_candidates < 0:
        raise ValueError("counts must be non-negative")
    return num_queries * num_candidates
