"""Brute-force neighbor search: k-NN and ball query (the SOTA baselines).

These mirror the reference CUDA kernels PointNet++/DGCNN ship with
(paper Sec. 5.2.1): for every query the full candidate set is scanned,
giving ``O(N)`` per query and ``O(N^2)`` for all-pairs search.  Both
return *fixed-width* ``(Q, k)`` index matrices because the downstream
grouping stage needs a rectangular gather.

Ball query follows the PointNet++ convention: candidates inside the
radius are taken in scan order, and if fewer than ``k`` qualify the
first hit is repeated to pad the row (a row with no hit pads with the
query's own nearest point, matching the reference behaviour of always
returning *something* groupable).
"""

from __future__ import annotations

import numpy as np

from repro.neighbors.batched import ball_query_batch, knn_batch


def _validate(queries: np.ndarray, candidates: np.ndarray, k: int):
    queries = np.asarray(queries, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    if queries.ndim != 2 or candidates.ndim != 2:
        raise ValueError("queries and candidates must be 2-D arrays")
    if queries.shape[1] != candidates.shape[1]:
        raise ValueError("dimensionality mismatch")
    if not 1 <= k <= candidates.shape[0]:
        raise ValueError(
            f"k must be in [1, {candidates.shape[0]}], got {k}"
        )
    return queries, candidates


def knn(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> np.ndarray:
    """Exact k-nearest neighbors.

    Works in any dimensionality — DGCNN's later EdgeConv modules run kNN
    in feature space (paper Sec. 5.2.3), not just on xyz.

    Thin ``B=1`` wrapper over
    :func:`repro.neighbors.batched.knn_batch`.

    Returns ``(Q, k)`` int64 candidate indices sorted by ascending
    distance.
    """
    queries, candidates = _validate(queries, candidates, k)
    return knn_batch(queries[None], candidates[None], k)[0]


def ball_query(
    queries: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    k: int,
) -> np.ndarray:
    """Fixed-width ball query (PointNet++ SA-module convention).

    For each query, up to ``k`` candidate indices with distance
    ``<= radius`` are returned in candidate-scan order; short rows are
    padded by repeating the first in-radius hit (or the nearest
    candidate if the ball is empty).

    Thin ``B=1`` wrapper over
    :func:`repro.neighbors.batched.ball_query_batch`.

    Returns ``(Q, k)`` int64 candidate indices.
    """
    queries, candidates = _validate(queries, candidates, k)
    return ball_query_batch(queries[None], candidates[None], radius, k)[0]


def pairwise_operation_count(num_queries: int, num_candidates: int) -> int:
    """Distance evaluations brute-force search performs (cost model)."""
    if num_queries < 0 or num_candidates < 0:
        raise ValueError("counts must be non-negative")
    return num_queries * num_candidates
