"""Exact neighbor-search baselines and quality metrics."""

from repro.neighbors.batched import (
    ball_query_batch,
    ball_query_grid_batch,
    knn_batch,
    knn_grid_batch,
)
from repro.neighbors.brute import ball_query, knn, pairwise_operation_count
from repro.neighbors.grid import (
    GridQueryStats,
    UniformGridIndex,
    canonical_top_k,
    suggest_cell_size,
)
from repro.neighbors.kdtree import KDTree
from repro.neighbors.zorder_ann import ZOrderApproxNN
from repro.neighbors.metrics import (
    false_neighbor_ratio,
    mean_neighbor_distance,
    recall,
)

__all__ = [
    "ball_query",
    "ball_query_batch",
    "ball_query_grid_batch",
    "knn",
    "knn_batch",
    "knn_grid_batch",
    "pairwise_operation_count",
    "canonical_top_k",
    "suggest_cell_size",
    "GridQueryStats",
    "KDTree",
    "UniformGridIndex",
    "ZOrderApproxNN",
    "false_neighbor_ratio",
    "recall",
    "mean_neighbor_distance",
]
