"""Exact neighbor-search baselines and quality metrics."""

from repro.neighbors.batched import ball_query_batch, knn_batch
from repro.neighbors.brute import ball_query, knn, pairwise_operation_count
from repro.neighbors.grid import UniformGridIndex
from repro.neighbors.kdtree import KDTree
from repro.neighbors.zorder_ann import ZOrderApproxNN
from repro.neighbors.metrics import (
    false_neighbor_ratio,
    mean_neighbor_distance,
    recall,
)

__all__ = [
    "ball_query",
    "ball_query_batch",
    "knn",
    "knn_batch",
    "pairwise_operation_count",
    "KDTree",
    "UniformGridIndex",
    "ZOrderApproxNN",
    "false_neighbor_ratio",
    "recall",
    "mean_neighbor_distance",
]
