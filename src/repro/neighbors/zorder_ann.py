"""(1+eps) approximate nearest neighbor on the Morton order.

The paper's Sec. 3.2 contrasts EdgePC with Connor's thread-safe
approximate NN (the paper's [12]): that technique also sorts points by
Morton code, but *guarantees* an error bound by scanning a rank window
around the query and proving, via the Z-curve's nesting structure,
when no closer point can exist outside the scanned range — at the cost
of extra computation per query.  EdgePC drops the guarantee to save
that refinement; this module implements the guaranteed variant as a
baseline, both to cross-check the window searcher and to quantify what
the guarantee costs.

Soundness invariant: ranks ``[s_lo, s_hi]`` of the sorted order have
been scanned.  By sortedness, *every* point whose code lies strictly
between ``codes[s_lo - 1]`` and ``codes[s_hi + 1]`` has been scanned.
Z-aligned cubes (cells sharing a code prefix) occupy contiguous code
intervals, so the largest Z-aligned cube around the query whose whole
code interval fits inside that open interval is *fully* scanned.  Any
unscanned point therefore lies outside that cube, at distance at least
the query's margin to the cube boundary.  The search stops when
``margin * (1 + eps) >= d_k``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core import morton
from repro.core.structurize import MortonOrder, structurize


class ZOrderApproxNN:
    """Bounded-error k-NN over a Morton-sorted cloud.

    Args:
        points: ``(N, 3)`` cloud to index.
        eps: allowed relative error on the k-th neighbor distance
            (``0`` scans until exactness is proven).
        code_bits: Morton width used for the order.
        order: optional precomputed order to reuse.
    """

    def __init__(
        self,
        points: np.ndarray,
        eps: float = 0.0,
        code_bits: int = morton.DEFAULT_CODE_BITS,
        order: Optional[MortonOrder] = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        if eps < 0:
            raise ValueError("eps must be non-negative")
        self.points = points
        self.eps = eps
        self.order = order or structurize(points, code_bits)
        if len(self.order) != points.shape[0]:
            raise ValueError("order does not match the point count")
        self._bits_per_axis = morton.bits_per_axis(self.order.code_bits)
        self._sorted_codes = self.order.sorted_codes
        self._sorted_points = self.order.sorted_points(points)
        #: Ranks scanned per query in the last `query` call (for the
        #: cost comparison against the unguaranteed window searcher).
        self.last_scanned = 0

    def __len__(self) -> int:
        return self.points.shape[0]

    # Bound machinery -----------------------------------------------------

    def _covered_cube_margin(
        self, point: np.ndarray, query_code: int, s_lo: int, s_hi: int
    ) -> float:
        """Distance from ``point`` to the boundary of the largest
        fully-scanned Z-aligned cube around it (0 if none)."""
        n = len(self)
        low_excl = (
            int(self._sorted_codes[s_lo - 1]) if s_lo > 0 else -1
        )
        high_excl = (
            int(self._sorted_codes[s_hi + 1])
            if s_hi < n - 1
            else None  # everything above is scanned
        )
        grid = self.order.grid
        best_margin = 0.0
        for level in range(1, self._bits_per_axis + 1):
            shift = 3 * level
            prefix = query_code >> shift
            cube_first = prefix << shift
            cube_last = cube_first + (1 << shift) - 1
            covered_low = cube_first > low_excl
            covered_high = (
                high_excl is None or cube_last < high_excl
            )
            if not (covered_low and covered_high):
                break
            side = 1 << level
            origin_cells = np.array(
                morton.decode(np.array([cube_first]))[0],
                dtype=np.float64,
            )
            origin = grid.origin + origin_cells * grid.cell_size
            extent = side * grid.cell_size
            rel = point - origin
            if np.all(rel >= 0) and np.all(rel <= extent):
                margin = float(np.minimum(rel, extent - rel).min())
                best_margin = max(best_margin, margin)
        return best_margin

    # Queries --------------------------------------------------------------

    def query(self, point: np.ndarray, k: int) -> np.ndarray:
        """k (1+eps)-approximate nearest original-point indices: a
        ``(k,)`` int64 array sorted by ascending distance."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (3,):
            raise ValueError("query point must be a 3-vector")
        n = len(self)
        if not 1 <= k <= n:
            raise ValueError("k out of range")
        query_code = int(
            morton.encode(self.order.grid.voxelize(point[None]))[0]
        )
        center = int(
            np.searchsorted(self._sorted_codes, query_code)
        )
        center = min(center, n - 1)

        best: List[Tuple[float, int]] = []

        def consider_block(rank_lo: int, rank_hi: int) -> None:
            """Add ranks [rank_lo, rank_hi] (inclusive) to the pool."""
            block = self._sorted_points[rank_lo : rank_hi + 1]
            distances = np.linalg.norm(block - point, axis=1)
            ranks = np.arange(rank_lo, rank_hi + 1)
            if distances.shape[0] > k:
                keep = np.argpartition(distances, k - 1)[:k]
                distances, ranks = distances[keep], ranks[keep]
            best.extend(
                (float(d), int(self.order.permutation[r]))
                for d, r in zip(distances, ranks)
            )
            best.sort()
            del best[k:]

        block = max(32, k)
        consider_block(center, center)
        s_lo = s_hi = center
        while True:
            if len(best) == k:
                margin = self._covered_cube_margin(
                    point, query_code, s_lo, s_hi
                )
                if margin * (1.0 + self.eps) >= best[-1][0]:
                    break
            if s_lo == 0 and s_hi == n - 1:
                break
            # Expand one block on each open side; correctness comes
            # from the bound, not the expansion order.
            if s_lo > 0:
                new_lo = max(0, s_lo - block)
                consider_block(new_lo, s_lo - 1)
                s_lo = new_lo
            if s_hi < n - 1:
                new_hi = min(n - 1, s_hi + block)
                consider_block(s_hi + 1, new_hi)
                s_hi = new_hi
        self.last_scanned = s_hi - s_lo + 1
        return np.array([idx for _, idx in best], dtype=np.int64)

    def query_batch(self, queries: np.ndarray, k: int) -> np.ndarray:
        """Vector of :meth:`query` calls over ``(Q, 3)`` queries;
        returns ``(Q, k)`` int64 indices."""
        queries = np.asarray(queries, dtype=np.float64)
        return np.stack([self.query(q, k) for q in queries])
