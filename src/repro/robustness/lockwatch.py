"""Runtime lock-order sanitizer for the threaded serving stack.

:class:`LockOrderWatchdog` wraps the serving locks
(``RequestQueue.condition``, ``InferenceServer._dispatch_lock``,
``InferenceServer._records_lock``, ``ServerFleet._cond``) in thin
proxies that record, per thread, which locks are held when another is
acquired.  The observed acquisition-order edges are the runtime twin
of the static lock-order graph computed by
:class:`repro.lint.concurrency.ProjectContext` (rule CONC-502); the
two cross-validate:

- an **order violation** is a pair of locks observed in both orders at
  runtime (the dynamic analogue of a CONC-502 cycle), or a plain
  ``Lock`` re-acquired by the thread already holding it — the watchdog
  refuses that acquire with :class:`LockOrderViolation` instead of
  letting the test deadlock;
- a **contradiction** is an observed edge ``A -> B`` where the static
  graph proves a path ``B => A``: whichever layer is wrong, the
  serving stack's documented ordering no longer matches reality.

Hold-times and acquisition counts are folded into a
:class:`~repro.observability.metrics.MetricsRegistry` under
``lockwatch_acquisitions_total{lock=}``,
``lockwatch_hold_seconds{lock=}`` and ``lockwatch_violations_total``
so the chaos harness can export them alongside the serving metrics.

The watchdog is test-infrastructure, not a production wrapper: proxies
add two dict operations per acquire, which is fine under pytest and
the chaos smoke but is deliberately kept out of the serving hot path
by default.  Enable it for the whole test suite with
``REPRO_LOCKWATCH=1`` (see ``tests/conftest.py``) or per-run via
``repro lockwatch-report``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.observability.metrics import MetricsRegistry

__all__ = [
    "LockOrderViolation",
    "LockOrderWatchdog",
    "static_lock_order",
]

#: Hold-time buckets: serving locks are held for microseconds; one
#: second means a blocking call leaked under a lock (CONC-505).
HOLD_BUCKETS: Tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
)


class LockOrderViolation(RuntimeError):
    """Raised when an acquire would deadlock (plain ``Lock`` re-entry).

    Order inversions between *different* locks are recorded and
    surfaced through :meth:`LockOrderWatchdog.report` instead of
    raising: raising inside an arbitrary acquire site would poison
    unrelated state mid-update, whereas a same-thread re-acquire of a
    non-reentrant lock would hang the test forever, so only that case
    refuses loudly.
    """


@dataclass
class _HeldEntry:
    """One live acquisition on one thread's lock stack."""

    name: str
    since: float


class _ThreadState(threading.local):
    """Per-thread stack of currently held (proxied) locks."""

    def __init__(self) -> None:
        self.stack: List[_HeldEntry] = []


class _LockProxy:
    """Wraps a non-reentrant :class:`threading.Lock`."""

    reentrant = False

    def __init__(
        self,
        inner: Any,
        name: str,
        watchdog: "LockOrderWatchdog",
    ) -> None:
        self._inner = inner
        self._name = name
        self._watchdog = watchdog

    def acquire(
        self, blocking: bool = True, timeout: float = -1
    ) -> bool:
        self._watchdog._before_acquire(self._name, self.reentrant)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._watchdog._acquired(self._name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._watchdog._released(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "_LockProxy":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()


class _ConditionProxy(_LockProxy):
    """Wraps a :class:`threading.Condition` (reentrant lock inside).

    ``wait``/``wait_for`` release the underlying lock for the duration
    of the sleep, so the proxy pops the hold segment before blocking
    and starts a fresh one on wake — otherwise every wait would count
    as a multi-second hold and drown the histogram.
    """

    reentrant = True

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._watchdog._suspend(self._name)
        try:
            return self._inner.wait(timeout)
        finally:
            self._watchdog._resume(self._name)

    def wait_for(
        self, predicate: Any, timeout: Optional[float] = None
    ) -> Any:
        # Re-implemented on the proxy so the per-wakeup suspend
        # bookkeeping stays correct; the predicate re-check loop runs
        # here with the lock held, like threading.Condition.wait_for.
        end = None
        if timeout is not None:
            end = time.perf_counter() + timeout
        result = predicate()
        while not result:
            remaining = None
            if end is not None:
                remaining = end - time.perf_counter()
                if remaining <= 0.0:
                    break
            self.wait(remaining)
            result = predicate()
        return result

    def notify(self, n: int = 1) -> None:
        self._inner.notify(n)

    def notify_all(self) -> None:
        self._inner.notify_all()


@dataclass
class LockWatchReport:
    """Snapshot of everything the watchdog observed."""

    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    acquisitions: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    contradictions: List[str] = field(default_factory=list)
    static_edges: List[Tuple[str, str]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "edges": [
                {"held": a, "acquired": b, "count": n}
                for a, b, n in self.edges
            ],
            "acquisitions": dict(sorted(self.acquisitions.items())),
            "violations": list(self.violations),
            "contradictions": list(self.contradictions),
            "static_edges": [
                {"before": a, "after": b} for a, b in self.static_edges
            ],
        }


class LockOrderWatchdog:
    """Records runtime lock-acquisition order and checks it against
    the static CONC-502 graph.

    Parameters
    ----------
    static_edges:
        ``(before, after)`` pairs from
        :meth:`repro.lint.concurrency.ProjectContext.lock_order_edges`
        (or :func:`static_lock_order`).  Observed edges whose reverse
        is reachable in this graph are reported as contradictions.
    metrics:
        Optional registry receiving ``lockwatch_*`` series.
    """

    def __init__(
        self,
        static_edges: Iterable[Tuple[str, str]] = (),
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.metrics = metrics
        self.static_edges: List[Tuple[str, str]] = sorted(
            set(static_edges)
        )
        self._static_adj: Dict[str, Set[str]] = {}
        for before, after in self.static_edges:
            self._static_adj.setdefault(before, set()).add(after)
        self._lock = threading.Lock()
        self._state = _ThreadState()
        self.edges: Dict[Tuple[str, str], int] = {}
        self.acquisitions: Dict[str, int] = {}
        self.violations: List[str] = []
        self.contradictions: List[str] = []

    # Wrapping --------------------------------------------------------

    def wrap_lock(self, lock: Any, name: str) -> _LockProxy:
        if isinstance(lock, (_LockProxy, _ConditionProxy)):
            return lock
        return _LockProxy(lock, name, self)

    def wrap_condition(self, cond: Any, name: str) -> _ConditionProxy:
        if isinstance(cond, _ConditionProxy):
            return cond
        return _ConditionProxy(cond, name, self)

    def instrument_server(self, server: Any) -> None:
        """Swap an :class:`InferenceServer`'s locks for proxies.

        Must run before ``start()`` so worker threads only ever see
        the proxies.
        """
        server._dispatch_lock = self.wrap_lock(
            server._dispatch_lock, "InferenceServer._dispatch_lock"
        )
        server._records_lock = self.wrap_lock(
            server._records_lock, "InferenceServer._records_lock"
        )
        server.queue.condition = self.wrap_condition(
            server.queue.condition, "RequestQueue.condition"
        )

    def instrument_fleet(self, fleet: Any) -> None:
        """Swap a :class:`ServerFleet`'s lock plus every replica's."""
        fleet._cond = self.wrap_condition(
            fleet._cond, "ServerFleet._cond"
        )
        for replica in fleet.replicas:
            self.instrument_server(replica.server)

    # Recording -------------------------------------------------------

    def _before_acquire(self, name: str, reentrant: bool) -> None:
        stack = self._state.stack
        held_names = [entry.name for entry in stack]
        if name in held_names:
            if reentrant:
                return
            message = (
                f"non-reentrant lock '{name}' re-acquired by a "
                "thread already holding it (would deadlock)"
            )
            self._record_violation(message)
            raise LockOrderViolation(message)
        for held in dict.fromkeys(held_names):
            self._record_edge(held, name)

    def _record_edge(self, held: str, acquired: str) -> None:
        with self._lock:
            first = (held, acquired) not in self.edges
            self.edges[(held, acquired)] = (
                self.edges.get((held, acquired), 0) + 1
            )
            inverted = (acquired, held) in self.edges
        if not first:
            return
        if inverted:
            self._record_violation(
                f"lock order inversion: '{held}' -> '{acquired}' "
                f"and '{acquired}' -> '{held}' both observed"
            )
        if self._static_path(acquired, held):
            note = (
                f"observed '{held}' -> '{acquired}' but the static "
                f"graph orders '{acquired}' before '{held}'"
            )
            with self._lock:
                self.contradictions.append(note)

    def _static_path(self, start: str, goal: str) -> bool:
        seen = {start}
        frontier: Deque[str] = deque([start])
        while frontier:
            node = frontier.popleft()
            if node == goal:
                return True
            for nxt in self._static_adj.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    def _record_violation(self, message: str) -> None:
        with self._lock:
            self.violations.append(message)
        if self.metrics is not None:
            self.metrics.counter("lockwatch_violations_total").inc()

    def _acquired(self, name: str) -> None:
        self._state.stack.append(
            _HeldEntry(name, time.perf_counter())
        )
        with self._lock:
            self.acquisitions[name] = (
                self.acquisitions.get(name, 0) + 1
            )
        if self.metrics is not None:
            self.metrics.counter(
                "lockwatch_acquisitions_total", lock=name
            ).inc()

    def _released(self, name: str) -> None:
        stack = self._state.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].name == name:
                entry = stack.pop(index)
                self._observe_hold(name, entry.since)
                return

    def _suspend(self, name: str) -> None:
        # Condition.wait releases the underlying lock: close the hold
        # segment so wall-clock sleeping is not billed as holding.
        self._released(name)

    def _resume(self, name: str) -> None:
        self._state.stack.append(
            _HeldEntry(name, time.perf_counter())
        )

    def _observe_hold(self, name: str, since: float) -> None:
        if self.metrics is not None:
            self.metrics.histogram(
                "lockwatch_hold_seconds",
                buckets=HOLD_BUCKETS,
                lock=name,
            ).observe(max(0.0, time.perf_counter() - since))

    # Reporting -------------------------------------------------------

    def observed_edges(self) -> List[Tuple[str, str, int]]:
        with self._lock:
            return sorted(
                (a, b, n) for (a, b), n in self.edges.items()
            )

    def report(self) -> LockWatchReport:
        with self._lock:
            edges = sorted(
                (a, b, n) for (a, b), n in self.edges.items()
            )
            return LockWatchReport(
                edges=edges,
                acquisitions=dict(self.acquisitions),
                violations=list(self.violations),
                contradictions=list(self.contradictions),
                static_edges=list(self.static_edges),
            )

    def check(self) -> None:
        """Raise :class:`LockOrderViolation` if anything was observed
        out of order (violations or static-graph contradictions)."""
        snapshot = self.report()
        problems = snapshot.violations + snapshot.contradictions
        if problems:
            raise LockOrderViolation(
                "lock-order sanitizer found "
                f"{len(problems)} problem(s):\n  "
                + "\n  ".join(problems)
            )


def static_lock_order() -> List[Tuple[str, str]]:
    """Static lock-order edges for the installed ``repro`` package.

    Runs the CONC-5xx :class:`ProjectContext` over the package's own
    source tree, so the watchdog validates against exactly the code
    that is executing, wherever it is installed.
    """
    import os

    import repro
    from repro.lint.concurrency import ProjectContext

    root = os.path.dirname(os.path.abspath(repro.__file__))
    return ProjectContext.from_paths([root]).lock_order_edges()
