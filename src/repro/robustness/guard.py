"""Quality-triggered fallback from Morton approximations to exact kernels.

EdgePC's speedups come from replacing FPS and brute kNN with
Morton-order approximations whose quality depends on the input's
geometry (FlashFPS, arXiv 2604.17720, makes the same point for
approximate samplers generally).  :class:`GuardedPipeline` wraps an
:class:`~repro.pipeline.EdgePCPipeline` and, before each batch, runs
two cheap probes on a seeded subsample:

- **sampling probe** — Morton-stride sample the probe set and measure
  :func:`~repro.sampling.quality.density_uniformity`; a high
  coefficient of variation means the stride pick is leaving holes;
- **neighbor probe** — compare the Morton index-window search against
  exact kNN on the probe set via
  :func:`~repro.neighbors.metrics.false_neighbor_ratio`.

A probe exceeding its threshold degrades *only the affected stage* to
its exact kernel (FPS / brute kNN) for that batch, by swapping an
:class:`~repro.core.pipeline.EdgePCConfig` with that stage's layers
cleared into the model.  A per-stage circuit breaker pins the stage to
exact mode after ``trip_limit`` consecutive trips and re-probes after
a ``cooldown``-batch quarantine.  Every degradation is recorded in the
returned :class:`GuardedInferenceResult`.

Degrading to exact kernels is no longer a large-N latency cliff: at or
above :attr:`~repro.core.pipeline.EdgePCConfig.exact_fast_threshold`
points the exact stages dispatch to the pruning-FPS / grid
neighbor-search fast engines (``fps_fast`` / ``knn_grid`` /
``ball_query_grid`` in the stage trace), which return bit-identical
results at a fraction of the brute kernels' all-pairs cost.  A breaker
pinned open on a 40k-point stream therefore burns far less of the
latency SLO than the brute fallback used to.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.neighbor import MortonNeighborSearch
from repro.core.pipeline import EdgePCConfig
from repro.core.sampler import MortonSampler
from repro.neighbors.brute import knn
from repro.neighbors.metrics import false_neighbor_ratio
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.robustness.validate import (
    CloudValidationError,
    ValidationPolicy,
    ValidationReport,
    sanitize_batch,
)
from repro.sampling.quality import density_uniformity

#: Stage names the guard manages.
STAGE_SAMPLING = "sampling"
STAGE_NEIGHBOR = "neighbor"


@dataclass(frozen=True)
class GuardThresholds:
    """Probe configuration and trip thresholds.

    Attributes:
        max_density_cv: sampling probe trips when the Voronoi-cell
            population CV of the Morton sample exceeds this (FPS on
            well-behaved clouds sits well under 1).
        max_false_neighbor_rate: neighbor probe trips above this FNR
            (the paper reports ~23% at ``W = k``, ~5% at ``W = 8k``).
        probe_points: probe-set size subsampled from the first cloud.
        probe_samples: samples drawn by the sampling probe.
        probe_k: neighbors per query in the neighbor probe.
        trip_limit: consecutive trips before a stage is pinned exact.
        cooldown: batches a pinned stage stays exact before re-probing.
    """

    max_density_cv: float = 1.5
    max_false_neighbor_rate: float = 0.45
    probe_points: int = 256
    probe_samples: int = 32
    probe_k: int = 8
    trip_limit: int = 3
    cooldown: int = 5

    def __post_init__(self) -> None:
        if self.probe_points < 4:
            raise ValueError("probe_points must be >= 4")
        if not 2 <= self.probe_samples <= self.probe_points:
            raise ValueError(
                "probe_samples must be in [2, probe_points]"
            )
        if self.probe_k < 1:
            raise ValueError("probe_k must be positive")
        if self.trip_limit < 1:
            raise ValueError("trip_limit must be positive")
        if self.cooldown < 1:
            raise ValueError("cooldown must be positive")


class CircuitBreaker:
    """Three-state breaker guarding one pipeline stage.

    ``closed``: the approximation runs, probes watch it.  After
    ``trip_limit`` consecutive probe trips the breaker opens.
    ``open``: the stage is pinned to its exact kernel, probes are
    skipped, for ``cooldown`` batches.  ``half_open``: the quarantine
    elapsed; one probe decides — pass closes the breaker, trip
    re-opens it for another full cooldown.
    """

    def __init__(self, trip_limit: int = 3, cooldown: int = 5) -> None:
        if trip_limit < 1 or cooldown < 1:
            raise ValueError("trip_limit and cooldown must be positive")
        self.trip_limit = trip_limit
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_trips = 0
        self.remaining_cooldown = 0
        self.total_trips = 0

    @property
    def forces_exact(self) -> bool:
        return self.state == "open"

    def before_batch(self) -> str:
        """Advance the breaker one batch; returns ``"probe"`` when the
        stage should be probed or ``"forced"`` when it stays exact."""
        if self.state == "open":
            self.remaining_cooldown -= 1
            if self.remaining_cooldown <= 0:
                self.state = "half_open"
                return "probe"
            return "forced"
        return "probe"

    def record_trip(self) -> None:
        self.total_trips += 1
        self.consecutive_trips += 1
        if (
            self.state == "half_open"
            or self.consecutive_trips >= self.trip_limit
        ):
            self.state = "open"
            self.remaining_cooldown = self.cooldown

    def record_pass(self) -> None:
        self.state = "closed"
        self.consecutive_trips = 0


@dataclass(frozen=True)
class StageDegradation:
    """One recorded fallback from approximate to exact."""

    stage: str
    reason: str  # "probe_tripped" | "circuit_open" | "non_finite_logits"
    metric: float
    threshold: float
    batch_index: int

    def __str__(self) -> str:
        return (
            f"batch {self.batch_index}: {self.stage} -> exact "
            f"({self.reason}, metric {self.metric:.3f} vs "
            f"threshold {self.threshold:.3f})"
        )


@dataclass
class GuardedInferenceResult:
    """Outcome of one guarded batch: a profiled result or a rejection.

    Attributes:
        result: the wrapped pipeline's result; ``None`` on rejection.
        rejected: True when the batch could not be served.
        rejection_reason: human-readable cause of the rejection.
        degradations: stage fallbacks applied to this batch.
        validation: per-cloud sanitization reports.
        effective_config: the config the batch actually ran under.
    """

    result: Optional[object]
    rejected: bool = False
    rejection_reason: str = ""
    degradations: List[StageDegradation] = field(default_factory=list)
    validation: List[ValidationReport] = field(default_factory=list)
    effective_config: Optional[EdgePCConfig] = None

    @property
    def ok(self) -> bool:
        return not self.rejected

    @property
    def logits(self) -> np.ndarray:
        if self.result is None:
            raise ValueError(
                f"batch was rejected: {self.rejection_reason}"
            )
        return self.result.logits

    @property
    def predictions(self) -> np.ndarray:
        if self.result is None:
            raise ValueError(
                f"batch was rejected: {self.rejection_reason}"
            )
        return self.result.predictions

    @property
    def degraded_stages(self) -> Tuple[str, ...]:
        return tuple(
            dict.fromkeys(d.stage for d in self.degradations)
        )


def degraded_config(
    config: EdgePCConfig, exact_stages: Tuple[str, ...]
) -> EdgePCConfig:
    """Clear the approximated layers of each stage in ``exact_stages``.

    Clearing ``sample_layers`` also clears ``upsample_layers``: the
    Morton up-sampler consumes the sampler's stride structure, so it
    cannot outlive it.  Clearing ``neighbor_layers`` also zeroes the
    DGCNN reuse distance (reuse is a neighbor-stage approximation).
    """
    if STAGE_SAMPLING in exact_stages:
        config = replace(
            config,
            sample_layers=frozenset(),
            upsample_layers=frozenset(),
        )
    if STAGE_NEIGHBOR in exact_stages:
        config = replace(
            config, neighbor_layers=frozenset(), reuse_distance=0
        )
    return config


@contextmanager
def swapped_config(model, config: EdgePCConfig):
    """Temporarily point a model (and all submodules) at ``config``.

    Models consult their ``edgepc`` attribute per forward call, so an
    attribute swap is equivalent to the rebuild-and-``load_state_dict``
    move (docs/architecture.md, "Strategy selection") at zero copy
    cost.
    """
    targets = (
        list(model.modules()) if hasattr(model, "modules") else [model]
    )
    saved = []
    try:
        for module in targets:
            if hasattr(module, "edgepc"):
                saved.append((module, module.edgepc))
                module.edgepc = config
        yield
    finally:
        for module, previous in saved:
            module.edgepc = previous


def probe_sampling_uniformity(
    points: np.ndarray,
    num_samples: int,
    code_bits: int,
) -> float:
    """Density-uniformity CV of a Morton-stride sample of ``points``."""
    result = MortonSampler(code_bits).sample(points, num_samples)
    return density_uniformity(points, result.indices)


def probe_false_neighbor_rate(
    points: np.ndarray,
    k: int,
    window: int,
    code_bits: int,
) -> float:
    """FNR of the Morton window search vs exact kNN on ``points``."""
    approx = MortonNeighborSearch(k, window, code_bits).search(points)
    exact = knn(points, points, k)
    return false_neighbor_ratio(approx, exact)


class GuardedPipeline:
    """Wraps a pipeline with sanitization, probes, and fallback.

    Args:
        pipeline: the :class:`~repro.pipeline.EdgePCPipeline` to guard.
        policy: sanitization policy applied to every incoming batch.
        thresholds: probe configuration and trip thresholds.
        seed: seeds the probe subsampling.
        tracer: optional tracer; every probe, fallback, and cooldown
            re-probe becomes a ``guard.*`` span.  Defaults to the
            wrapped pipeline's tracer so guard spans nest into the
            same timeline.
        metrics: optional registry for guard counters (probes, trips,
            fallbacks, rejections, breaker transitions) and probe-score
            gauges.  Defaults to the wrapped pipeline's registry.

    The guard never raises on bad input: sanitization failures and
    irrecoverably non-finite outputs come back as structured
    rejections (``result.rejected``), and everything else comes back
    with finite logits plus a log of any stage degradations.
    """

    def __init__(
        self,
        pipeline,
        policy: Optional[ValidationPolicy] = None,
        thresholds: Optional[GuardThresholds] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.pipeline = pipeline
        self.policy = policy or ValidationPolicy()
        self.thresholds = thresholds or GuardThresholds()
        self._rng = np.random.default_rng(seed)
        if tracer is None:
            tracer = getattr(pipeline, "tracer", None) or NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            metrics = getattr(pipeline, "metrics", None)
        self.metrics = metrics
        self.breakers: Dict[str, CircuitBreaker] = {
            stage: CircuitBreaker(
                self.thresholds.trip_limit, self.thresholds.cooldown
            )
            for stage in (STAGE_SAMPLING, STAGE_NEIGHBOR)
        }
        self.degradation_log: List[StageDegradation] = []
        self.batches_served = 0
        self.batches_rejected = 0

    # Telemetry helpers -------------------------------------------------

    _BREAKER_LEVELS = {"closed": 0.0, "half_open": 1.0, "open": 2.0}

    def _note_breaker(self, stage: str, before: str) -> None:
        """Count a breaker state transition and refresh its gauge."""
        registry = self.metrics
        if registry is None:
            return
        after = self.breakers[stage].state
        if after != before:
            registry.counter(
                "guard_breaker_transitions_total",
                stage=stage, from_state=before, to_state=after,
            ).inc()
        registry.gauge("guard_breaker_state", stage=stage).set(
            self._BREAKER_LEVELS[after]
        )

    def _count(self, name: str, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc()

    # Stage discovery ---------------------------------------------------

    def _guarded_stages(self) -> Tuple[str, ...]:
        """Stages whose approximation is both configured and reachable
        by the wrapped model."""
        config = self.pipeline.config
        stages = []
        samples = bool(config.sample_layers or config.upsample_layers)
        if samples and hasattr(self.pipeline.model, "sa_modules"):
            stages.append(STAGE_SAMPLING)
        neighbors = bool(
            config.neighbor_layers or config.reuse_distance
        )
        if neighbors:
            stages.append(STAGE_NEIGHBOR)
        return tuple(stages)

    # Probes ------------------------------------------------------------

    def _probe_set(self, cloud: np.ndarray) -> np.ndarray:
        n = cloud.shape[0]
        size = min(self.thresholds.probe_points, n)
        if size == n:
            return cloud
        picked = self._rng.choice(n, size=size, replace=False)
        return cloud[picked]

    def _run_probe(
        self, stage: str, probe: np.ndarray
    ) -> Tuple[float, float]:
        """Returns ``(metric, threshold)`` for one stage probe."""
        config = self.pipeline.config
        if stage == STAGE_SAMPLING:
            num_samples = min(
                self.thresholds.probe_samples, probe.shape[0]
            )
            metric = probe_sampling_uniformity(
                probe, num_samples, config.code_bits
            )
            return metric, self.thresholds.max_density_cv
        k = min(self.thresholds.probe_k, probe.shape[0])
        window = min(probe.shape[0], config.window_for(k))
        metric = probe_false_neighbor_rate(
            probe, k, window, config.code_bits
        )
        return metric, self.thresholds.max_false_neighbor_rate

    # Inference ---------------------------------------------------------

    def _run(self, xyz: np.ndarray, config: EdgePCConfig):
        """One pass of the wrapped pipeline under ``config``."""
        if config == self.pipeline.config:
            return self.pipeline.infer(xyz)
        saved = self.pipeline.config
        self.pipeline.config = config
        try:
            with swapped_config(self.pipeline.model, config):
                return self.pipeline.infer(xyz)
        finally:
            self.pipeline.config = saved

    def _reject(
        self,
        reason: str,
        degradations: List[StageDegradation],
        validation: List[ValidationReport],
    ) -> GuardedInferenceResult:
        self.batches_rejected += 1
        self._count("guard_rejections_total")
        return GuardedInferenceResult(
            result=None,
            rejected=True,
            rejection_reason=reason,
            degradations=degradations,
            validation=validation,
        )

    def infer(self, xyz: np.ndarray) -> GuardedInferenceResult:
        """Sanitize, probe, and run one batch — never raises on bad
        input; returns a structured rejection instead."""
        with self.tracer.span("guard.infer", "guard") as span:
            result = self._guarded_infer(xyz)
            span.set("rejected", result.rejected)
            span.set(
                "degraded_stages", list(result.degraded_stages)
            )
            return result

    def _probe_stage(
        self,
        stage: str,
        probe: np.ndarray,
        batch_index: int,
        degradations: List[StageDegradation],
    ) -> bool:
        """Probe one stage; returns True when it must run exact."""
        breaker = self.breakers[stage]
        reprobe = breaker.state == "open"
        before = breaker.state
        decision = breaker.before_batch()
        self._note_breaker(stage, before)
        if decision == "forced":
            self._count(
                "guard_fallbacks_total", stage=stage,
                reason="circuit_open",
            )
            degradations.append(
                StageDegradation(
                    stage, "circuit_open", float("nan"),
                    float("nan"), batch_index,
                )
            )
            return True
        # A half-open breaker means this probe is the cooldown
        # re-probe that decides whether the stage rejoins the
        # approximate path.
        reprobe = reprobe or before == "half_open"
        self._count("guard_probes_total", stage=stage)
        if reprobe:
            self._count("guard_reprobes_total", stage=stage)
        min_probe = max(2, self.thresholds.probe_k)
        if probe.shape[0] < min_probe:
            # Too few points for a meaningful probe; the exact
            # kernels are cheap at this size anyway.
            before = breaker.state
            breaker.record_trip()
            self._note_breaker(stage, before)
            self._count(
                "guard_fallbacks_total", stage=stage,
                reason="probe_underpopulated",
            )
            degradations.append(
                StageDegradation(
                    stage, "probe_tripped", float("nan"),
                    float(probe.shape[0]), batch_index,
                )
            )
            return True
        with self.tracer.span("guard.probe", "guard") as probe_span:
            probe_span.set("stage", stage)
            probe_span.set("reprobe", reprobe)
            metric, threshold = self._run_probe(stage, probe)
            probe_span.set("metric", metric)
            probe_span.set("threshold", threshold)
        if self.metrics is not None:
            self.metrics.gauge(
                "guard_probe_score", stage=stage
            ).set(metric)
        before = breaker.state
        if metric > threshold:
            breaker.record_trip()
            self._note_breaker(stage, before)
            self._count("guard_probe_trips_total", stage=stage)
            self._count(
                "guard_fallbacks_total", stage=stage,
                reason="probe_tripped",
            )
            degradations.append(
                StageDegradation(
                    stage, "probe_tripped", metric, threshold,
                    batch_index,
                )
            )
            return True
        breaker.record_pass()
        self._note_breaker(stage, before)
        return False

    def _guarded_infer(self, xyz: np.ndarray) -> GuardedInferenceResult:
        batch_index = self.batches_served + self.batches_rejected
        try:
            xyz, validation = sanitize_batch(xyz, self.policy)
        except CloudValidationError as err:
            return self._reject(str(err), [], [err.report])

        degradations: List[StageDegradation] = []
        exact: List[str] = []
        probe = self._probe_set(xyz[0])
        for stage in self._guarded_stages():
            if self._probe_stage(
                stage, probe, batch_index, degradations
            ):
                exact.append(stage)

        config = degraded_config(self.pipeline.config, tuple(exact))
        result = self._run(xyz, config)
        if not np.isfinite(result.logits).all():
            # Last-ditch: retry the whole batch on exact kernels.
            full_exact = degraded_config(
                self.pipeline.config,
                (STAGE_SAMPLING, STAGE_NEIGHBOR),
            )
            if config != full_exact:
                self._count(
                    "guard_fallbacks_total", stage="all",
                    reason="non_finite_logits",
                )
                degradations.append(
                    StageDegradation(
                        "all", "non_finite_logits", float("nan"),
                        float("nan"), batch_index,
                    )
                )
                config = full_exact
                with self.tracer.span("guard.retry_exact", "guard"):
                    result = self._run(xyz, config)
            if not np.isfinite(result.logits).all():
                self.degradation_log.extend(degradations)
                return self._reject(
                    "model produced non-finite logits even on exact "
                    "kernels",
                    degradations,
                    validation,
                )
        self.degradation_log.extend(degradations)
        self.batches_served += 1
        self._count("guard_batches_served_total")
        return GuardedInferenceResult(
            result=result,
            degradations=degradations,
            validation=validation,
            effective_config=config,
        )

    @property
    def breaker_states(self) -> Dict[str, str]:
        return {
            stage: breaker.state
            for stage, breaker in self.breakers.items()
        }
