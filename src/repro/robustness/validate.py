"""Input sanitization for point clouds entering the pipeline.

The paper's target deployments (AR/VR headsets, LiDAR streams,
Sec. 2.1.1) feed the pipeline sensor frames that are routinely
degenerate: NaN returns from absorbing surfaces, empty sweeps, points
far outside the calibrated scene box, frames collapsed onto a single
voxel by a stuck sensor.  :func:`sanitize_cloud` is the single boundary
where those pathologies are detected and either rejected, repaired, or
clamped — everything past this boundary may assume a finite, correctly
shaped ``(N, 3)`` float cloud.

This module deliberately depends only on NumPy and
:mod:`repro.geometry.bbox` so that low-level consumers
(:class:`~repro.core.streaming.StreamingMortonOrder`, the dataset
loaders) can call it without inverting the dependency layering.  The
online quality guards built on top live in
:mod:`repro.robustness.guard`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.geometry.bbox import BoundingBox

#: The three sanitization policies.
POLICY_ACTIONS = ("reject", "repair", "clamp")

#: Issue kinds a report may carry.
ISSUE_KINDS = (
    "bad_dtype",
    "bad_shape",
    "extra_channels",
    "non_finite",
    "out_of_box",
    "undersized",
    "duplicate_collapse",
)


@dataclass(frozen=True)
class ValidationPolicy:
    """How the sanitization boundary treats invalid input.

    Attributes:
        on_invalid: ``"reject"`` raises :class:`CloudValidationError`
            on any fixable issue; ``"repair"`` drops offending points;
            ``"clamp"`` pulls offending coordinates back into the
            bounding box instead of dropping the point.
        min_points: clouds smaller than this (after any repair) are
            always rejected — no policy can invent points.
        bounding_box: optional calibrated scene box.  When given,
            points outside it are treated per ``on_invalid``; when
            ``None`` the out-of-box check is skipped.
        min_unique_fraction: if the fraction of distinct points drops
            below this, the cloud is flagged as duplicate-collapsed
            (a stuck sensor emitting one return).  0 disables the
            check except for the always-on "all points identical"
            case.
    """

    on_invalid: str = "reject"
    min_points: int = 1
    bounding_box: Optional[BoundingBox] = None
    min_unique_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.on_invalid not in POLICY_ACTIONS:
            raise ValueError(
                f"on_invalid must be one of {POLICY_ACTIONS}, "
                f"got {self.on_invalid!r}"
            )
        if self.min_points < 1:
            raise ValueError("min_points must be positive")
        if not 0.0 <= self.min_unique_fraction <= 1.0:
            raise ValueError("min_unique_fraction must be in [0, 1]")

    @classmethod
    def reject(cls, **kwargs) -> "ValidationPolicy":
        return cls(on_invalid="reject", **kwargs)

    @classmethod
    def repair(cls, **kwargs) -> "ValidationPolicy":
        return cls(on_invalid="repair", **kwargs)

    @classmethod
    def clamp(cls, **kwargs) -> "ValidationPolicy":
        return cls(on_invalid="clamp", **kwargs)


@dataclass(frozen=True)
class ValidationIssue:
    """One detected pathology and what was done about it."""

    kind: str
    count: int
    action: str  # "rejected" | "dropped" | "clamped" | "flagged"
    detail: str = ""

    def __str__(self) -> str:
        base = f"{self.kind}: {self.count} point(s) {self.action}"
        return f"{base} ({self.detail})" if self.detail else base


@dataclass
class ValidationReport:
    """Structured outcome of one :func:`sanitize_cloud` call."""

    n_input: int
    n_output: int
    issues: List[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when the cloud passed through untouched."""
        return not self.issues

    @property
    def dropped(self) -> int:
        return self.n_input - self.n_output

    def add(self, kind: str, count: int, action: str, detail: str = ""):
        self.issues.append(ValidationIssue(kind, count, action, detail))

    def summary(self) -> str:
        if self.ok:
            return f"clean cloud of {self.n_input} points"
        return (
            f"{self.n_input} -> {self.n_output} points; "
            + "; ".join(str(issue) for issue in self.issues)
        )


class CloudValidationError(ValueError):
    """Raised when a cloud cannot (or must not) be sanitized.

    Carries the partial :class:`ValidationReport` so callers can turn
    the failure into a structured rejection instead of a crash.
    """

    def __init__(self, message: str, report: ValidationReport) -> None:
        super().__init__(message)
        self.report = report


def count_non_finite(points: np.ndarray) -> int:
    """Number of points with at least one NaN/Inf coordinate."""
    points = np.asarray(points)
    if points.size == 0:
        return 0
    return int((~np.isfinite(points).all(axis=-1)).sum())


def ensure_finite(points: np.ndarray, name: str = "points") -> None:
    """Raise a count-bearing ``ValueError`` on non-finite coordinates."""
    bad = count_non_finite(points)
    if bad:
        raise ValueError(
            f"{name}: {bad} of {np.asarray(points).shape[0]} points "
            "have non-finite coordinates"
        )


def _reject(report: ValidationReport, message: str) -> None:
    raise CloudValidationError(message, report)


def sanitize_cloud(
    points: np.ndarray,
    policy: Optional[ValidationPolicy] = None,
) -> Tuple[np.ndarray, ValidationReport]:
    """Sanitize one ``(N, 3)`` cloud according to ``policy``.

    Returns ``(cleaned_points, report)``.  Raises
    :class:`CloudValidationError` when the policy is ``reject`` and an
    issue is found, or — under any policy — when the cloud is
    unusable (wrong dtype, wrong shape, fewer than ``min_points``
    points after repair).
    """
    policy = policy or ValidationPolicy()
    try:
        arr = np.asarray(points)
        if arr.dtype == object or not np.issubdtype(
            arr.dtype, np.number
        ):
            raise TypeError
        arr = arr.astype(np.float64)
    except (TypeError, ValueError):
        report = ValidationReport(0, 0)
        report.add("bad_dtype", 0, "rejected", "non-numeric data")
        _reject(report, "cloud is not a numeric array")
    report = ValidationReport(
        n_input=arr.shape[0] if arr.ndim >= 1 else 0, n_output=0
    )
    # Shape: (N, 3) required; extra channels (LiDAR intensity etc.)
    # are sliced off under repair/clamp, rejected under reject.
    if arr.ndim != 2 or arr.shape[-1] < 3:
        report.add("bad_shape", 0, "rejected", f"shape {arr.shape}")
        _reject(
            report, f"expected an (N, 3) cloud, got shape {arr.shape}"
        )
    if arr.shape[1] > 3:
        if policy.on_invalid == "reject":
            report.add(
                "extra_channels", arr.shape[0], "rejected",
                f"{arr.shape[1]} columns",
            )
            _reject(
                report,
                f"expected 3 coordinate columns, got {arr.shape[1]}",
            )
        report.add(
            "extra_channels", arr.shape[0], "clamped",
            f"kept first 3 of {arr.shape[1]} columns",
        )
        arr = arr[:, :3]

    # Non-finite coordinates ------------------------------------------
    finite_rows = np.isfinite(arr).all(axis=1)
    bad = int((~finite_rows).sum())
    if bad:
        if policy.on_invalid == "reject":
            report.add("non_finite", bad, "rejected")
            _reject(
                report,
                f"{bad} of {arr.shape[0]} points have non-finite "
                "coordinates",
            )
        elif policy.on_invalid == "repair":
            arr = arr[finite_rows]
            report.add("non_finite", bad, "dropped")
        else:  # clamp: NaN -> box center, +/-Inf -> box faces.
            box = policy.bounding_box
            if box is None:
                if not finite_rows.any():
                    report.add("non_finite", bad, "rejected")
                    _reject(
                        report,
                        "no finite points to derive a clamp box from",
                    )
                box = BoundingBox.of_points(arr[finite_rows])
            arr = arr.copy()
            nan_mask = np.isnan(arr)
            center = np.broadcast_to(box.center, arr.shape)
            arr[nan_mask] = center[nan_mask]
            arr = np.clip(arr, box.minimum, box.maximum)
            report.add("non_finite", bad, "clamped")

    # Out-of-box points (only with a calibrated box) ------------------
    if policy.bounding_box is not None and arr.shape[0]:
        inside = policy.bounding_box.contains(arr)
        outside = int((~inside).sum())
        if outside:
            if policy.on_invalid == "reject":
                report.add("out_of_box", outside, "rejected")
                _reject(
                    report,
                    f"{outside} of {arr.shape[0]} points fall outside "
                    "the calibrated bounding box",
                )
            elif policy.on_invalid == "repair":
                arr = arr[inside]
                report.add("out_of_box", outside, "dropped")
            else:
                arr = np.clip(
                    arr,
                    policy.bounding_box.minimum,
                    policy.bounding_box.maximum,
                )
                report.add("out_of_box", outside, "clamped")

    # Size floor: no policy can invent points -------------------------
    if arr.shape[0] < policy.min_points:
        report.n_output = arr.shape[0]
        report.add(
            "undersized", arr.shape[0], "rejected",
            f"minimum is {policy.min_points}",
        )
        _reject(
            report,
            f"cloud holds {arr.shape[0]} usable point(s), "
            f"need at least {policy.min_points}",
        )

    # Duplicate collapse ----------------------------------------------
    if arr.shape[0] >= 2:
        unique = np.unique(arr, axis=0).shape[0]
        collapsed_to_one = unique == 1
        below_floor = (
            policy.min_unique_fraction > 0
            and unique / arr.shape[0] < policy.min_unique_fraction
        )
        if collapsed_to_one or below_floor:
            detail = f"{unique} distinct of {arr.shape[0]}"
            if policy.on_invalid == "reject":
                report.add(
                    "duplicate_collapse", arr.shape[0] - unique,
                    "rejected", detail,
                )
                _reject(
                    report,
                    f"cloud is duplicate-collapsed ({detail})",
                )
            # Repair/clamp cannot add information; flag and continue
            # (downstream kernels tolerate duplicates).
            report.add(
                "duplicate_collapse", arr.shape[0] - unique,
                "flagged", detail,
            )

    report.n_output = arr.shape[0]
    return arr, report


def sanitize_batch(
    xyz: np.ndarray,
    policy: Optional[ValidationPolicy] = None,
) -> Tuple[np.ndarray, List[ValidationReport]]:
    """Sanitize a ``(B, N, 3)`` batch, preserving its rectangular shape.

    Each cloud is sanitized independently.  When repair drops points,
    the cloud is padded back to ``N`` by cycling its surviving points
    (a duplicate is harmless to the max-pooled aggregations, whereas a
    ragged batch would break every downstream kernel).  Raises
    :class:`CloudValidationError` if any cloud is unusable.
    """
    policy = policy or ValidationPolicy()
    arr = np.asarray(xyz)
    if arr.ndim != 3 or arr.shape[-1] < 3:
        report = ValidationReport(0, 0)
        report.add("bad_shape", 0, "rejected", f"shape {arr.shape}")
        _reject(
            report, f"expected a (B, N, 3) batch, got shape {arr.shape}"
        )
    n = arr.shape[1]
    cleaned = []
    reports = []
    for b in range(arr.shape[0]):
        cloud, report = sanitize_cloud(arr[b], policy)
        if cloud.shape[0] < n:
            pad = np.take(
                cloud,
                np.arange(n - cloud.shape[0]) % cloud.shape[0],
                axis=0,
            )
            cloud = np.concatenate([cloud, pad])
            report.add(
                "undersized", n - report.n_output, "clamped",
                "padded by cycling surviving points",
            )
            report.n_output = n
        cleaned.append(cloud)
        reports.append(report)
    return np.stack(cleaned), reports
