"""Guarded inference: sanitization, quality probes, fault injection.

Three pieces (see docs/architecture.md, "Failure modes & graceful
degradation"):

- :mod:`repro.robustness.validate` — the single input-sanitization
  boundary (``sanitize_cloud`` / ``ValidationPolicy``);
- :mod:`repro.robustness.guard` — ``GuardedPipeline``, the online
  quality probes and the per-stage exact-kernel fallback with a
  circuit breaker;
- :mod:`repro.robustness.faults` — the deterministic fault-injection
  harness driving the robustness test matrix;
- :mod:`repro.robustness.lockwatch` — the runtime lock-order
  sanitizer cross-validating the serving stack against the static
  CONC-502 lock-order graph (loaded lazily, test infrastructure).

``validate`` and ``faults`` depend only on NumPy and geometry, so
low-level modules (``core.streaming``, the dataset loaders) may import
them without inverting the dependency layering.  ``guard`` sits at the
top of the stack (it imports the samplers and searchers), so it is
loaded lazily on first attribute access.
"""

from repro.robustness.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    standard_faults,
)
from repro.robustness.validate import (
    CloudValidationError,
    ValidationIssue,
    ValidationPolicy,
    ValidationReport,
    count_non_finite,
    ensure_finite,
    sanitize_batch,
    sanitize_cloud,
)

_LOCKWATCH_EXPORTS = frozenset(
    {
        "LockOrderViolation",
        "LockOrderWatchdog",
        "static_lock_order",
    }
)

_GUARD_EXPORTS = frozenset(
    {
        "CircuitBreaker",
        "GuardThresholds",
        "GuardedInferenceResult",
        "GuardedPipeline",
        "StageDegradation",
        "degraded_config",
        "probe_false_neighbor_rate",
        "probe_sampling_uniformity",
        "swapped_config",
    }
)

__all__ = [
    "ValidationPolicy",
    "ValidationIssue",
    "ValidationReport",
    "CloudValidationError",
    "sanitize_cloud",
    "sanitize_batch",
    "count_non_finite",
    "ensure_finite",
    "FaultSpec",
    "FaultInjector",
    "standard_faults",
    "FAULT_KINDS",
    *sorted(_GUARD_EXPORTS),
    *sorted(_LOCKWATCH_EXPORTS),
]


def __getattr__(name):
    if name in _GUARD_EXPORTS:
        from repro.robustness import guard

        return getattr(guard, name)
    if name in _LOCKWATCH_EXPORTS:
        # Lazy like guard: lockwatch pulls in the lint analyzer for
        # the static graph, which plain validation users never need.
        from repro.robustness import lockwatch

        return getattr(lockwatch, name)
    raise AttributeError(
        f"module 'repro.robustness' has no attribute {name!r}"
    )
