"""Deterministic fault injection for robustness testing.

Models the sensor pathologies the guarded pipeline must survive
(Sec. 2.1.1's AR/VR and LiDAR deployments): NaN returns, dropped
points, saturated axes, truncated sweeps, and duplicate storms from a
stuck emitter.  Every fault is seeded per ``(injector seed, spec
name)`` so a failing matrix entry reproduces bit-for-bit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: The supported fault kinds.
FAULT_KINDS = (
    "nan_salt",         # random coordinates replaced by NaN
    "inf_salt",         # random coordinates replaced by +/-Inf
    "dropout",          # random points removed
    "axis_saturation",  # one axis railed to +/-magnitude
    "frame_truncation", # the tail of the frame never arrives
    "duplicate_storm",  # points replaced by copies of one return
)


@dataclass(frozen=True)
class FaultSpec:
    """One reproducible fault to inject.

    Attributes:
        name: unique label; also salts the fault's random stream.
        kind: one of :data:`FAULT_KINDS`.
        fraction: fraction of points (or coordinates) affected.
        axis: target axis for ``axis_saturation``.
        magnitude: rail value for ``axis_saturation``.
    """

    name: str
    kind: str
    fraction: float = 0.1
    axis: int = 0
    magnitude: float = 1e9

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {FAULT_KINDS}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if self.axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1, or 2")
        if self.magnitude <= 0:
            raise ValueError("magnitude must be positive")


def standard_faults() -> Tuple[FaultSpec, ...]:
    """The fault matrix the robustness suite drives end-to-end."""
    return (
        FaultSpec("nan_salting", "nan_salt", fraction=0.05),
        FaultSpec("heavy_nan_salting", "nan_salt", fraction=0.5),
        FaultSpec("inf_salting", "inf_salt", fraction=0.05),
        FaultSpec("point_dropout", "dropout", fraction=0.3),
        FaultSpec(
            "axis_saturation", "axis_saturation",
            fraction=0.2, axis=2, magnitude=1e9,
        ),
        FaultSpec("frame_truncation", "frame_truncation", fraction=0.75),
        FaultSpec("empty_sweep", "frame_truncation", fraction=1.0),
        FaultSpec("duplicate_storm", "duplicate_storm", fraction=0.9),
    )


class FaultInjector:
    """Applies :class:`FaultSpec`\\ s to clouds, deterministically.

    The random stream for a fault depends only on the injector seed
    and the spec's name — not on call order — so individual matrix
    entries can be reproduced in isolation.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def _rng(self, spec: FaultSpec) -> np.random.Generator:
        return np.random.default_rng(
            (self.seed, zlib.crc32(spec.name.encode("utf-8")))
        )

    def apply(self, points: np.ndarray, spec: FaultSpec) -> np.ndarray:
        """Return a faulted copy of an ``(N, 3)`` cloud.

        ``dropout`` and ``frame_truncation`` change the point count;
        the other kinds preserve it.
        """
        points = np.array(points, dtype=np.float64, copy=True)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(
                f"expected (N, 3) points, got {points.shape}"
            )
        n = points.shape[0]
        if n == 0:
            return points
        rng = self._rng(spec)
        if spec.kind in ("nan_salt", "inf_salt"):
            hit = rng.random(n) < spec.fraction
            coords = rng.integers(0, 3, size=n)
            if spec.kind == "nan_salt":
                values = np.full(n, np.nan)
            else:
                values = np.where(rng.random(n) < 0.5, -np.inf, np.inf)
            rows = np.flatnonzero(hit)
            points[rows, coords[rows]] = values[rows]
        elif spec.kind == "dropout":
            keep = max(1, int(round(n * (1.0 - spec.fraction))))
            kept = np.sort(rng.choice(n, size=keep, replace=False))
            points = points[kept]
        elif spec.kind == "axis_saturation":
            hit = np.flatnonzero(rng.random(n) < spec.fraction)
            sign = np.where(rng.random(hit.shape[0]) < 0.5, -1.0, 1.0)
            points[hit, spec.axis] = sign * spec.magnitude
        elif spec.kind == "frame_truncation":
            keep = int(np.floor(n * (1.0 - spec.fraction)))
            points = points[:keep]
        elif spec.kind == "duplicate_storm":
            source = int(rng.integers(n)) if n else 0
            hit = np.flatnonzero(rng.random(n) < spec.fraction)
            points[hit] = points[source]
        return points

    def apply_batch(
        self, xyz: np.ndarray, spec: FaultSpec
    ) -> np.ndarray:
        """Fault every cloud of a ``(B, N, 3)`` batch.

        Count-changing faults remove the same rows from every cloud so
        the result stays rectangular.
        """
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"expected (B, N, 3), got {xyz.shape}")
        return np.stack(
            [self.apply(xyz[b], spec) for b in range(xyz.shape[0])]
        )
