"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``workloads`` — print the Table 1 workload definitions;
- ``profile``  — per-stage latency breakdown of a workload under a
  configuration (Fig. 3 view);
- ``compare``  — baseline-vs-EdgePC speedups and energy for one or all
  workloads (Fig. 13 view);
- ``sample``   — run a real sampler (fps / morton / uniform) on a
  point-cloud file and write the result;
- ``sweep``    — the Fig. 15a window-size sensitivity table on a file
  or a synthetic cloud;
- ``report``   — the one-shot headline summary: Fig. 3 breakdown,
  Fig. 13 speedups/energy for all configs, and Table 2.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import format_breakdown_row, format_comparison_row
from repro.core import EdgePCConfig, MortonSampler
from repro.core.dse import explore_window_sizes
from repro.geometry import io as pc_io
from repro.runtime import PipelineProfiler, compare
from repro.sampling import farthest_point_sample, uniform_sample
from repro.workloads import standard_workloads, trace

CONFIGS = {
    "baseline": EdgePCConfig.baseline,
    "edgepc": EdgePCConfig.paper_default,
    "tensorcores": EdgePCConfig.paper_with_tensor_cores,
    "insights": EdgePCConfig.with_architectural_insights,
}


def _resolve_workloads(name: str):
    specs = standard_workloads()
    if name == "all":
        return specs
    if name not in specs:
        raise SystemExit(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(specs)} or 'all'"
        )
    return {name: specs[name]}


def cmd_workloads(args: argparse.Namespace) -> int:
    print(
        f"{'Workload':<10}{'Model':<12}{'Dataset':<13}"
        f"{'Points':>8}{'Batch':>7}  Task"
    )
    for name, spec in standard_workloads().items():
        print(
            f"{name:<10}{spec.model:<12}{spec.dataset:<13}"
            f"{spec.points_per_batch:>8}{spec.batch_size:>7}  "
            f"{spec.task.replace('_', ' ')}"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    config = CONFIGS[args.config]()
    profiler = PipelineProfiler()
    for name, spec in _resolve_workloads(args.workload).items():
        breakdown = profiler.breakdown(trace(spec, config), config)
        print(
            format_breakdown_row(
                f"{name} ({args.config})", breakdown
            )
        )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = EdgePCConfig.baseline()
    optimized = CONFIGS[args.config]()
    if optimized.is_baseline:
        raise SystemExit("compare needs a non-baseline --config")
    profiler = PipelineProfiler()
    for name, spec in _resolve_workloads(args.workload).items():
        report = compare(
            profiler,
            trace(spec, baseline), baseline,
            trace(spec, optimized), optimized,
        )
        print(format_comparison_row(name, report))
    return 0


def cmd_sample(args: argparse.Namespace) -> int:
    from repro.geometry.points import PointCloud
    from repro.robustness import (
        CloudValidationError,
        ValidationPolicy,
        sanitize_cloud,
    )

    cloud = pc_io.load(args.input)
    policy = ValidationPolicy(
        on_invalid=args.validation_policy,
        min_points=args.num_samples,
    )
    try:
        xyz, report = sanitize_cloud(cloud.xyz, policy)
    except CloudValidationError as err:
        raise SystemExit(f"input rejected: {err}")
    if not report.ok:
        print(f"sanitized input: {report.summary()}")
        if report.dropped:
            # Point identities changed; per-point labels no longer line
            # up, so continue with coordinates only.
            cloud = PointCloud(xyz)
        else:
            cloud = PointCloud(xyz, labels=cloud.labels)
    n = args.num_samples
    if not 1 <= n <= len(cloud):
        raise SystemExit(
            f"--num-samples must be in [1, {len(cloud)}]"
        )
    if args.method == "fps":
        indices = farthest_point_sample(cloud.xyz, n, start_index=0)
    elif args.method == "morton":
        indices = MortonSampler().sample(cloud.xyz, n).indices
        if args.guard:
            from repro.sampling.quality import density_uniformity

            cv = density_uniformity(cloud.xyz, indices)
            if cv > args.guard_threshold:
                print(
                    f"guard: Morton sample density CV {cv:.2f} "
                    f"exceeds {args.guard_threshold:.2f}; "
                    "falling back to exact FPS"
                )
                indices = farthest_point_sample(
                    cloud.xyz, n, start_index=0
                )
            else:
                print(
                    f"guard: Morton sample density CV {cv:.2f} "
                    f"within {args.guard_threshold:.2f}"
                )
    else:
        indices = uniform_sample(cloud.xyz, n)
    sampled = cloud.select(indices)
    pc_io.save(sampled, args.output)
    print(
        f"sampled {n} of {len(cloud)} points with {args.method} -> "
        f"{args.output}"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.input:
        cloud = pc_io.load(args.input).xyz
    else:
        rng = np.random.default_rng(args.seed)
        cloud = rng.random((args.points, 3))
    rng = np.random.default_rng(args.seed)
    queries = rng.choice(
        len(cloud), min(len(cloud), 512), replace=False
    )
    points = explore_window_sizes(
        cloud, k=args.k,
        multipliers=(1, 2, 4, 8, 16),
        query_indices=queries,
    )
    print(f"{'W':>6}{'FNR':>9}{'speedup':>10}")
    for p in points:
        print(
            f"{p.window:>6}{p.false_neighbor_ratio * 100:>8.1f}%"
            f"{p.search_speedup:>9.1f}x"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    profiler = PipelineProfiler()
    baseline = EdgePCConfig.baseline()
    specs = standard_workloads()

    print("=== Baseline latency breakdown (Fig. 3) ===")
    for name, spec in specs.items():
        breakdown = profiler.breakdown(
            trace(spec, baseline), baseline
        )
        print(format_breakdown_row(name, breakdown))

    for label in ("edgepc", "tensorcores", "insights"):
        config = CONFIGS[label]()
        print(f"\n=== {label} vs baseline (Fig. 13) ===")
        sn, e2e, energy = [], [], []
        for name, spec in specs.items():
            report = compare(
                profiler,
                trace(spec, baseline), baseline,
                trace(spec, config), config,
            )
            sn.append(report.sample_neighbor_speedup)
            e2e.append(report.end_to_end_speedup)
            energy.append(report.energy_saving_fraction)
            print(format_comparison_row(name, report))
        print(
            f"avg   S+N {sum(sn) / len(sn):5.2f}x | "
            f"E2E {sum(e2e) / len(e2e):5.2f}x | "
            f"energy saved {sum(energy) / len(energy) * 100:5.1f}%"
        )

    from repro.baselines import as_table

    print("\n=== Prior-work comparison (Table 2) ===")
    print(as_table())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EdgePC reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "workloads", help="print the Table 1 workloads"
    ).set_defaults(func=cmd_workloads)

    profile = sub.add_parser(
        "profile", help="per-stage latency breakdown (Fig. 3 view)"
    )
    profile.add_argument("--workload", default="all")
    profile.add_argument(
        "--config", default="baseline", choices=sorted(CONFIGS)
    )
    profile.set_defaults(func=cmd_profile)

    comp = sub.add_parser(
        "compare", help="baseline vs EdgePC (Fig. 13 view)"
    )
    comp.add_argument("--workload", default="all")
    comp.add_argument(
        "--config", default="edgepc", choices=sorted(CONFIGS)
    )
    comp.set_defaults(func=cmd_compare)

    sample = sub.add_parser(
        "sample", help="down-sample a .ply/.xyz point cloud"
    )
    sample.add_argument("input")
    sample.add_argument("output")
    sample.add_argument(
        "--method", default="morton",
        choices=("fps", "morton", "uniform"),
    )
    sample.add_argument(
        "-n", "--num-samples", type=int, default=1024
    )
    sample.add_argument(
        "--validation-policy", default="reject",
        choices=("reject", "repair", "clamp"),
        help="how to treat degenerate input clouds",
    )
    sample.add_argument(
        "--guard", action="store_true",
        help="fall back to exact FPS when the Morton sample's "
        "density-uniformity probe trips",
    )
    sample.add_argument(
        "--guard-threshold", type=float, default=1.5,
        help="density-uniformity CV above which --guard trips",
    )
    sample.set_defaults(func=cmd_sample)

    sweep = sub.add_parser(
        "sweep", help="window-size sensitivity (Fig. 15a view)"
    )
    sweep.add_argument("--input", default=None)
    sweep.add_argument("--points", type=int, default=2048)
    sweep.add_argument("--k", type=int, default=16)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "report", help="one-shot headline summary of all experiments"
    ).set_defaults(func=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
