"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``workloads`` — print the Table 1 workload definitions;
- ``profile``  — per-stage latency breakdown of a workload under a
  configuration (Fig. 3 view);
- ``compare``  — baseline-vs-EdgePC speedups and energy for one or all
  workloads (Fig. 13 view);
- ``sample``   — run a real sampler (fps / morton / uniform) on a
  point-cloud file and write the result;
- ``sweep``    — the Fig. 15a window-size sensitivity table on a file
  or a synthetic cloud;
- ``report``   — the one-shot headline summary: Fig. 3 breakdown,
  Fig. 13 speedups/energy for all configs, and Table 2;
- ``trace``    — run a traced workload smoke and export Chrome
  ``trace_event`` / JSONL spans, a metrics snapshot, a merged run
  report, and a BENCH per-stage-medians file;
- ``metrics``  — print the metrics snapshot of a workload smoke in
  Prometheus text or JSON form;
- ``bench``    — time the batched kernels against per-cloud loops and
  optionally gate against a committed ``BENCH_kernels.json`` baseline;
- ``serve``    — threaded micro-batching serving demo: submit a burst
  of seeded clouds to an in-process :class:`InferenceServer` (or a
  :class:`ServerFleet` with ``--replicas``), drain gracefully, and
  print the serving counters;
- ``loadgen``  — deterministic virtual-time load generation against an
  in-process server or replica fleet; reports admission decisions,
  batch-size histogram, latency percentiles, and goodput (see
  ``docs/serving.md``);
- ``chaos``    — deterministic fault injection: drive load against a
  replica fleet while killing/stalling/slowing replicas on a virtual
  schedule, gate p95/goodput against ``BENCH_serving.json``, and
  optionally evaluate an SLO spec (``--slo``) and write the dashboard
  artifact bundle (``--artifacts-dir``);
- ``dashboard`` — render the deterministic text dashboard (fleet
  health, queue depths, SLO budgets, slowest traces) from the
  artifacts a chaos/loadgen run saved;
- ``lint``     — project-aware static analysis.

``profile``, ``compare``, and ``sample`` additionally accept
``--trace-out`` / ``--metrics-out`` to export the telemetry of that
invocation; ``sample`` runs without positional arguments on a seeded
synthetic cloud, and with ``--guard`` it runs a guarded demo inference
and prints the degradation log and per-stage breaker states.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple

import numpy as np

from repro.analysis import format_breakdown_row, format_comparison_row
from repro.core import EdgePCConfig, MortonSampler
from repro.core.dse import explore_window_sizes
from repro.geometry import io as pc_io
from repro.observability import (
    MetricsRegistry,
    NULL_TRACER,
    RunReport,
    Tracer,
    emit_stage_spans,
)
from repro.runtime import PipelineProfiler, compare
from repro.sampling import farthest_point_sample, uniform_sample
from repro.workloads import standard_workloads, trace

CONFIGS = {
    "baseline": EdgePCConfig.baseline,
    "edgepc": EdgePCConfig.paper_default,
    "tensorcores": EdgePCConfig.paper_with_tensor_cores,
    "insights": EdgePCConfig.with_architectural_insights,
}


def _resolve_workloads(name: str):
    specs = standard_workloads()
    if name == "all":
        return specs
    if name not in specs:
        raise SystemExit(
            f"unknown workload {name!r}; choose from "
            f"{', '.join(specs)} or 'all'"
        )
    return {name: specs[name]}


# Telemetry plumbing ---------------------------------------------------------


def _telemetry(args, clock=None) -> Tuple[Tracer, MetricsRegistry]:
    """Tracer/registry pair for one CLI invocation.

    The tracer is enabled only when the invocation exports somewhere
    (``--trace-out`` or ``--artifacts-dir``), so un-instrumented runs
    stay on the no-op path.  Virtual-time commands pass their
    ``FixedClock`` so span timestamps live on the simulated timeline
    and exports are byte-identical per seed.
    """
    wants_trace = bool(
        getattr(args, "trace_out", None)
        or getattr(args, "artifacts_dir", None)
    )
    if not wants_trace:
        return NULL_TRACER, MetricsRegistry()
    tracer = Tracer(clock=clock) if clock is not None else Tracer()
    return tracer, MetricsRegistry()


def _export_telemetry(args, tracer: Tracer, registry) -> None:
    if getattr(args, "trace_out", None):
        tracer.export_chrome(args.trace_out)
        print(f"wrote Chrome trace -> {args.trace_out}")
    if getattr(args, "metrics_out", None):
        registry.export_json(args.metrics_out)
        print(f"wrote metrics snapshot -> {args.metrics_out}")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write a Chrome trace_event file of this run "
        "(open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="FILE",
        help="write the JSON metrics snapshot of this run",
    )


def _record_workload_metrics(
    registry, workload: str, breakdown, energy, recorder
) -> None:
    """Fold one priced workload trace into the registry (mirrors the
    metric names :class:`~repro.pipeline.EdgePCPipeline` emits)."""
    registry.counter(
        "pipeline_batches_total", workload=workload
    ).inc()
    for stage, seconds in (
        ("sample", breakdown.sample_s),
        ("neighbor_search", breakdown.neighbor_s),
        ("grouping", breakdown.grouping_s),
        ("feature_compute", breakdown.feature_s),
    ):
        registry.histogram(
            "pipeline_stage_latency_seconds", stage=stage
        ).observe(seconds)
    registry.histogram("pipeline_batch_latency_seconds").observe(
        breakdown.total_s
    )
    registry.counter("pipeline_energy_joules_total").inc(
        energy.total_j
    )
    reuse_hits = sum(1 for e in recorder if e.op == "reuse")
    if reuse_hits:
        registry.counter("neighbor_reuse_hits_total").inc(reuse_hits)


def _smoke_workloads(
    workload: str, config_label: str, tracer: Tracer, registry
):
    """Price the selected Table 1 workloads under one config, emitting
    spans and metrics; returns ``[(name, breakdown, energy)]``."""
    config = CONFIGS[config_label]()
    profiler = PipelineProfiler()
    results = []
    for name, spec in _resolve_workloads(workload).items():
        with tracer.span(f"workload.{name}", "workload") as span:
            recorder = trace(spec, config)
            breakdown = profiler.breakdown(recorder, config)
            energy = profiler.energy(recorder, config)
            span.set("config", config_label)
            span.set("ops", len(recorder))
            span.add_cost(breakdown.total_s)
        emit_stage_spans(tracer, breakdown)
        _record_workload_metrics(
            registry, name, breakdown, energy, recorder
        )
        results.append((name, breakdown, energy))
    return results


def cmd_workloads(args: argparse.Namespace) -> int:
    print(
        f"{'Workload':<10}{'Model':<12}{'Dataset':<13}"
        f"{'Points':>8}{'Batch':>7}  Task"
    )
    for name, spec in standard_workloads().items():
        print(
            f"{name:<10}{spec.model:<12}{spec.dataset:<13}"
            f"{spec.points_per_batch:>8}{spec.batch_size:>7}  "
            f"{spec.task.replace('_', ' ')}"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    tracer, registry = _telemetry(args)
    results = _smoke_workloads(
        args.workload, args.config, tracer, registry
    )
    for name, breakdown, _ in results:
        print(
            format_breakdown_row(
                f"{name} ({args.config})", breakdown
            )
        )
    _export_telemetry(args, tracer, registry)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    baseline = EdgePCConfig.baseline()
    optimized = CONFIGS[args.config]()
    if optimized.is_baseline:
        raise SystemExit("compare needs a non-baseline --config")
    tracer, registry = _telemetry(args)
    profiler = PipelineProfiler()
    for name, spec in _resolve_workloads(args.workload).items():
        with tracer.span(f"compare.{name}", "workload") as span:
            report = compare(
                profiler,
                trace(spec, baseline), baseline,
                trace(spec, optimized), optimized,
            )
            span.set("config", args.config)
            span.add_cost(report.optimized.total_s)
        emit_stage_spans(tracer, report.optimized)
        registry.gauge(
            "compare_end_to_end_speedup", workload=name
        ).set(report.end_to_end_speedup)
        registry.gauge(
            "compare_energy_saving_fraction", workload=name
        ).set(report.energy_saving_fraction)
        print(format_comparison_row(name, report))
    _export_telemetry(args, tracer, registry)
    return 0


def _guarded_demo(
    cloud_xyz: np.ndarray,
    tracer: Tracer,
    registry,
    guard: bool,
    seed: int,
) -> None:
    """Traced demo inference for ``sample --trace-out/--metrics-out``:
    streams the cloud through a :class:`StreamingMortonOrder`, then
    runs one (optionally guarded) profiled batch through a small
    PointNet++ pipeline so the exported trace carries the full
    sample/neighbor/grouping/feature stage timeline."""
    from repro.core.streaming import StreamingMortonOrder
    from repro.geometry.bbox import BoundingBox
    from repro.nn import PointNet2Segmentation, SAConfig
    from repro.pipeline import EdgePCPipeline
    from repro.robustness.guard import GuardedPipeline

    # Touch the headline counters so the snapshot always carries the
    # guard/validation/streaming series, even when they stayed at 0.
    registry.counter("validation_repairs_total")
    registry.counter("validation_rejects_total")
    registry.counter("guard_rejections_total")
    registry.counter("streaming_evictions_total")

    with tracer.span("demo.stream", "streaming") as span:
        margin = 1e-6
        box = BoundingBox(
            cloud_xyz.min(axis=0) - margin,
            cloud_xyz.max(axis=0) + margin,
        )
        stream = StreamingMortonOrder(box, metrics=registry)
        for chunk in np.array_split(cloud_xyz, 4):
            stream.insert(chunk)
        stream.remove_oldest_duplicates()
        span.set("points", len(stream))

    model = PointNet2Segmentation(
        num_classes=4,
        sa_configs=(
            SAConfig(0.5, 4, 1.5, (8, 8)),
            SAConfig(0.5, 4, 3.0, (16, 16)),
        ),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )
    pipeline = EdgePCPipeline(model, tracer=tracer, metrics=registry)
    batch = stream.points[: min(128, len(stream))][None, :, :]
    if not guard:
        pipeline.infer(batch)
        return
    guarded = GuardedPipeline(pipeline, seed=seed)
    result = guarded.infer(batch)
    states = " ".join(
        f"{stage}={state}"
        for stage, state in guarded.breaker_states.items()
    )
    print(f"guard: breaker states: {states}")
    if guarded.degradation_log:
        print("guard: degradation log:")
        for entry in guarded.degradation_log:
            print(f"guard:   {entry}")
    else:
        print("guard: degradation log: empty (no fallbacks)")
    if result.rejected:
        print(
            f"guard: demo batch rejected: {result.rejection_reason}"
        )


def cmd_sample(args: argparse.Namespace) -> int:
    from repro.geometry.points import PointCloud
    from repro.robustness import (
        CloudValidationError,
        ValidationPolicy,
        sanitize_cloud,
    )

    tracer, registry = _telemetry(args)
    wants_telemetry = bool(args.trace_out or args.metrics_out)
    if args.input:
        cloud = pc_io.load(args.input)
    else:
        rng = np.random.default_rng(args.seed)
        cloud = PointCloud(rng.random((args.points, 3)))
        print(
            f"no input file; sampling a synthetic cloud of "
            f"{len(cloud)} points (seed {args.seed})"
        )
    policy = ValidationPolicy(
        on_invalid=args.validation_policy,
        min_points=args.num_samples,
    )
    try:
        xyz, report = sanitize_cloud(cloud.xyz, policy)
    except CloudValidationError as err:
        raise SystemExit(f"input rejected: {err}")
    if not report.ok:
        print(f"sanitized input: {report.summary()}")
        if report.dropped:
            # Point identities changed; per-point labels no longer line
            # up, so continue with coordinates only.
            cloud = PointCloud(xyz)
        else:
            cloud = PointCloud(xyz, labels=cloud.labels)
    n = args.num_samples
    if not 1 <= n <= len(cloud):
        raise SystemExit(
            f"--num-samples must be in [1, {len(cloud)}]"
        )
    with tracer.span("cli.sample", "cli") as span:
        span.set("method", args.method)
        span.set("num_samples", n)
        if args.method == "fps":
            indices = farthest_point_sample(
                cloud.xyz, n, start_index=0
            )
        elif args.method == "morton":
            indices = MortonSampler().sample(cloud.xyz, n).indices
            if args.guard:
                from repro.sampling.quality import density_uniformity

                cv = density_uniformity(cloud.xyz, indices)
                registry.gauge(
                    "guard_probe_score", stage="sampling"
                ).set(cv)
                if cv > args.guard_threshold:
                    print(
                        f"guard: Morton sample density CV {cv:.2f} "
                        f"exceeds {args.guard_threshold:.2f}; "
                        "falling back to exact FPS"
                    )
                    registry.counter(
                        "guard_fallbacks_total",
                        stage="sampling", reason="probe_tripped",
                    ).inc()
                    indices = farthest_point_sample(
                        cloud.xyz, n, start_index=0
                    )
                else:
                    print(
                        f"guard: Morton sample density CV {cv:.2f} "
                        f"within {args.guard_threshold:.2f}"
                    )
        else:
            indices = uniform_sample(cloud.xyz, n)
    sampled = cloud.select(indices)
    if args.output:
        pc_io.save(sampled, args.output)
        print(
            f"sampled {n} of {len(cloud)} points with "
            f"{args.method} -> {args.output}"
        )
    else:
        print(
            f"sampled {n} of {len(cloud)} points with "
            f"{args.method} (no output file given; result not saved)"
        )
    if wants_telemetry:
        _guarded_demo(
            cloud.xyz, tracer, registry, args.guard, args.seed
        )
        _export_telemetry(args, tracer, registry)
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    if args.input:
        cloud = pc_io.load(args.input).xyz
    else:
        rng = np.random.default_rng(args.seed)
        cloud = rng.random((args.points, 3))
    rng = np.random.default_rng(args.seed)
    queries = rng.choice(
        len(cloud), min(len(cloud), 512), replace=False
    )
    points = explore_window_sizes(
        cloud, k=args.k,
        multipliers=(1, 2, 4, 8, 16),
        query_indices=queries,
    )
    print(f"{'W':>6}{'FNR':>9}{'speedup':>10}")
    for p in points:
        print(
            f"{p.window:>6}{p.false_neighbor_ratio * 100:>8.1f}%"
            f"{p.search_speedup:>9.1f}x"
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    profiler = PipelineProfiler()
    baseline = EdgePCConfig.baseline()
    specs = standard_workloads()

    print("=== Baseline latency breakdown (Fig. 3) ===")
    for name, spec in specs.items():
        breakdown = profiler.breakdown(
            trace(spec, baseline), baseline
        )
        print(format_breakdown_row(name, breakdown))

    for label in ("edgepc", "tensorcores", "insights"):
        config = CONFIGS[label]()
        print(f"\n=== {label} vs baseline (Fig. 13) ===")
        sn, e2e, energy = [], [], []
        for name, spec in specs.items():
            report = compare(
                profiler,
                trace(spec, baseline), baseline,
                trace(spec, config), config,
            )
            sn.append(report.sample_neighbor_speedup)
            e2e.append(report.end_to_end_speedup)
            energy.append(report.energy_saving_fraction)
            print(format_comparison_row(name, report))
        print(
            f"avg   S+N {sum(sn) / len(sn):5.2f}x | "
            f"E2E {sum(e2e) / len(e2e):5.2f}x | "
            f"energy saved {sum(energy) / len(energy) * 100:5.1f}%"
        )

    from repro.baselines import as_table

    print("\n=== Prior-work comparison (Table 2) ===")
    print(as_table())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Traced workload smoke with every exporter behind one command."""
    tracer = Tracer()
    registry = MetricsRegistry()
    results = _smoke_workloads(
        args.workload, args.config, tracer, registry
    )
    spans = tracer.finished()
    print(
        f"traced {len(results)} workload(s) under {args.config}: "
        f"{len(spans)} spans, {len(registry)} metric series"
    )
    if args.trace_out:
        tracer.export_chrome(args.trace_out)
        print(f"wrote Chrome trace -> {args.trace_out}")
    if args.jsonl_out:
        tracer.export_jsonl(args.jsonl_out)
        print(f"wrote span JSONL -> {args.jsonl_out}")
    if args.metrics_out:
        registry.export_json(args.metrics_out)
        print(f"wrote metrics snapshot -> {args.metrics_out}")
    report = RunReport.build(
        tracer=tracer,
        metrics=registry,
        breakdowns=[b for _, b, _ in results],
        energies=[e for _, _, e in results],
        command="trace",
        workload=args.workload,
        config=args.config,
    )
    if args.report_out:
        report.save(args.report_out)
        print(f"wrote run report -> {args.report_out}")
    if args.bench_out:
        bench = {
            "bench": "observability_smoke",
            "config": args.config,
            "workloads": [name for name, _, _ in results],
            "stage_medians_s": report.stage_medians_s(),
        }
        with open(args.bench_out, "w") as fh:
            json.dump(bench, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote BENCH medians -> {args.bench_out}")
    for stage, seconds in report.stage_medians_s().items():
        print(f"  median {stage:<12} {seconds * 1e3:9.2f} ms")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Batched-vs-looped kernel micro-benchmarks with a CI gate."""
    from repro.bench import (
        SCHEMA_VERSION,
        compare_with_baseline,
        format_results,
        run_large_n_suite,
        run_partition_suite,
        run_suite,
    )

    if args.suite in ("kernels", "all"):
        results = run_suite(
            batch=args.batch,
            points=args.points,
            k=args.k,
            repeats=args.repeats,
            seed=args.seed,
        )
    else:
        results = {
            "schema_version": SCHEMA_VERSION,
            "bench": "batched_kernels",
        }
    if args.suite in ("large-n", "all"):
        results["large_n"] = run_large_n_suite(
            sizes=tuple(args.sizes),
            k=args.k,
            repeats=args.repeats,
            seed=args.seed,
        )
    if args.suite in ("partition", "all"):
        kwargs = {"seed": args.seed}
        if args.suite == "partition" and args.sizes != [
            8192, 40960, 102400,
        ]:
            # --sizes applies to whichever size-parameterized suite
            # runs alone; the shared default belongs to large-n.
            kwargs["sizes"] = tuple(args.sizes)
        results["partition"] = run_partition_suite(**kwargs)
    print(format_results(results))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote kernel bench -> {args.out}")
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        problems = compare_with_baseline(
            results, baseline, args.tolerance
        )
        if problems:
            for problem in problems:
                print(f"REGRESSION {problem}", file=sys.stderr)
            return 1
        print(
            f"bench gate passed vs {args.baseline} "
            f"(tolerance {args.tolerance:.0%})"
        )
    return 0


def _serving_pipeline(seed: int, guard: bool, tracer, registry):
    """Demo pipeline for ``serve``/``loadgen``: a small PointNet++
    segmentation model, optionally wrapped in the guard."""
    from repro.nn import PointNet2Segmentation, SAConfig
    from repro.pipeline import EdgePCPipeline

    model = PointNet2Segmentation(
        num_classes=4,
        sa_configs=(
            SAConfig(0.5, 4, 1.5, (8, 8)),
            SAConfig(0.5, 4, 3.0, (16, 16)),
        ),
        edgepc=EdgePCConfig.paper_default(),
        head_hidden=8,
        rng=np.random.default_rng(seed),
    )
    pipeline = EdgePCPipeline(model, tracer=tracer, metrics=registry)
    if guard:
        from repro.robustness.guard import GuardedPipeline

        return GuardedPipeline(pipeline, seed=seed)
    return pipeline


def _serving_config(args, default_deadline_ms=None):
    from repro.serving import ServingConfig

    return ServingConfig(
        max_queue_depth=args.queue_depth,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        default_deadline_ms=default_deadline_ms,
    )


def _fleet_config(args):
    from repro.serving import FleetConfig, HedgePolicy, RetryPolicy

    hedge_ms = getattr(args, "hedge_ms", None)
    return FleetConfig(
        default_deadline_ms=args.deadline_ms,
        retry=RetryPolicy(max_attempts=args.retries),
        hedge=(
            None
            if hedge_ms is None
            else HedgePolicy(min_delay_s=hedge_ms / 1e3)
        ),
    )


def _build_fleet(args, tracer, registry, clock=None):
    """N identical replicas (same seed) behind the fleet router."""
    from repro.observability.clock import wall_clock
    from repro.serving import ServerFleet

    pipelines = [
        _serving_pipeline(args.seed, args.guard, tracer, registry)
        for _ in range(args.replicas)
    ]
    return ServerFleet(
        pipelines,
        config=_fleet_config(args),
        serving_config=_serving_config(args),
        clock=clock if clock is not None else wall_clock,
        tracer=tracer,
        metrics=registry,
    )


def _partition_pipeline(seed: int, halo_width: float, tracer, registry):
    """Scene-tuned demo pipeline: a PointNet++ segmentation stack
    whose receptive field (summed SA radii) equals ``halo_width``,
    with the exact-engine threshold dropped below chunk size so chunk
    batches dispatch the same fast engines a monolithic run would."""
    from dataclasses import replace

    from repro.nn import PointNet2Segmentation, SAConfig
    from repro.pipeline import EdgePCPipeline

    config = replace(
        EdgePCConfig.baseline(), exact_fast_threshold=1024
    )
    model = PointNet2Segmentation(
        num_classes=13,
        sa_configs=(
            SAConfig(
                ratio=0.25, k=16, radius=halo_width / 3.0,
                mlp=(16, 16, 32),
            ),
            SAConfig(
                ratio=0.25, k=16, radius=2.0 * halo_width / 3.0,
                mlp=(32, 32, 64),
            ),
        ),
        edgepc=config,
        rng=np.random.default_rng(seed),
    )
    return EdgePCPipeline(model, tracer=tracer, metrics=registry)


def cmd_partition(args: argparse.Namespace) -> int:
    """Scene-scale scatter/gather demo on a tiled-room scene.

    Partitions one ``--points``-sized scene into Morton chunks with a
    receptive-field halo and runs it end-to-end — directly through
    :class:`~repro.partition.PartitionedPipeline`, or (``--serve``)
    scattered over a virtual-time :class:`~repro.serving.ServerFleet`
    as one scene request.  Every run re-verifies the stitch identity
    on a single-chunk control scene, checks the exported trace for
    orphan spans, and writes a deterministic JSON report (FixedClock
    timeline + seeded scene, so same-seed reports are byte-identical).
    """
    from repro.observability.clock import FixedClock
    from repro.observability.tracing import find_orphans
    from repro.partition import (
        PartitionedPipeline,
        ScenePartitioner,
        price_partition,
    )

    clock = FixedClock(0.0)
    tracer = Tracer(clock=clock)
    registry = MetricsRegistry()
    scene = _load_scene(args)
    partitioner = ScenePartitioner(
        chunk_points=args.chunk_points, halo_width=args.halo_width
    )
    pipeline = _partition_pipeline(
        args.seed, args.halo_width, tracer, registry
    )
    partitioned = PartitionedPipeline(
        pipeline,
        partitioner=partitioner,
        max_chunks_per_batch=args.max_chunks_per_batch,
    )

    # Stitch-identity control: a single-chunk scene must be
    # byte-identical to the direct pipeline.
    control = scene.xyz[: min(args.chunk_points, scene.xyz.shape[0])]
    control_direct = pipeline.infer(control)
    control_part = partitioned.infer(control)
    control_ok = bool(
        np.array_equal(control_part.logits, control_direct.logits[0])
    )
    print(
        f"control identity ({control.shape[0]} points): "
        f"{'ok' if control_ok else 'MISMATCH'}"
    )

    plan = partitioner.plan(scene.xyz)
    pricing = price_partition(pipeline, scene.xyz, plan)
    print(
        f"plan: {plan.num_chunks} chunks x {plan.chunk_size} points "
        f"(halo ratio {plan.halo_ratio:.2f})"
    )

    report: dict = {
        "params": {
            "points": int(scene.xyz.shape[0]),
            "chunk_points": args.chunk_points,
            "halo_width": args.halo_width,
            "seed": args.seed,
            "serve": bool(args.serve),
            "replicas": args.replicas if args.serve else 0,
        },
        "plan": {
            "num_chunks": plan.num_chunks,
            "chunk_size": plan.chunk_size,
            "halo_ratio": plan.halo_ratio,
            "halo_points_total": plan.halo_points_total,
        },
        "pricing": {
            "chunked_s": pricing.chunked_s,
            "monolithic_s": pricing.monolithic_s,
            "speedup": pricing.speedup,
            "per_chunk_s": pricing.per_chunk_s,
        },
        "control": {
            "points": int(control.shape[0]),
            "identical": control_ok,
        },
    }

    if args.serve:
        from repro.serving import ServerFleet, ServingConfig

        fleet = ServerFleet(
            [
                _partition_pipeline(
                    args.seed, args.halo_width, tracer, registry
                )
                for _ in range(args.replicas)
            ],
            serving_config=ServingConfig(
                max_batch_size=args.max_chunks_per_batch,
                max_wait_ms=5.0,
                max_queue_depth=max(64, 2 * plan.num_chunks),
            ),
            clock=clock,
            tracer=tracer,
            metrics=registry,
        )
        sreq = fleet.submit_scene(
            scene.xyz, partitioner, tenant="scene"
        )
        budget = 200 + 50 * plan.num_chunks
        for _ in range(budget):
            if sreq.future.done():
                break
            for index in range(len(fleet.replicas)):
                fleet.pump_replica(index)
            fleet.service()
            clock.advance(0.01)
            for replica in fleet.replicas:
                replica.server.batcher.ingest()
        fleet.service()
        if not sreq.future.done():
            print(
                "scene request did not settle within the pump "
                "budget",
                file=sys.stderr,
            )
            return 1
        served = sreq.future.result()
        predictions = served.prediction
        report["result"] = {
            "simulated_s": served.simulated_batch_s,
            "trigger": served.trigger,
            "degraded": list(served.degraded_stages),
            "trace_id": served.trace_id,
        }
        report["fleet"] = {
            key: value
            for key, value in sorted(fleet.stats().items())
        }
        print(
            f"served scene {served.request_id}: "
            f"{plan.num_chunks} chunks, "
            f"{served.simulated_batch_s:.3f} simulated s"
        )
    else:
        result = partitioned.infer(scene.xyz)
        predictions = result.predictions
        report["result"] = {
            "simulated_s": result.simulated_s,
            "energy_j": result.energy_j,
            "degraded": list(result.degraded_stages),
        }
        print(
            f"partitioned inference: {result.num_points} points, "
            f"{result.simulated_s:.3f} simulated s"
        )

    report["predictions"] = {
        "histogram": np.bincount(
            predictions, minlength=13
        ).tolist(),
    }

    rows = [span.to_dict() for span in tracer.finished()]
    orphans = find_orphans(rows)
    roots = [
        row
        for row in rows
        if row.get("name") == "request" and row.get("parent") is None
    ]
    report["trace"] = {
        "spans": len(rows),
        "orphan_spans": len(orphans),
        "request_roots": len(roots),
    }
    print(
        f"trace: {len(rows)} spans, {len(orphans)} orphans, "
        f"{len(roots)} request root(s)"
    )

    if args.report:
        with open(args.report, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote partition report -> {args.report}")
    if getattr(args, "artifacts_dir", None):
        os.makedirs(args.artifacts_dir, exist_ok=True)
        from repro.observability.dashboard import (
            ARTIFACT_METRICS,
            ARTIFACT_TRACE,
        )

        registry.export_json(
            os.path.join(args.artifacts_dir, ARTIFACT_METRICS)
        )
        tracer.export_jsonl(
            os.path.join(args.artifacts_dir, ARTIFACT_TRACE)
        )
        print(f"wrote dashboard artifacts -> {args.artifacts_dir}")
    _export_telemetry(args, tracer, registry)
    if not control_ok:
        print("control identity check failed", file=sys.stderr)
        return 1
    if orphans:
        print("trace contains orphan spans", file=sys.stderr)
        return 1
    return 0


def _load_scene(args):
    """The seeded tiled-room scene for ``repro partition``."""
    from repro.datasets import make_scene

    return make_scene(args.points, seed=args.seed)


def cmd_serve(args: argparse.Namespace) -> int:
    """Threaded serving demo: burst-submit seeded clouds, drain, report.

    With ``--replicas N`` (N > 1) the burst goes through a
    :class:`~repro.serving.fleet.ServerFleet` instead of a single
    server, exercising routing, health tracking, and retries under
    real threads.
    """
    from repro.serving import InferenceServer

    tracer, registry = _telemetry(args)
    rng = np.random.default_rng(args.seed)
    outcomes: dict = {}
    requests = []

    def _count_error(err: Exception) -> str:
        kind = type(err).__name__
        outcomes[kind] = outcomes.get(kind, 0) + 1
        return kind

    if args.replicas > 1:
        fleet = _build_fleet(args, tracer, registry)
        with fleet:
            for index in range(args.requests):
                try:
                    requests.append(
                        fleet.submit(
                            rng.random((args.points, 3)),
                            tenant=f"tenant-{index % 4}",
                        )
                    )
                except Exception as err:
                    registry.counter(
                        "cli_request_errors_total",
                        kind=_count_error(err),
                    ).inc()
        stats = fleet.stats()
    else:
        pipeline = _serving_pipeline(
            args.seed, args.guard, tracer, registry
        )
        server = InferenceServer(
            pipeline,
            _serving_config(
                args, default_deadline_ms=args.deadline_ms
            ),
            tracer=tracer,
            metrics=registry,
        )
        with server:
            for _ in range(args.requests):
                try:
                    requests.append(
                        server.submit(rng.random((args.points, 3)))
                    )
                except Exception as err:
                    registry.counter(
                        "cli_request_errors_total",
                        kind=_count_error(err),
                    ).inc()
        stats = server.stats()
    for request in requests:
        try:
            request.future.result(timeout=30.0)
        except Exception as err:
            registry.counter(
                "cli_request_errors_total", kind=_count_error(err)
            ).inc()
        else:
            outcomes["ok"] = outcomes.get("ok", 0) + 1
    print(
        f"served {args.requests} requests with {args.replicas} "
        f"replica(s) x {args.workers} worker(s), max batch "
        f"{args.max_batch_size}, window {args.max_wait_ms:.0f} ms"
    )
    for kind in sorted(outcomes):
        print(f"  {kind}: {outcomes[kind]}")
    if args.replicas > 1:
        print(
            "  completed {completed:.0f}  failed {failed:.0f}  "
            "retries {retries:.0f}  healthy replicas "
            "{healthy:.0f}".format(**stats)
        )
    else:
        print(
            "  batches {batches:.0f}  mean batch size "
            "{mean_batch_size:.2f}  outstanding "
            "{outstanding:.0f}".format(**stats)
        )
    _export_telemetry(args, tracer, registry)
    return 0


def _loadgen_config(args) -> "object":
    from repro.serving import LoadGenConfig

    return LoadGenConfig(
        duration_s=args.duration_s,
        rate=args.rate,
        arrival=args.arrival,
        mode=args.mode,
        concurrency=args.concurrency,
        points=tuple(args.points),
        deadline_ms=args.deadline_ms,
        seed=args.seed,
        tenants=getattr(args, "tenants", 4),
    )


def _loadgen_gate(args, report) -> int:
    """Shared ``--fail-on-error`` exit-code logic for load reports."""
    if args.fail_on_error and (report.failed or report.lost):
        print(
            f"loadgen gate failed: {report.failed} failed and "
            f"{report.lost} lost requests (admission rejections and "
            "deadline expiries do not count)",
            file=sys.stderr,
        )
        return 1
    return 0


def _slo_engine(args, registry, clock):
    """Build the SLO engine when ``--slo SPEC.json`` was given."""
    if not getattr(args, "slo", None):
        return None
    from repro.observability import SloEngine, SloSpec

    return SloEngine(SloSpec.load(args.slo), registry, clock=clock)


def _finish_serving_run(
    args, report, tracer, registry, slo, fleet=None, clock=None
) -> int:
    """Shared epilogue for ``loadgen`` / ``chaos``: write the
    ``--artifacts-dir`` bundle (the files ``repro dashboard --from``
    reads), print the SLO verdict, and gate on budget exhaustion."""
    from repro.observability.dashboard import (
        ARTIFACT_LOADGEN,
        ARTIFACT_METRICS,
        ARTIFACT_SLO,
        ARTIFACT_TRACE,
    )

    status = 0
    now = clock() if clock is not None else None
    if getattr(args, "artifacts_dir", None):
        os.makedirs(args.artifacts_dir, exist_ok=True)
        report.save(os.path.join(args.artifacts_dir, ARTIFACT_LOADGEN))
        registry.export_json(
            os.path.join(args.artifacts_dir, ARTIFACT_METRICS)
        )
        if tracer.enabled:
            tracer.export_jsonl(
                os.path.join(args.artifacts_dir, ARTIFACT_TRACE)
            )
        if slo is not None:
            slo.save_report(
                os.path.join(args.artifacts_dir, ARTIFACT_SLO), now
            )
        print(f"wrote dashboard artifacts -> {args.artifacts_dir}")
    if slo is not None:
        if getattr(args, "slo_out", None):
            slo.save_report(args.slo_out, now)
            print(f"wrote SLO report -> {args.slo_out}")
        exhausted = slo.exhausted()
        print(
            f"slo: {len(slo.spec.objectives)} objective(s), "
            f"{len(slo.alerts)} alert(s), "
            f"{len(exhausted)} budget(s) exhausted"
        )
        if exhausted:
            print(
                "slo gate failed: error budget exhausted for "
                + ", ".join(sorted(exhausted)),
                file=sys.stderr,
            )
            status = 1
    if getattr(args, "dashboard", False) and fleet is not None:
        from repro.observability import collect_live, render_dashboard

        print(
            render_dashboard(
                collect_live(
                    fleet, slo=slo, tracer=tracer, report=report,
                    now=now,
                )
            )
        )
    return status


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Deterministic virtual-time load run against an in-process server.

    With ``--replicas N`` (N > 1) the same closed virtual-time loop
    drives a :class:`~repro.serving.fleet.ServerFleet` through the
    router/retry/hedge path instead of a single server.
    """
    from repro.observability.clock import FixedClock
    from repro.serving import (
        FleetLoadGenerator,
        InferenceServer,
        LoadGenerator,
    )

    clock = FixedClock(0.0)
    tracer, registry = _telemetry(args, clock=clock)
    config = _loadgen_config(args)
    slo = _slo_engine(args, registry, clock)
    fleet = None
    if args.replicas > 1:
        fleet = _build_fleet(args, tracer, registry, clock=clock)
        report = FleetLoadGenerator(
            fleet, config, clock=clock, slo=slo
        ).run()
    else:
        if slo is not None:
            print(
                "--slo needs the fleet path (--replicas >= 2)",
                file=sys.stderr,
            )
            return 2
        pipeline = _serving_pipeline(
            args.seed, args.guard, tracer, registry
        )
        server = InferenceServer(
            pipeline,
            _serving_config(args),
            clock=clock,
            tracer=tracer,
            metrics=registry,
        )
        report = LoadGenerator(server, config).run()
    print(report.summary())
    if args.out:
        report.save(args.out)
        print(f"wrote load report -> {args.out}")
    _export_telemetry(args, tracer, registry)
    status = _finish_serving_run(
        args, report, tracer, registry, slo, fleet=fleet, clock=clock
    )
    return status or _loadgen_gate(args, report)


def cmd_chaos(args: argparse.Namespace) -> int:
    """Deterministic chaos run: break replicas mid-load, gate the report.

    Drives a virtual-time load generator against a replica fleet while
    a :class:`~repro.serving.chaos.ChaosHarness` kills/stalls/slows
    replicas on schedule.  The run is fully deterministic (FixedClock +
    seeded RNG), so the resulting :class:`LoadReport` doubles as a
    regression artifact: ``--baseline`` gates p95 latency and goodput
    against a committed ``BENCH_serving.json``.
    """
    from repro.observability.clock import FixedClock
    from repro.serving import (
        ChaosHarness,
        ChaosSchedule,
        FleetLoadGenerator,
    )

    if args.replicas < 2:
        print("chaos runs need --replicas >= 2", file=sys.stderr)
        return 2
    clock = FixedClock(0.0)
    tracer, registry = _telemetry(args, clock=clock)
    slo = _slo_engine(args, registry, clock)
    fleet = _build_fleet(args, tracer, registry, clock=clock)
    if args.event:
        schedule = ChaosSchedule.from_specs(args.event)
    else:
        schedule = ChaosSchedule.standard(
            args.replicas, args.duration_s
        )
    harness = ChaosHarness(fleet, schedule, metrics=registry)
    report = FleetLoadGenerator(
        fleet, _loadgen_config(args), clock=clock, chaos=harness,
        slo=slo,
    ).run()
    print(report.summary())
    for event in harness.applied:
        print(f"  chaos: {event.describe()}")
    if args.out:
        report.save(args.out)
        print(f"wrote load report -> {args.out}")
    _export_telemetry(args, tracer, registry)
    if (args.bench_out or args.baseline) and not report.latency_ms:
        # An empty latency distribution means *nothing completed* —
        # gating p95=0 against a baseline would pass vacuously.
        print(
            "chaos gate failed: no completed requests, latency "
            "percentiles unavailable (refusing to bench/gate p95=0)",
            file=sys.stderr,
        )
        return 1
    bench = {
        "bench": "serving_chaos",
        "replicas": args.replicas,
        "duration_s": args.duration_s,
        "rate": args.rate,
        "seed": args.seed,
        "chaos_events": len(harness.applied),
        "completed": report.completed,
        "goodput_rps": round(report.goodput_rps, 6),
        "p95_ms": round(report.latency_ms.get("p95", 0.0), 6),
    }
    if args.bench_out:
        with open(args.bench_out, "w") as fh:
            json.dump(bench, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote serving bench -> {args.bench_out}")
    status = _loadgen_gate(args, report)
    if args.baseline:
        with open(args.baseline) as fh:
            base = json.load(fh)
        tol = args.tolerance
        p95_limit = base["p95_ms"] * (1.0 + tol)
        goodput_floor = base["goodput_rps"] * (1.0 - tol)
        print(
            f"baseline gate: p95 {bench['p95_ms']:.3f} ms "
            f"(limit {p95_limit:.3f}), goodput "
            f"{bench['goodput_rps']:.3f} rps "
            f"(floor {goodput_floor:.3f})"
        )
        if bench["p95_ms"] > p95_limit:
            print(
                "chaos gate failed: p95 latency regressed past "
                f"baseline * (1 + {tol})",
                file=sys.stderr,
            )
            status = 1
        if bench["goodput_rps"] < goodput_floor:
            print(
                "chaos gate failed: goodput fell below "
                f"baseline * (1 - {tol})",
                file=sys.stderr,
            )
            status = 1
    return (
        _finish_serving_run(
            args, report, tracer, registry, slo, fleet=fleet,
            clock=clock,
        )
        or status
    )


def cmd_dashboard(args: argparse.Namespace) -> int:
    """Render the deterministic text dashboard from saved artifacts.

    Reads the conventional files a ``repro chaos --artifacts-dir``
    (or ``loadgen``) run writes — ``metrics.json``, ``trace.jsonl``,
    ``slo_report.json``, ``loadgen.json`` — and prints one snapshot:
    fleet counters, replica queues, SLO error budgets, and the top-K
    slowest request traces.  Same artifacts, same bytes out.
    """
    from repro.observability import load_artifacts, render_dashboard

    try:
        data = load_artifacts(args.artifacts)
    except FileNotFoundError as err:
        print(f"dashboard: {err}", file=sys.stderr)
        return 2
    print(render_dashboard(data, top_k=args.top))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Project-aware static analysis (see docs/static_analysis.md)."""
    from repro.lint import all_rules, run_lint

    rules = ()
    if args.concurrency:
        rules = tuple(
            rule
            for rule in all_rules()
            if rule.rule_id.startswith("CONC-")
        )
    return run_lint(
        paths=args.paths or ["src"],
        output_format=args.format,
        baseline=args.baseline,
        fail_on=args.fail_on,
        out=args.out,
        write_baseline=args.write_baseline,
        rules=rules,
        jobs=args.jobs,
        prune_baseline=args.prune_baseline,
    )


def cmd_lockwatch(args: argparse.Namespace) -> int:
    """Runtime lock-order sanitizer report over a threaded fleet smoke.

    Builds a real-threaded replica fleet, swaps its serving locks for
    :class:`~repro.robustness.lockwatch.LockOrderWatchdog` proxies,
    burst-submits seeded clouds while a chaos kill/recover cycle sheds
    one replica's backlog, then reports the observed acquisition-order
    edges against the static CONC-502 lock-order graph.  Exits 1 on
    any runtime order violation or static/dynamic contradiction, so
    CI can gate on the two layers agreeing.
    """
    from repro.robustness.lockwatch import (
        LockOrderWatchdog,
        static_lock_order,
    )

    if args.replicas < 2:
        print(
            "lockwatch-report needs --replicas >= 2",
            file=sys.stderr,
        )
        return 2
    tracer, registry = _telemetry(args)
    fleet = _build_fleet(args, tracer, registry)
    watchdog = LockOrderWatchdog(
        static_edges=static_lock_order(), metrics=registry
    )
    watchdog.instrument_fleet(fleet)
    rng = np.random.default_rng(args.seed)
    kill_at = max(1, args.requests // 2)
    requests = []
    with fleet:
        for index in range(args.requests):
            if args.chaos and index == kill_at:
                fleet.kill_replica(0)
            try:
                requests.append(
                    fleet.submit(
                        rng.random((args.points, 3)),
                        tenant=f"tenant-{index % 4}",
                    )
                )
            except Exception as err:
                registry.counter(
                    "cli_request_errors_total",
                    kind=type(err).__name__,
                ).inc()
        if args.chaos:
            fleet.recover_replica(0)
        for request in requests:
            try:
                request.future.result(timeout=30.0)
            except Exception as err:
                registry.counter(
                    "cli_request_errors_total",
                    kind=type(err).__name__,
                ).inc()
    report = watchdog.report()
    problems = len(report.violations) + len(report.contradictions)
    print(
        f"lockwatch: {sum(report.acquisitions.values())} "
        f"acquisition(s) across {len(report.acquisitions)} lock(s), "
        f"{len(report.edges)} observed order edge(s), "
        f"{len(report.static_edges)} static edge(s), "
        f"{len(report.violations)} violation(s), "
        f"{len(report.contradictions)} contradiction(s)"
    )
    for a, b, n in report.edges:
        print(f"  observed: {a} -> {b} (x{n})")
    for line in report.violations:
        print(f"  VIOLATION: {line}", file=sys.stderr)
    for line in report.contradictions:
        print(f"  CONTRADICTION: {line}", file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"wrote lockwatch report -> {args.out}")
    _export_telemetry(args, tracer, registry)
    return 1 if problems else 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Print the metrics snapshot of a workload smoke run."""
    registry = MetricsRegistry()
    _smoke_workloads(args.workload, args.config, NULL_TRACER, registry)
    if args.format == "prometheus":
        text = registry.to_prometheus()
    else:
        text = json.dumps(
            registry.snapshot(), indent=1, sort_keys=True
        )
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"wrote metrics -> {args.out}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EdgePC reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "workloads", help="print the Table 1 workloads"
    ).set_defaults(func=cmd_workloads)

    profile = sub.add_parser(
        "profile", help="per-stage latency breakdown (Fig. 3 view)"
    )
    profile.add_argument("--workload", default="all")
    profile.add_argument(
        "--config", default="baseline", choices=sorted(CONFIGS)
    )
    _add_telemetry_flags(profile)
    profile.set_defaults(func=cmd_profile)

    comp = sub.add_parser(
        "compare", help="baseline vs EdgePC (Fig. 13 view)"
    )
    comp.add_argument("--workload", default="all")
    comp.add_argument(
        "--config", default="edgepc", choices=sorted(CONFIGS)
    )
    _add_telemetry_flags(comp)
    comp.set_defaults(func=cmd_compare)

    sample = sub.add_parser(
        "sample", help="down-sample a .ply/.xyz point cloud "
        "(or a synthetic one when no input file is given)"
    )
    sample.add_argument(
        "input", nargs="?", default=None,
        help="input cloud; omit to sample a seeded synthetic cloud",
    )
    sample.add_argument(
        "output", nargs="?", default=None,
        help="output file; omit to skip saving the sampled cloud",
    )
    sample.add_argument(
        "--method", default="morton",
        choices=("fps", "morton", "uniform"),
    )
    sample.add_argument(
        "-n", "--num-samples", type=int, default=1024
    )
    sample.add_argument(
        "--points", type=int, default=2048,
        help="synthetic cloud size when no input file is given",
    )
    sample.add_argument(
        "--seed", type=int, default=0,
        help="seed for the synthetic cloud and the guarded demo",
    )
    sample.add_argument(
        "--validation-policy", default="reject",
        choices=("reject", "repair", "clamp"),
        help="how to treat degenerate input clouds",
    )
    sample.add_argument(
        "--guard", action="store_true",
        help="fall back to exact FPS when the Morton sample's "
        "density-uniformity probe trips",
    )
    sample.add_argument(
        "--guard-threshold", type=float, default=1.5,
        help="density-uniformity CV above which --guard trips",
    )
    _add_telemetry_flags(sample)
    sample.set_defaults(func=cmd_sample)

    partition_cmd = sub.add_parser(
        "partition",
        help="scene-scale scatter/gather demo: Morton-chunk one "
        "tiled-room scene, run it through the partitioned pipeline "
        "or a virtual fleet, verify the stitch, report",
    )
    partition_cmd.add_argument(
        "--points", type=int, default=100_000,
        help="scene size in points (default 100000; the scene-scale "
        "scenario spans 100k-1M)",
    )
    partition_cmd.add_argument(
        "--chunk-points", type=int, default=8192,
        help="target core points per chunk (default 8192)",
    )
    partition_cmd.add_argument(
        "--halo-width", type=float, default=0.12,
        help="halo band width; also sizes the demo model's receptive "
        "field (default 0.12)",
    )
    partition_cmd.add_argument(
        "--max-chunks-per-batch", type=int, default=2,
        help="chunks stacked per inner batch dispatch (default 2)",
    )
    partition_cmd.add_argument(
        "--seed", type=int, default=0,
        help="seeds the scene and the model weights (default 0)",
    )
    partition_cmd.add_argument(
        "--serve", action="store_true",
        help="scatter the scene over a virtual-time ServerFleet "
        "instead of the in-process partitioned pipeline",
    )
    partition_cmd.add_argument(
        "--replicas", type=int, default=2,
        help="fleet size for --serve (default 2)",
    )
    partition_cmd.add_argument(
        "--report", default=None, metavar="FILE",
        help="write the deterministic JSON run report to FILE",
    )
    partition_cmd.add_argument(
        "--artifacts-dir", default=None, metavar="DIR",
        help="write the dashboard artifact bundle (metrics.json, "
        "trace.jsonl) to DIR",
    )
    _add_telemetry_flags(partition_cmd)
    partition_cmd.set_defaults(func=cmd_partition)

    sweep = sub.add_parser(
        "sweep", help="window-size sensitivity (Fig. 15a view)"
    )
    sweep.add_argument("--input", default=None)
    sweep.add_argument("--points", type=int, default=2048)
    sweep.add_argument("--k", type=int, default=16)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.set_defaults(func=cmd_sweep)

    sub.add_parser(
        "report", help="one-shot headline summary of all experiments"
    ).set_defaults(func=cmd_report)

    trace_cmd = sub.add_parser(
        "trace",
        help="traced workload smoke: Chrome trace, metrics snapshot, "
        "run report, BENCH medians",
    )
    trace_cmd.add_argument("--workload", default="all")
    trace_cmd.add_argument(
        "--config", default="edgepc", choices=sorted(CONFIGS)
    )
    _add_telemetry_flags(trace_cmd)
    trace_cmd.add_argument(
        "--jsonl-out", default=None, metavar="FILE",
        help="write one JSON span record per line",
    )
    trace_cmd.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the merged RunReport (spans+metrics+breakdowns)",
    )
    trace_cmd.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="write per-stage latency medians "
        "(BENCH_observability.json)",
    )
    trace_cmd.set_defaults(func=cmd_trace)

    metrics_cmd = sub.add_parser(
        "metrics",
        help="metrics snapshot of a workload smoke "
        "(Prometheus text or JSON)",
    )
    metrics_cmd.add_argument("--workload", default="all")
    metrics_cmd.add_argument(
        "--config", default="edgepc", choices=sorted(CONFIGS)
    )
    metrics_cmd.add_argument(
        "--format", default="prometheus",
        choices=("prometheus", "json"),
    )
    metrics_cmd.add_argument(
        "--out", default=None, metavar="FILE",
        help="write to a file instead of stdout",
    )
    metrics_cmd.set_defaults(func=cmd_metrics)

    bench_cmd = sub.add_parser(
        "bench",
        help="time batched kernels vs per-cloud loops; optionally "
        "gate against a committed baseline",
    )
    bench_cmd.add_argument(
        "--suite",
        choices=("kernels", "large-n", "partition", "all"),
        default="kernels",
        help="which suite to run: the batched-vs-looped kernel pairs, "
        "the large-N exact fast engines, the scene partition "
        "chunked-vs-monolithic pricing, or all (default kernels)",
    )
    bench_cmd.add_argument(
        "--sizes", type=int, nargs="+", metavar="N",
        default=[8192, 40960, 102400],
        help="cloud sizes for --suite large-n/all "
        "(default 8192 40960 102400)",
    )
    bench_cmd.add_argument(
        "--batch", type=int, default=8,
        help="clouds per batch (default 8)",
    )
    bench_cmd.add_argument(
        "--points", type=int, default=1024,
        help="points per cloud (default 1024)",
    )
    bench_cmd.add_argument(
        "--k", type=int, default=16,
        help="neighbors per query (default 16)",
    )
    bench_cmd.add_argument(
        "--repeats", type=int, default=5,
        help="timing repeats per kernel; best is kept (default 5)",
    )
    bench_cmd.add_argument(
        "--seed", type=int, default=0,
        help="input-generation seed (default 0)",
    )
    bench_cmd.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON result document to FILE",
    )
    bench_cmd.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed BENCH_kernels.json to gate against; exit 1 "
        "when a kernel's speedup regresses past the tolerance",
    )
    bench_cmd.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed fractional drop below the baseline speedup "
        "(default 0.5)",
    )
    bench_cmd.set_defaults(func=cmd_bench)

    def _add_serving_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--max-batch-size", type=int, default=8,
            help="clouds coalesced per dispatched micro-batch",
        )
        cmd.add_argument(
            "--max-wait-ms", type=float, default=50.0,
            help="micro-batching window: how long the oldest queued "
            "request may wait for co-batchable traffic",
        )
        cmd.add_argument(
            "--workers", type=int, default=2,
            help="dispatch workers (threads, or modeled servers for "
            "loadgen)",
        )
        cmd.add_argument(
            "--queue-depth", type=int, default=64,
            help="admission bound; excess requests are rejected",
        )
        cmd.add_argument(
            "--deadline-ms", type=float, default=None,
            help="per-request deadline; expired requests are "
            "cancelled with a typed error",
        )
        cmd.add_argument(
            "--seed", type=int, default=0,
            help="seeds the model weights and the synthetic clouds",
        )
        cmd.add_argument(
            "--guard", action="store_true",
            help="wrap the pipeline in the GuardedPipeline",
        )
        cmd.add_argument(
            "--replicas", type=int, default=1,
            help="fleet size; > 1 routes through the ServerFleet "
            "with health tracking, retries, and hedging",
        )
        cmd.add_argument(
            "--retries", type=int, default=3,
            help="fleet retry budget (max attempts per request, "
            "including the first)",
        )
        cmd.add_argument(
            "--hedge-ms", type=float, default=None,
            help="enable hedged dispatch with this minimum delay; "
            "unset disables hedging",
        )
        _add_telemetry_flags(cmd)

    serve_cmd = sub.add_parser(
        "serve",
        help="threaded micro-batching serving demo with graceful "
        "drain (see docs/serving.md)",
    )
    serve_cmd.add_argument(
        "--requests", type=int, default=32,
        help="seeded clouds to burst-submit",
    )
    serve_cmd.add_argument(
        "--points", type=int, default=64,
        help="points per submitted cloud",
    )
    _add_serving_flags(serve_cmd)
    serve_cmd.set_defaults(func=cmd_serve)

    def _add_loadgen_flags(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--duration-s", type=float, default=5.0,
            help="virtual seconds of offered load",
        )
        cmd.add_argument(
            "--rate", type=float, default=50.0,
            help="offered requests per second (open loop)",
        )
        cmd.add_argument(
            "--arrival", default="poisson",
            choices=("poisson", "fixed"),
            help="arrival process",
        )
        cmd.add_argument(
            "--mode", default="open", choices=("open", "closed"),
            help="open loop (rate-driven) or closed loop "
            "(completion-driven)",
        )
        cmd.add_argument(
            "--concurrency", type=int, default=8,
            help="closed-loop in-flight clients",
        )
        cmd.add_argument(
            "--points", type=int, nargs="+", default=[64],
            metavar="N",
            help="candidate cloud sizes; mixed sizes exercise the "
            "batcher's N-buckets",
        )
        cmd.add_argument(
            "--tenants", type=int, default=4,
            help="distinct tenant keys driving the fleet router "
            "(the lowest-indexed tenant is low priority)",
        )
        cmd.add_argument(
            "--out", default=None, metavar="FILE",
            help="write the JSON load report",
        )
        cmd.add_argument(
            "--fail-on-error", action="store_true",
            help="exit 1 on any failed or lost request (admission "
            "rejections and deadline expiries do not count)",
        )
        cmd.add_argument(
            "--slo", default=None, metavar="SPEC.json",
            help="evaluate this SLO spec during the run (fleet path "
            "only); exit 1 if any error budget is exhausted",
        )
        cmd.add_argument(
            "--slo-out", default=None, metavar="FILE",
            help="write the JSON SLO report (burn rates, budgets, "
            "alerts)",
        )
        cmd.add_argument(
            "--artifacts-dir", default=None, metavar="DIR",
            help="write the dashboard artifact bundle (metrics.json, "
            "trace.jsonl, slo_report.json, loadgen.json) for "
            "`repro dashboard --from DIR`",
        )
        cmd.add_argument(
            "--dashboard", action="store_true",
            help="print the live text dashboard after the run",
        )
        _add_serving_flags(cmd)

    loadgen_cmd = sub.add_parser(
        "loadgen",
        help="deterministic virtual-time load generation against an "
        "in-process server or replica fleet (see docs/serving.md)",
    )
    _add_loadgen_flags(loadgen_cmd)
    loadgen_cmd.set_defaults(func=cmd_loadgen)

    chaos_cmd = sub.add_parser(
        "chaos",
        help="deterministic fault injection against a replica fleet "
        "under load (see docs/serving.md)",
    )
    chaos_cmd.add_argument(
        "--event", action="append", default=None,
        metavar="ACTION:REPLICA:AT_S[:FACTOR]",
        help="chaos event spec, repeatable (kill/stall/slow/error/"
        "recover); default: the standard kill-and-recover schedule",
    )
    chaos_cmd.add_argument(
        "--bench-out", default=None, metavar="FILE",
        help="write the BENCH_serving.json summary (p95 + goodput)",
    )
    chaos_cmd.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="gate p95 latency and goodput against this "
        "BENCH_serving.json",
    )
    chaos_cmd.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative slack for the --baseline gate",
    )
    _add_loadgen_flags(chaos_cmd)
    chaos_cmd.set_defaults(func=cmd_chaos)
    chaos_cmd.set_defaults(replicas=3)

    dashboard_cmd = sub.add_parser(
        "dashboard",
        help="render the deterministic text dashboard from saved "
        "run artifacts (see docs/observability.md)",
    )
    dashboard_cmd.add_argument(
        "--from", dest="artifacts", required=True, metavar="DIR",
        help="artifact directory written by `repro chaos "
        "--artifacts-dir` (metrics.json / trace.jsonl / "
        "slo_report.json / loadgen.json)",
    )
    dashboard_cmd.add_argument(
        "--top", type=int, default=5,
        help="how many slowest traces to list",
    )
    dashboard_cmd.set_defaults(func=cmd_dashboard)

    lint_cmd = sub.add_parser(
        "lint",
        help="project-aware static analysis: kernel, determinism, "
        "telemetry, and robustness invariants",
    )
    lint_cmd.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: src)",
    )
    lint_cmd.add_argument(
        "--format", default="text", choices=("text", "json"),
        help="stdout rendering",
    )
    lint_cmd.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings to subtract",
    )
    lint_cmd.add_argument(
        "--fail-on", default="error",
        choices=("warning", "error"),
        help="exit 1 when a new finding reaches this severity",
    )
    lint_cmd.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the machine-readable JSON findings report "
        "(the CI artifact) to FILE",
    )
    lint_cmd.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="write the current findings as a new baseline and "
        "exit 0",
    )
    lint_cmd.add_argument(
        "--concurrency", action="store_true",
        help="run only the whole-program concurrency rules "
        "(CONC-5xx)",
    )
    lint_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan per-file rule visits out over N threads (the "
        "whole-program pass stays single-threaded; output is "
        "byte-identical regardless)",
    )
    lint_cmd.add_argument(
        "--prune-baseline", action="store_true",
        help="rewrite --baseline in place, dropping fingerprints "
        "that no longer fire",
    )
    lint_cmd.set_defaults(func=cmd_lint)

    lockwatch_cmd = sub.add_parser(
        "lockwatch-report",
        help="runtime lock-order sanitizer smoke: threaded fleet "
        "under the LockOrderWatchdog, checked against the static "
        "CONC-502 lock-order graph",
    )
    lockwatch_cmd.add_argument(
        "--requests", type=int, default=24,
        help="seeded clouds to burst-submit",
    )
    lockwatch_cmd.add_argument(
        "--points", type=int, default=64,
        help="points per submitted cloud",
    )
    lockwatch_cmd.add_argument(
        "--chaos", action="store_true",
        help="kill replica 0 mid-burst and recover it, shedding its "
        "backlog through the retry path",
    )
    lockwatch_cmd.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the JSON watchdog report (the CI artifact)",
    )
    _add_serving_flags(lockwatch_cmd)
    lockwatch_cmd.set_defaults(func=cmd_lockwatch, replicas=3)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was piped into a consumer that exited early
        # (`repro metrics | head`); mute the late flush and exit clean.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
