"""Serving layer: request queue, micro-batcher, server, load generator.

Turns the repro library into a runnable service.  Requests for single
``(N, 3)`` clouds are admitted by a bounded
:class:`~repro.serving.queue.RequestQueue`, coalesced by a
:class:`~repro.serving.batcher.MicroBatcher` into rectangular
``(B, N, 3)`` micro-batches that ride the batched kernel path, and
dispatched by an :class:`~repro.serving.server.InferenceServer`
worker pool (or deterministically, in virtual time, by a
:class:`~repro.serving.loadgen.LoadGenerator`).  See
``docs/serving.md``.
"""

from repro.serving.batcher import (
    BATCH_SIZE_BUCKETS,
    MicroBatch,
    MicroBatcher,
)
from repro.serving.loadgen import (
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
)
from repro.serving.queue import (
    AdmissionError,
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    RequestQueue,
    ServingRequest,
)
from repro.serving.server import (
    DispatchRecord,
    InferenceRejectedError,
    InferenceServer,
    ServedResult,
    ServingConfig,
    swapped_workspace,
)

__all__ = [
    "AdmissionError",
    "BATCH_SIZE_BUCKETS",
    "DeadlineExceededError",
    "DispatchRecord",
    "InferenceRejectedError",
    "InferenceServer",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "MicroBatch",
    "MicroBatcher",
    "QueueClosedError",
    "QueueFullError",
    "RequestQueue",
    "ServedResult",
    "ServingConfig",
    "ServingRequest",
    "swapped_workspace",
]
