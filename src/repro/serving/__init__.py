"""Serving layer: queue, batcher, server, fleet, chaos, load gen.

Turns the repro library into a runnable service.  Requests for single
``(N, 3)`` clouds are admitted by a bounded
:class:`~repro.serving.queue.RequestQueue`, coalesced by a
:class:`~repro.serving.batcher.MicroBatcher` into rectangular
``(B, N, 3)`` micro-batches that ride the batched kernel path, and
dispatched by an :class:`~repro.serving.server.InferenceServer`
worker pool (or deterministically, in virtual time, by a
:class:`~repro.serving.loadgen.LoadGenerator`).  A
:class:`~repro.serving.fleet.ServerFleet` fronts N replicas with
consistent-hash routing, per-replica health tracking, deadline-aware
retries, hedging, and brownout shedding; the
:class:`~repro.serving.chaos.ChaosHarness` breaks replicas on a
deterministic virtual-time schedule to prove it.  See
``docs/serving.md``.
"""

from repro.serving.batcher import (
    BATCH_SIZE_BUCKETS,
    MicroBatch,
    MicroBatcher,
)
from repro.serving.chaos import (
    CHAOS_ACTIONS,
    ChaosEvent,
    ChaosGate,
    ChaosHarness,
    ChaosSchedule,
    ReplicaFaultError,
    parse_chaos_event,
)
from repro.serving.fleet import (
    BrownoutError,
    FleetConfig,
    FleetRequest,
    NoHealthyReplicaError,
    Replica,
    Router,
    SceneRequest,
    ServerFleet,
)
from repro.serving.health import (
    HEALTH_STATES,
    HealthPolicy,
    ReplicaHealth,
)
from repro.serving.loadgen import (
    FleetLoadGenerator,
    LoadGenConfig,
    LoadGenerator,
    LoadReport,
)
from repro.serving.queue import (
    AdmissionError,
    DeadlineExceededError,
    QueueClosedError,
    QueueFullError,
    RequestQueue,
    ServingRequest,
)
from repro.serving.retry import (
    HedgePolicy,
    RetryEvent,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.serving.server import (
    DispatchRecord,
    DrainTimeoutError,
    InferenceRejectedError,
    InferenceServer,
    ServedResult,
    ServingConfig,
    swapped_workspace,
)

__all__ = [
    "AdmissionError",
    "BATCH_SIZE_BUCKETS",
    "BrownoutError",
    "CHAOS_ACTIONS",
    "ChaosEvent",
    "ChaosGate",
    "ChaosHarness",
    "ChaosSchedule",
    "DeadlineExceededError",
    "DispatchRecord",
    "DrainTimeoutError",
    "FleetConfig",
    "FleetLoadGenerator",
    "FleetRequest",
    "HEALTH_STATES",
    "HealthPolicy",
    "HedgePolicy",
    "InferenceRejectedError",
    "InferenceServer",
    "LoadGenConfig",
    "LoadGenerator",
    "LoadReport",
    "MicroBatch",
    "MicroBatcher",
    "NoHealthyReplicaError",
    "QueueClosedError",
    "QueueFullError",
    "Replica",
    "ReplicaFaultError",
    "ReplicaHealth",
    "RequestQueue",
    "RetryEvent",
    "RetryExhaustedError",
    "RetryPolicy",
    "Router",
    "SceneRequest",
    "ServedResult",
    "ServerFleet",
    "ServingConfig",
    "ServingRequest",
    "swapped_workspace",
    "parse_chaos_event",
]
