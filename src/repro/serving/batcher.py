"""Dynamic micro-batching: coalesce queued requests into ``(B, N, 3)``.

The PR-4 batched kernels only pay off when concurrent single-cloud
requests actually share a dispatch — one fused ``knn_batch`` over
``(B, N, 3)`` instead of ``B`` per-cloud calls.  A
:class:`MicroBatcher` drains the :class:`~repro.serving.queue.
RequestQueue` into **buckets keyed by point count** ``N`` (a batch
must be rectangular) and flushes a bucket into a :class:`MicroBatch`
when any of three triggers fires:

- **full** — the bucket reached ``max_batch_size``;
- **timeout** — the bucket's oldest request has waited ``max_wait_s``
  (the latency the batcher may spend fishing for co-batchable
  traffic);
- **drain** — the queue closed; everything still buffered flushes
  immediately so shutdown never strands a request.

Requests whose deadline expires while buffered are cancelled with a
:class:`~repro.serving.queue.DeadlineExceededError` before they can
waste a dispatch slot.

All batcher state is guarded by the queue's own
:attr:`~repro.serving.queue.RequestQueue.condition`, so admission,
bucketing, flushing, and shutdown are ordered by a single lock; both
the blocking :meth:`MicroBatcher.next_batch` (worker threads) and the
non-blocking :meth:`MicroBatcher.poll` (virtual-time load generation)
sit on the same formation logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability.clock import Clock, wall_clock
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.serving.queue import (
    DeadlineExceededError,
    RequestQueue,
    ServingRequest,
    emit_request_trace,
)

#: Histogram buckets for dispatched batch sizes (clouds per batch).
BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
)


@dataclass(frozen=True)
class MicroBatch:
    """One flushed batch, ready for a single batched dispatch.

    Attributes:
        requests: the coalesced requests, admission order.
        xyz: the stacked ``(B, N, 3)`` float64 input batch.
        formed_s: clock reading when the batch was flushed.
        trigger: ``"full"`` | ``"timeout"`` | ``"drain"``.
    """

    requests: Tuple[ServingRequest, ...]
    xyz: np.ndarray
    formed_s: float
    trigger: str

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def n_points(self) -> int:
        return int(self.xyz.shape[1])


class MicroBatcher:
    """Coalesces queued requests into rectangular micro-batches.

    Args:
        queue: the admission queue to drain; its ``condition`` also
            guards all bucket state.
        max_batch_size: flush a bucket at this many clouds.
        max_wait_s: flush a bucket once its oldest request has waited
            this long.
        clock: injectable clock shared with the queue/server.
        metrics: optional registry; dispatched batches become
            ``serving_batches_total`` counters (labelled by trigger),
            a ``serving_batch_size_clouds`` histogram, and
            ``serving_expired_total`` cancellations.
        tracer: optional tracer; pre-dispatch expiries project a
            ``request.expired`` span into the request's trace so a
            deadline miss is visible in the same timeline as the
            batches that did dispatch.
    """

    def __init__(
        self,
        queue: RequestQueue,
        max_batch_size: int = 8,
        max_wait_s: float = 0.05,
        clock: Clock = wall_clock,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be non-negative")
        self.queue = queue
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.clock = clock
        self.metrics = metrics
        self.tracer = tracer
        self.batches_formed = 0
        self.requests_expired = 0
        self._buckets: Dict[int, List[ServingRequest]] = {}

    # Bucket maintenance (caller holds queue.condition) ---------------

    def _ingest_locked(self, now: float) -> None:
        """Move queued requests into point-count buckets."""
        for request in self.queue.pop_pending():
            if request.expired(now):
                self._expire_locked(request, now)
                continue
            self._buckets.setdefault(request.n_points, []).append(
                request
            )

    def _expire_locked(self, request: ServingRequest, now: float) -> None:
        self.requests_expired += 1
        self.queue.release(1)
        if self.metrics is not None:
            self.metrics.counter("serving_expired_total").inc()
        emit_request_trace(
            self.tracer, request, now, "expired", detail="pre-dispatch"
        )
        request.future.set_exception(
            DeadlineExceededError(
                f"request {request.request_id!r} expired "
                f"{now - request.deadline_s:.4f}s past its deadline "
                "before dispatch"
            )
        )

    def _drop_expired_locked(self, now: float) -> None:
        for n_points in list(self._buckets):
            bucket = self._buckets[n_points]
            alive = []
            for request in bucket:
                if request.expired(now):
                    self._expire_locked(request, now)
                else:
                    alive.append(request)
            if alive:
                self._buckets[n_points] = alive
            else:
                del self._buckets[n_points]

    def _pop_due_locked(self, now: float) -> Optional[MicroBatch]:
        """Flush and return one due bucket, or ``None``.

        Preference order: a full bucket, then (once the queue closed)
        any bucket, then a bucket whose oldest request timed out.
        """
        self._drop_expired_locked(now)
        trigger = None
        chosen = None
        for n_points, bucket in self._buckets.items():
            if len(bucket) >= self.max_batch_size:
                chosen, trigger = n_points, "full"
                break
        if chosen is None and self.queue.closed and self._buckets:
            chosen = next(iter(self._buckets))
            trigger = "drain"
        if chosen is None:
            for n_points, bucket in self._buckets.items():
                if now >= bucket[0].arrival_s + self.max_wait_s:
                    chosen, trigger = n_points, "timeout"
                    break
        if chosen is None:
            return None
        bucket = self._buckets[chosen]
        taken = bucket[: self.max_batch_size]
        rest = bucket[self.max_batch_size:]
        if rest:
            self._buckets[chosen] = rest
        else:
            del self._buckets[chosen]
        batch = MicroBatch(
            requests=tuple(taken),
            xyz=np.stack([r.cloud for r in taken]),
            formed_s=now,
            trigger=str(trigger),
        )
        self.queue.release(batch.size)
        self._note_batch(batch, now)
        return batch

    def _note_batch(self, batch: MicroBatch, now: float) -> None:
        self.batches_formed += 1
        if self.metrics is None:
            return
        self.metrics.counter(
            "serving_batches_total", trigger=batch.trigger
        ).inc()
        self.metrics.histogram(
            "serving_batch_size_clouds", buckets=BATCH_SIZE_BUCKETS
        ).observe(float(batch.size))
        oldest = min(r.arrival_s for r in batch.requests)
        self.metrics.histogram(
            "serving_batch_wait_seconds"
        ).observe(max(0.0, now - oldest))

    def _wait_hint_locked(self, now: float) -> Optional[float]:
        """Seconds until the next batch comes due (``None``: no
        bucket).  Zero when a batch is due right now — a full bucket,
        or any bucket once the queue closed — so event-driven callers
        (the virtual-time load generator) see it as dispatchable the
        moment a worker frees up."""
        if self._buckets and (
            self.queue.closed
            or any(
                len(bucket) >= self.max_batch_size
                for bucket in self._buckets.values()
            )
        ):
            return 0.0
        deadlines = [
            bucket[0].arrival_s + self.max_wait_s
            for bucket in self._buckets.values()
        ]
        expiries = [
            request.deadline_s
            for bucket in self._buckets.values()
            for request in bucket
            if request.deadline_s is not None
        ]
        due = deadlines + expiries
        if not due:
            return None
        return max(0.0, min(due) - now)

    # Public formation API --------------------------------------------

    def ingest(self) -> int:
        """Move queued requests into buckets now; returns buffered
        count.

        Event-driven callers (the virtual-time load generator) call
        this after each submission so :attr:`next_flush_at` reflects
        the new request even while every modeled worker is busy.
        """
        with self.queue.condition:
            self._ingest_locked(self.clock())
            return sum(len(b) for b in self._buckets.values())

    def poll(self) -> Optional[MicroBatch]:
        """Non-blocking: return one due batch, or ``None``.

        Used by the virtual-time load generator, which advances the
        injected clock itself and pumps the server between events.
        """
        with self.queue.condition:
            self._ingest_locked(self.clock())
            return self._pop_due_locked(self.clock())

    def expire_due(self) -> int:
        """Cancel every queued/buffered request past its deadline.

        Returns the number of requests expired by this call.  Used by
        the fleet for **stalled** replicas: a hung worker dispatches
        nothing, but its requests must still fail with a typed
        :class:`~repro.serving.queue.DeadlineExceededError` the
        instant their deadlines pass, so callers can retry elsewhere
        instead of waiting forever.
        """
        with self.queue.condition:
            now = self.clock()
            self._ingest_locked(now)
            before = self.requests_expired
            self._drop_expired_locked(now)
            return self.requests_expired - before

    def next_batch(
        self, timeout_s: Optional[float] = None
    ) -> Optional[MicroBatch]:
        """Block until a batch is due; ``None`` means fully drained.

        Worker threads loop on this.  Once the queue is closed and
        every bucket has flushed, returns ``None`` so workers exit.
        With a ``timeout_s``, also returns ``None`` when nothing
        became due within that host time (callers distinguish via
        :meth:`drained`).
        """
        remaining = timeout_s
        with self.queue.condition:
            while True:
                now = self.clock()
                self._ingest_locked(now)
                batch = self._pop_due_locked(now)
                if batch is not None:
                    return batch
                if self.queue.closed and not self._buckets:
                    # Fully drained (close() already flushed buckets
                    # through the "drain" trigger above).
                    return None
                if remaining is not None and remaining <= 0:
                    return None
                wait = self._wait_hint_locked(now)
                if remaining is not None:
                    wait = (
                        remaining
                        if wait is None
                        else min(wait, remaining)
                    )
                # Bounded waits keep a worker responsive to close()
                # even if a notify is missed.
                wait = 0.05 if wait is None else min(wait, 0.05)
                if remaining is not None:
                    remaining -= wait
                self.queue.condition.wait(wait)

    def cancel_buffered(self) -> List[ServingRequest]:
        """Remove and return every buffered request (non-drain stop)."""
        with self.queue.condition:
            taken = [
                request
                for bucket in self._buckets.values()
                for request in bucket
            ]
            self._buckets.clear()
            if taken:
                self.queue.release(len(taken))
            if self.metrics is not None:
                self.metrics.gauge("serving_queue_depth").set(0.0)
            return taken

    def drained(self) -> bool:
        """True when the queue closed and no request is buffered."""
        with self.queue.condition:
            if not self.queue.closed or self._buckets:
                return False
            depth = self.queue.depth
            if self.metrics is not None:
                self.metrics.gauge("serving_queue_depth").set(
                    float(depth)
                )
            return depth == 0

    @property
    def next_flush_at(self) -> Optional[float]:
        """Earliest clock instant a timeout/expiry flush comes due."""
        with self.queue.condition:
            now = self.clock()
            hint = self._wait_hint_locked(now)
            return None if hint is None else now + hint

    @property
    def next_expiry_at(self) -> Optional[float]:
        """Earliest clock instant a buffered deadline expires.

        Unlike :attr:`next_flush_at` this ignores timeout/full
        triggers, so a virtual-time event loop can park a *stalled*
        replica on its next deadline expiry without spinning on a
        flush that will never dispatch.
        """
        with self.queue.condition:
            self._ingest_locked(self.clock())
            expiries = [
                request.deadline_s
                for bucket in self._buckets.values()
                for request in bucket
                if request.deadline_s is not None
            ]
            return min(expiries) if expiries else None

    @property
    def buffered(self) -> int:
        """Requests sitting in buckets, not yet dispatched."""
        with self.queue.condition:
            return sum(len(b) for b in self._buckets.values())
