"""Bounded request queue with admission control and deadlines.

The serving layer's front door.  A :class:`RequestQueue` accepts
:class:`ServingRequest` objects up to a fixed depth and rejects the
rest with a typed :class:`AdmissionError` — under overload the cheap
and observable failure mode is an immediate rejection at the door, not
an unbounded queue whose tail latency silently blows every deadline
(the paper's per-frame budgets, Sec. 7, leave no room for queueing
debt).  Each request carries an optional absolute deadline read from
the injectable :data:`~repro.observability.clock.Clock`; requests that
expire while queued are cancelled by the batcher with a typed
:class:`DeadlineExceededError` instead of wasting a dispatch slot.

The queue is the synchronization point of the serving stack: producers
call :meth:`RequestQueue.put` from any thread, and the
:class:`~repro.serving.batcher.MicroBatcher` drains it under the
queue's own :attr:`~RequestQueue.condition` so a single lock orders
admission, batch formation, and shutdown.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.observability.clock import Clock, wall_clock
from repro.observability.context import TraceContext
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer


class AdmissionError(RuntimeError):
    """The serving layer refused to accept a request.

    Carries a machine-readable :attr:`reason` so load generators and
    clients can tell deliberate load shedding from bugs.
    """

    reason = "admission"

    def __init__(self, message: str) -> None:
        super().__init__(message)


class QueueFullError(AdmissionError):
    """Rejected because the queue is at its configured depth."""

    reason = "queue_full"


class QueueClosedError(AdmissionError):
    """Rejected because the server is draining or stopped."""

    reason = "closed"


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before it could be dispatched."""


@dataclass
class ServingRequest:
    """One queued inference request for a single ``(N, 3)`` cloud.

    Attributes:
        request_id: caller-visible identifier (unique per server).
        cloud: the ``(N, 3)`` float64 point cloud to classify/segment.
        arrival_s: clock reading when the request was admitted.
        deadline_s: absolute clock instant after which the request is
            cancelled instead of dispatched; ``None`` means no
            deadline.
        future: resolves to a
            :class:`~repro.serving.server.ServedResult` or to a typed
            error (:class:`DeadlineExceededError`,
            :class:`QueueClosedError`, a guard rejection, ...).
        ctx: trace context minted at the front door (fleet or server
            submit); every span the request touches — queue wait,
            batch execution, kernel stages, terminal outcome — joins
            ``ctx.trace_id`` so cross-replica attempts stitch into a
            single trace.  ``None`` only when tracing is disabled.
    """

    request_id: str
    cloud: np.ndarray
    arrival_s: float
    deadline_s: Optional[float] = None
    future: Future = field(default_factory=Future)
    ctx: Optional[TraceContext] = None

    @property
    def n_points(self) -> int:
        return int(self.cloud.shape[0])

    def expired(self, now: float) -> bool:
        """The boundary counts as expired (``now >= deadline``), so a
        virtual-time event loop parked exactly on the deadline makes
        progress instead of re-polling the same instant forever."""
        return self.deadline_s is not None and now >= self.deadline_s


def emit_request_trace(
    tracer: Tracer,
    request: ServingRequest,
    now: float,
    outcome: str,
    detail: str = "",
) -> None:
    """Project a request's unhappy terminal state into its trace.

    Emits a ``request.<outcome>`` span covering arrival → ``now`` under
    the request's :class:`TraceContext`, and — when this context *owns*
    the trace (``ctx.is_root``) — the late-bound root span reserved at
    mint time.  Shared by every path that resolves a request future
    without a result: batcher expiry, batch failure, shutdown
    cancellation, and fleet shed/brownout paths, so no future is ever
    settled outside its trace (lint rule OBS-303 keeps it that way).
    """
    ctx = request.ctx
    if ctx is None or not tracer.enabled:
        return
    attrs: Dict[str, object] = {"outcome": outcome}
    if detail:
        attrs["detail"] = detail
    tracer.emit_span(
        f"request.{outcome}",
        start_s=tracer.rel(request.arrival_s),
        duration_s=max(0.0, now - request.arrival_s),
        trace_id=ctx.trace_id,
        parent_id=ctx.span_id,
        thread="requests",
        attrs=attrs,
    )
    if ctx.is_root:
        root_attrs: Dict[str, object] = {
            "request_id": request.request_id,
            "outcome": outcome,
        }
        tracer.emit_span(
            "request",
            start_s=tracer.rel(request.arrival_s),
            duration_s=max(0.0, now - request.arrival_s),
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            thread="requests",
            attrs=root_attrs,
        )


class RequestQueue:
    """Bounded FIFO of :class:`ServingRequest` with admission control.

    Args:
        max_depth: undispatched backlog (queued here plus buffered in
            the batcher's buckets) before :meth:`put` rejects with
            :class:`QueueFullError`.  The batcher reports dispatches
            back through :meth:`release`, so the bound covers the
            whole pre-dispatch pipeline, not just the hand-off list.
        clock: injectable clock shared with the batcher and server.
        metrics: optional registry; admission decisions become
            ``serving_admitted_total`` / ``serving_rejected_total``
            counters and a ``serving_queue_depth`` gauge.

    Attributes:
        condition: the queue's :class:`threading.Condition`.  The
            batcher waits on it and :meth:`put` / :meth:`close` notify
            it, so one lock orders the whole serving hand-off;
            :meth:`pop_pending` must be called holding it.
        admitted: requests accepted so far (backpressure counter).
        rejected: requests refused so far (backpressure counter).
        rejected_by_reason: rejection counts keyed by the typed
            :attr:`AdmissionError.reason` (``queue_full``,
            ``closed``, ...), mirrored into the load report.
    """

    def __init__(
        self,
        max_depth: int = 64,
        clock: Clock = wall_clock,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be positive")
        self.max_depth = int(max_depth)
        self.clock = clock
        self.metrics = metrics
        self.condition = threading.Condition()
        self.admitted = 0
        self.rejected = 0
        self.rejected_by_reason: Dict[str, int] = {}
        self._items: List[ServingRequest] = []
        self._backlog = 0
        self._closed = False

    # Admission -------------------------------------------------------

    def put(self, request: ServingRequest) -> None:
        """Admit one request or raise a typed :class:`AdmissionError`.

        Thread-safe; wakes any batcher blocked on
        :attr:`condition`.
        """
        with self.condition:
            if self._closed:
                self._count_rejection(QueueClosedError.reason)
                raise QueueClosedError(
                    f"request {request.request_id!r} rejected: the "
                    "server is draining"
                )
            if self._backlog >= self.max_depth:
                self._count_rejection(QueueFullError.reason)
                raise QueueFullError(
                    f"request {request.request_id!r} rejected: "
                    f"backlog is at max depth {self.max_depth}"
                )
            self._items.append(request)
            self.admitted += 1
            self._backlog += 1
            if self.metrics is not None:
                self.metrics.counter("serving_admitted_total").inc()
                self.metrics.gauge("serving_queue_depth").set(
                    float(self._backlog)
                )
            self.condition.notify_all()

    def _count_rejection(self, reason: str) -> None:
        self.rejected += 1
        self.rejected_by_reason[reason] = (
            self.rejected_by_reason.get(reason, 0) + 1
        )
        if self.metrics is not None:
            self.metrics.counter(
                "serving_rejected_total", reason=reason
            ).inc()

    # Consumption (batcher side) --------------------------------------

    def pop_pending(self) -> List[ServingRequest]:
        """Remove and return every queued request, FIFO order.

        Caller must hold :attr:`condition` (the batcher's ingest path
        does; see :class:`~repro.serving.batcher.MicroBatcher`).
        Popped requests still count toward the admission backlog
        until :meth:`release` reports their dispatch/cancellation.
        """
        items, self._items = self._items, []
        if items and self.metrics is not None:
            self.metrics.gauge("serving_queue_depth").set(
                float(self._backlog)
            )
        return items

    def release(self, count: int) -> None:
        """Report ``count`` requests as dispatched/expired/cancelled.

        Caller must hold :attr:`condition`.  Shrinks the admission
        backlog so new traffic can be admitted in their place.
        """
        self._backlog = max(0, self._backlog - count)
        if self.metrics is not None:
            self.metrics.gauge("serving_queue_depth").set(
                float(self._backlog)
            )
        self.condition.notify_all()

    # Lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wakes every waiter so drains can finish."""
        with self.condition:
            self._closed = True
            if self.metrics is not None:
                self.metrics.gauge("serving_queue_open").set(0.0)
            self.condition.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def depth(self) -> int:
        """Undispatched backlog (queued here + buffered in buckets)."""
        with self.condition:
            return self._backlog

    def __repr__(self) -> str:
        return (
            f"RequestQueue(backlog={self._backlog}/{self.max_depth}, "
            f"admitted={self.admitted}, rejected={self.rejected}, "
            f"closed={self._closed})"
        )
