"""Per-replica health tracking for the serving fleet.

:class:`ReplicaHealth` is a deterministic state machine over the
signals the serving stack already exports — windowed failure rate,
consecutive failures, queue depth, windowed p95 attempt latency, and
the guard's breaker state — that decides whether a replica keeps
receiving traffic:

``HEALTHY -> DEGRADED -> EJECTED -> PROBATION -> HEALTHY``

- **HEALTHY -> DEGRADED** — the windowed failure rate crosses
  ``degrade_failure_rate``, queue depth or windowed p95 latency
  crosses its threshold, or a guard breaker opens.  Degraded replicas
  keep serving; the router only deprioritizes them behind healthy
  peers, mirroring HgPCN's pick-the-right-engine argument at the
  replica level.
- **-> EJECTED** — ``eject_consecutive_failures`` failures in a row,
  a windowed failure rate past ``eject_failure_rate``, or an explicit
  :meth:`ReplicaHealth.force_eject` (chaos kill).  Ejected replicas
  receive no traffic at all; shedding beats serving through a replica
  whose breaker already fell back to the O(nN) exact path.
- **EJECTED -> PROBATION** — after ``eject_s`` on the injected clock
  the replica is re-admitted on probation.
- **PROBATION -> HEALTHY** — ``probation_successes`` consecutive
  successes; any failure during probation re-ejects immediately.

All timestamps come from caller-provided clock readings (no wall-clock
reads), every transition is appended to
:attr:`ReplicaHealth.transitions`, and state is exported as the
``serving_replica_state`` gauge plus a
``serving_replica_transitions_total`` counter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry

HEALTHY = "healthy"
DEGRADED = "degraded"
EJECTED = "ejected"
PROBATION = "probation"

#: All health states, in escalation order.
HEALTH_STATES: Tuple[str, ...] = (
    HEALTHY, DEGRADED, EJECTED, PROBATION,
)

#: Gauge encoding of each state (``serving_replica_state``).
STATE_CODES: Dict[str, float] = {
    HEALTHY: 0.0,
    DEGRADED: 1.0,
    EJECTED: 2.0,
    PROBATION: 3.0,
}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds of the replica health state machine.

    Attributes:
        window_s: sliding window over outcomes and latencies.
        min_samples: outcomes needed before rate thresholds apply.
        degrade_failure_rate: windowed failure rate that marks a
            healthy replica degraded.
        eject_failure_rate: windowed failure rate that ejects.
        eject_consecutive_failures: failures in a row that eject
            regardless of the windowed rate.
        degrade_queue_depth: queue depth that marks a healthy replica
            degraded; ``None`` disables the signal.
        degrade_p95_s: windowed p95 attempt latency that degrades;
            ``None`` disables the signal.
        eject_s: seconds an ejected replica sits out before probation.
        probation_successes: consecutive successes that promote a
            probation replica back to healthy.
        recover_successes: consecutive successes that promote a
            degraded replica back to healthy (the windowed failure
            rate must also sit below ``degrade_failure_rate``).
    """

    window_s: float = 2.0
    min_samples: int = 4
    degrade_failure_rate: float = 0.2
    eject_failure_rate: float = 0.65
    eject_consecutive_failures: int = 4
    degrade_queue_depth: Optional[int] = 48
    degrade_p95_s: Optional[float] = None
    eject_s: float = 1.0
    probation_successes: int = 3
    recover_successes: int = 2

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")
        if not 0.0 < self.degrade_failure_rate <= 1.0:
            raise ValueError(
                "degrade_failure_rate must be within (0, 1]"
            )
        if not 0.0 < self.eject_failure_rate <= 1.0:
            raise ValueError(
                "eject_failure_rate must be within (0, 1]"
            )
        if self.eject_failure_rate < self.degrade_failure_rate:
            raise ValueError(
                "eject_failure_rate must be >= degrade_failure_rate"
            )
        if self.eject_consecutive_failures < 1:
            raise ValueError(
                "eject_consecutive_failures must be positive"
            )
        if (
            self.degrade_queue_depth is not None
            and self.degrade_queue_depth < 1
        ):
            raise ValueError("degrade_queue_depth must be positive")
        if self.degrade_p95_s is not None and self.degrade_p95_s <= 0:
            raise ValueError("degrade_p95_s must be positive")
        if self.eject_s <= 0:
            raise ValueError("eject_s must be positive")
        if self.probation_successes < 1:
            raise ValueError("probation_successes must be positive")
        if self.recover_successes < 1:
            raise ValueError("recover_successes must be positive")


class ReplicaHealth:
    """Health state machine for one replica.

    Args:
        replica: label used in metrics and transition records.
        policy: thresholds; defaults are tuned for the chaos tests.
        metrics: optional registry for the state gauge and the
            transition counter.
    """

    def __init__(
        self,
        replica: str,
        policy: Optional[HealthPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.replica = str(replica)
        self.policy = policy or HealthPolicy()
        self.metrics = metrics
        self.state = HEALTHY
        #: ``(t_s, from_state, to_state, reason)`` per transition.
        self.transitions: List[Tuple[float, str, str, str]] = []
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._latencies: Deque[Tuple[float, float]] = deque()
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._ejected_at: Optional[float] = None
        self._export_state()

    # Signal intake ---------------------------------------------------

    def record_success(
        self, now: float, latency_s: Optional[float] = None
    ) -> None:
        """Record one successful attempt finishing at ``now``."""
        self.tick(now)
        self._outcomes.append((now, True))
        if latency_s is not None:
            self._latencies.append((now, float(latency_s)))
        self._trim(now)
        self._consecutive_successes += 1
        self._consecutive_failures = 0
        policy = self.policy
        if (
            self.state == PROBATION
            and self._consecutive_successes
            >= policy.probation_successes
        ):
            self._set_state(now, HEALTHY, "probation_passed")
        elif (
            self.state == DEGRADED
            and self._consecutive_successes >= policy.recover_successes
            and self.failure_rate(now) < policy.degrade_failure_rate
        ):
            self._set_state(now, HEALTHY, "recovered")

    def record_failure(
        self, now: float, reason: str = "failure"
    ) -> None:
        """Record one failed attempt finishing at ``now``."""
        self.tick(now)
        self._outcomes.append((now, False))
        self._trim(now)
        self._consecutive_failures += 1
        self._consecutive_successes = 0
        if self.state == PROBATION:
            self._eject(now, f"probation_failure:{reason}")
            return
        if self.state == EJECTED:
            return
        policy = self.policy
        total, failed = self._window_counts()
        rate = failed / total if total else 0.0
        if self._consecutive_failures >= (
            policy.eject_consecutive_failures
        ) or (
            total >= policy.min_samples
            and rate >= policy.eject_failure_rate
        ):
            self._eject(now, reason)
        elif (
            self.state == HEALTHY
            and total >= policy.min_samples
            and rate >= policy.degrade_failure_rate
        ):
            self._set_state(now, DEGRADED, f"failure_rate:{reason}")

    def observe(
        self,
        now: float,
        queue_depth: Optional[int] = None,
        breaker_open: bool = False,
    ) -> None:
        """Fold in ambient signals (queue depth, breaker state)."""
        self.tick(now)
        if self.state != HEALTHY:
            return
        policy = self.policy
        if breaker_open:
            self._set_state(now, DEGRADED, "breaker_open")
        elif (
            queue_depth is not None
            and policy.degrade_queue_depth is not None
            and queue_depth >= policy.degrade_queue_depth
        ):
            self._set_state(now, DEGRADED, "queue_depth")
        elif policy.degrade_p95_s is not None:
            p95 = self.p95_latency_s(now)
            if p95 is not None and p95 > policy.degrade_p95_s:
                self._set_state(now, DEGRADED, "p95_latency")

    def force_eject(self, now: float, reason: str) -> None:
        """Eject immediately (chaos kill, operator action)."""
        self.tick(now)
        if self.state != EJECTED:
            self._eject(now, reason)

    # Time ------------------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance time-driven transitions (ejection sit-out)."""
        if (
            self.state == EJECTED
            and self._ejected_at is not None
            and now >= self._ejected_at + self.policy.eject_s
        ):
            self._consecutive_failures = 0
            self._consecutive_successes = 0
            self._set_state(now, PROBATION, "eject_elapsed")

    def routable(self, now: float) -> bool:
        """Whether the router may send this replica traffic at ``now``."""
        self.tick(now)
        return self.state != EJECTED

    # Derived signals -------------------------------------------------

    def failure_rate(self, now: float) -> float:
        """Windowed failure rate at ``now`` (0 with no samples)."""
        self._trim(now)
        total, failed = self._window_counts()
        return failed / total if total else 0.0

    def p95_latency_s(self, now: float) -> Optional[float]:
        """Windowed p95 attempt latency, or ``None`` with no samples."""
        self._trim(now)
        if not self._latencies:
            return None
        ordered = sorted(latency for _, latency in self._latencies)
        index = int(0.95 * (len(ordered) - 1))
        return ordered[index]

    def snapshot(self, now: float) -> Dict[str, object]:
        """Plain-data view used by reports and the CLI."""
        return {
            "replica": self.replica,
            "state": self.state,
            "failure_rate": self.failure_rate(now),
            "consecutive_failures": self._consecutive_failures,
            "transitions": len(self.transitions),
        }

    # Internals -------------------------------------------------------

    def _window_counts(self) -> Tuple[int, int]:
        total = len(self._outcomes)
        failed = sum(1 for _, ok in self._outcomes if not ok)
        return total, failed

    def _trim(self, now: float) -> None:
        horizon = now - self.policy.window_s
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()
        while self._latencies and self._latencies[0][0] < horizon:
            self._latencies.popleft()

    def _eject(self, now: float, reason: str) -> None:
        self._ejected_at = now
        # A clean slate on re-admission: stale window samples must not
        # re-eject a probation replica on its first post-sit-out error
        # path evaluation.
        self._outcomes.clear()
        self._latencies.clear()
        self._consecutive_failures = 0
        self._consecutive_successes = 0
        self._set_state(now, EJECTED, reason)

    def _set_state(self, now: float, state: str, reason: str) -> None:
        if state == self.state:
            return
        previous = self.state
        self.state = state
        self.transitions.append((now, previous, state, reason))
        if self.metrics is not None:
            self.metrics.counter(
                "serving_replica_transitions_total",
                replica=self.replica,
                from_state=previous,
                to_state=state,
            ).inc()
        self._export_state()

    def _export_state(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "serving_replica_state", replica=self.replica
            ).set(STATE_CODES[self.state])

    def __repr__(self) -> str:
        return (
            f"ReplicaHealth({self.replica!r}, state={self.state!r}, "
            f"transitions={len(self.transitions)})"
        )
