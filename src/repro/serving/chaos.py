"""Deterministic chaos harness for the serving fleet.

PR 1's :class:`~repro.robustness.faults.FaultInjector` corrupts
*inputs* on a seeded schedule; this module applies the same philosophy
one layer up and breaks *replicas* on a virtual-time schedule.  A
:class:`ChaosSchedule` is a sorted list of :class:`ChaosEvent` —
``kill``, ``stall``, ``slow``, ``error``, or ``recover`` a replica at
an exact instant on the shared
:class:`~repro.observability.clock.FixedClock` — and a
:class:`ChaosHarness` replays it against a
:class:`~repro.serving.fleet.ServerFleet` as the load generator's
event loop advances time.  Because both the faults and the load are
functions of (seed, schedule), the whole chaos matrix is reproducible
enough to run in tier-1 CI.

Actions:

- ``kill`` — the replica drops every in-flight and buffered attempt
  with a :class:`ReplicaFaultError` and its health is force-ejected;
  new attempts route around it until ``recover``.
- ``stall`` — the replica stops dispatching but keeps its backlog;
  deadlines still expire (the batcher cancels them), which is how a
  hung worker looks from outside.
- ``slow`` — dispatches take ``factor`` times their simulated device
  seconds, modeling FlashFPS-style fallback cost asymmetry.
- ``error`` — every dispatched batch fails with a
  :class:`ReplicaFaultError` (retryable, unlike a pipeline bug).
- ``recover`` — clears kill/stall/slow/error state; health still
  walks EJECTED -> PROBATION -> HEALTHY on its own clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.observability.metrics import MetricsRegistry

#: Supported chaos actions, in documentation order.
CHAOS_ACTIONS: Tuple[str, ...] = (
    "kill", "stall", "slow", "error", "recover",
)


class ReplicaFaultError(RuntimeError):
    """An attempt failed because its replica is dead or erroring.

    Retryable: the fleet's :class:`~repro.serving.retry.RetryPolicy`
    may re-dispatch the request to another replica.
    """

    reason = "replica_fault"


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault against one replica.

    Attributes:
        at_s: virtual-clock instant the event fires.
        replica: target replica index.
        action: one of :data:`CHAOS_ACTIONS`.
        factor: slowdown multiplier (``slow`` only).
    """

    at_s: float
    replica: int
    action: str
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("at_s must be non-negative")
        if self.replica < 0:
            raise ValueError("replica must be non-negative")
        if self.action not in CHAOS_ACTIONS:
            raise ValueError(
                f"action must be one of {CHAOS_ACTIONS}, "
                f"got {self.action!r}"
            )
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")

    def describe(self) -> str:
        text = f"{self.at_s:.3f}s {self.action} replica {self.replica}"
        if self.action == "slow":
            text += f" x{self.factor:g}"
        return text


def parse_chaos_event(spec: str) -> ChaosEvent:
    """Parse ``action:replica:at_s[:factor]`` (the CLI format)."""
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            "chaos event spec must be action:replica:at_s[:factor], "
            f"got {spec!r}"
        )
    action, replica_text, at_text = parts[0], parts[1], parts[2]
    factor = float(parts[3]) if len(parts) == 4 else 4.0
    return ChaosEvent(
        at_s=float(at_text),
        replica=int(replica_text),
        action=action,
        factor=factor,
    )


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered, immutable fault schedule."""

    events: Tuple[ChaosEvent, ...] = ()

    @classmethod
    def from_specs(cls, specs: Sequence[str]) -> "ChaosSchedule":
        """Build a schedule from CLI ``action:replica:at_s`` specs."""
        return cls(
            events=tuple(parse_chaos_event(spec) for spec in specs)
        )

    @classmethod
    def standard(
        cls, replicas: int, duration_s: float
    ) -> "ChaosSchedule":
        """The CI smoke schedule: kill one replica mid-run, recover it
        late enough that probation re-admission is exercised."""
        if replicas < 2:
            return cls()
        target = 1 % replicas
        return cls(
            events=(
                ChaosEvent(
                    at_s=0.4 * duration_s,
                    replica=target,
                    action="kill",
                ),
                ChaosEvent(
                    at_s=0.7 * duration_s,
                    replica=target,
                    action="recover",
                ),
            )
        )

    def ordered(self) -> Tuple[ChaosEvent, ...]:
        """Events sorted by (time, replica, action)."""
        return tuple(
            sorted(
                self.events,
                key=lambda e: (e.at_s, e.replica, e.action),
            )
        )

    def __len__(self) -> int:
        return len(self.events)


class ChaosGate:
    """Mutable per-replica chaos state consulted by the fleet."""

    def __init__(self) -> None:
        self.killed = False
        self.stalled = False
        self.erroring = False
        self.slow_factor = 1.0

    @property
    def failing(self) -> bool:
        """Attempts on this replica fail outright."""
        return self.killed or self.erroring

    @property
    def nominal(self) -> bool:
        return not (
            self.killed
            or self.stalled
            or self.erroring
            or self.slow_factor != 1.0
        )

    def reset(self) -> None:
        self.killed = False
        self.stalled = False
        self.erroring = False
        self.slow_factor = 1.0

    def describe(self) -> str:
        flags = []
        if self.killed:
            flags.append("killed")
        if self.stalled:
            flags.append("stalled")
        if self.erroring:
            flags.append("erroring")
        if self.slow_factor != 1.0:
            flags.append(f"slow x{self.slow_factor:g}")
        return ", ".join(flags) or "nominal"


class ChaosHarness:
    """Replays a :class:`ChaosSchedule` against a fleet.

    Args:
        fleet: the target; must expose ``kill_replica`` /
            ``stall_replica`` / ``slow_replica`` / ``error_replica`` /
            ``recover_replica`` (duck-typed to avoid an import cycle
            with :mod:`repro.serving.fleet`).
        schedule: the fault schedule; replayed once, in time order.
        metrics: optional registry (defaults to the fleet's); applied
            events count into ``serving_chaos_events_total``.
    """

    def __init__(
        self,
        fleet,
        schedule: ChaosSchedule,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.fleet = fleet
        self.schedule = schedule
        if metrics is None:
            metrics = getattr(fleet, "metrics", None)
        self.metrics = metrics
        self._pending: List[ChaosEvent] = list(schedule.ordered())
        self._cursor = 0
        self.applied: List[ChaosEvent] = []

    @property
    def next_event_at(self) -> Optional[float]:
        """Virtual instant of the next unapplied event, if any."""
        if self._cursor >= len(self._pending):
            return None
        return self._pending[self._cursor].at_s

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._pending)

    def apply_due(self, now: float) -> List[ChaosEvent]:
        """Apply every event with ``at_s <= now``; returns them."""
        fired: List[ChaosEvent] = []
        while (
            self._cursor < len(self._pending)
            and self._pending[self._cursor].at_s <= now
        ):
            event = self._pending[self._cursor]
            self._cursor += 1
            self._apply(event, now)
            fired.append(event)
        return fired

    def _apply(self, event: ChaosEvent, now: float) -> None:
        fleet = self.fleet
        if event.action == "kill":
            fleet.kill_replica(event.replica, now=now)
        elif event.action == "stall":
            fleet.stall_replica(event.replica, now=now)
        elif event.action == "slow":
            fleet.slow_replica(
                event.replica, factor=event.factor, now=now
            )
        elif event.action == "error":
            fleet.error_replica(event.replica, now=now)
        else:
            fleet.recover_replica(event.replica, now=now)
        self.applied.append(event)
        if self.metrics is not None:
            self.metrics.counter(
                "serving_chaos_events_total", action=event.action
            ).inc()
