"""Thread-pool inference server over the batched pipeline kernels.

:class:`InferenceServer` turns an
:class:`~repro.pipeline.EdgePCPipeline` (or a
:class:`~repro.robustness.guard.GuardedPipeline`) into a request/
response service: callers :meth:`~InferenceServer.submit` single
``(N, 3)`` clouds and get back per-request futures, while a
:class:`~repro.serving.batcher.MicroBatcher` coalesces the traffic
into ``(B, N, 3)`` micro-batches that ride the PR-4 batched kernel
path in one dispatch.

Two execution modes share one dispatch routine:

- **threaded** — :meth:`~InferenceServer.start` spawns a worker pool;
  each worker blocks on the batcher and dispatches with its own
  thread-local :class:`~repro.core.workspace.Workspace` (claimed via
  the owning-thread assertion) swapped into the model for the
  duration of the forward pass.  Model forwards are serialized by a
  dispatch lock — the model and the guard's breakers are shared
  mutable state — while admission, batching, cancellation, and future
  completion run concurrently.
- **virtual** — :meth:`~InferenceServer.pump` forms and dispatches
  every due batch inline on the caller's thread.  Driven by the
  deterministic load generator under a
  :class:`~repro.observability.clock.FixedClock`.

Shutdown is graceful by default: :meth:`~InferenceServer.stop` closes
the queue (new submissions get a typed
:class:`~repro.serving.queue.QueueClosedError`), lets the workers
flush every buffered request through the batcher's drain trigger, and
joins them — zero admitted requests are ever left without a terminal
future outcome.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability.clock import Clock, wall_clock
from repro.observability.context import TraceContext
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.core.workspace import Workspace
from repro.serving.batcher import MicroBatch, MicroBatcher
from repro.serving.queue import (
    QueueClosedError,
    RequestQueue,
    ServingRequest,
    emit_request_trace,
)

#: Histogram buckets for end-to-end request latency (seconds).
REQUEST_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class InferenceRejectedError(RuntimeError):
    """The pipeline refused the batch (guard rejection, bad input)."""


class DrainTimeoutError(RuntimeError):
    """A worker thread failed to join within ``stop()``'s timeout.

    A thread that outlives the join may still hold requests whose
    futures will never resolve; surfacing that as a typed error (with
    the stuck thread names) beats silently dropping the thread and
    letting the loss go unnoticed.
    """


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving layer (see ``docs/serving.md``).

    Attributes:
        max_queue_depth: admission bound of the request queue.
        max_batch_size: clouds coalesced per dispatched batch.
        max_wait_ms: micro-batching window — how long the oldest
            queued request may wait for co-batchable traffic.
        workers: dispatch worker threads (threaded mode) or modeled
            parallel servers (virtual mode).
        default_deadline_ms: deadline applied to requests submitted
            without one; ``None`` disables the default.
    """

    max_queue_depth: int = 64
    max_batch_size: int = 8
    max_wait_ms: float = 50.0
    workers: int = 2
    default_deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive")
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms <= 0
        ):
            raise ValueError("default_deadline_ms must be positive")


@dataclass(frozen=True)
class ServedResult:
    """Per-request slice of one batched inference.

    Attributes:
        request_id: the request this slice answers.
        logits: this cloud's logits (class axis last).
        prediction: argmax over the class axis.
        batch_size: clouds in the dispatch that served this request.
        trigger: what flushed the batch (full/timeout/drain).
        queue_wait_s: admission-to-dispatch wait on the serving clock.
        simulated_batch_s: the whole batch's simulated device seconds.
        degraded_stages: guard fallbacks applied to the batch, if any.
        trace_id: the request's trace id (empty when tracing was off),
            so callers can join a result against the exported trace.
    """

    request_id: str
    logits: np.ndarray
    prediction: np.ndarray
    batch_size: int
    trigger: str
    queue_wait_s: float
    simulated_batch_s: float
    degraded_stages: Tuple[str, ...] = ()
    trace_id: str = ""


@dataclass(frozen=True)
class DispatchRecord:
    """Bookkeeping for one dispatched batch (load-generator input)."""

    dispatched_s: float
    trigger: str
    size: int
    n_points: int
    simulated_s: float
    request_ids: Tuple[str, ...]
    arrivals_s: Tuple[float, ...]
    ok: bool
    error: str = ""


@contextmanager
def swapped_workspace(model, workspace: Workspace):
    """Temporarily point a model (and submodules) at ``workspace``.

    Models read ``self.workspace`` per forward call, so an attribute
    swap gives each serving worker its own scratch pool without
    rebuilding the module tree (mirrors
    :func:`~repro.robustness.guard.swapped_config`).
    """
    targets = (
        list(model.modules()) if hasattr(model, "modules") else [model]
    )
    saved = []
    try:
        for module in targets:
            if hasattr(module, "workspace"):
                saved.append((module, module.workspace))
                module.workspace = workspace
        yield
    finally:
        for module, previous in saved:
            module.workspace = previous


class InferenceServer:
    """Micro-batching worker-pool server around one pipeline.

    Args:
        pipeline: an :class:`~repro.pipeline.EdgePCPipeline` or
            :class:`~repro.robustness.guard.GuardedPipeline`; batches
            go through its ``infer`` so validation, telemetry, and
            guard fallbacks all apply to served traffic.
        config: serving knobs; defaults are tuned for the demo models.
        clock: injectable clock; pass a
            :class:`~repro.observability.clock.FixedClock` for
            deterministic virtual-time serving.
        tracer: optional tracer (defaults to the pipeline's).
        metrics: optional registry (defaults to the pipeline's).
    """

    def __init__(
        self,
        pipeline,
        config: Optional[ServingConfig] = None,
        clock: Clock = wall_clock,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ServingConfig()
        self.clock = clock
        if tracer is None:
            tracer = getattr(pipeline, "tracer", None) or NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            metrics = getattr(pipeline, "metrics", None)
        self.metrics = metrics
        self.queue = RequestQueue(
            max_depth=self.config.max_queue_depth,
            clock=clock,
            metrics=metrics,
        )
        self.batcher = MicroBatcher(
            self.queue,
            max_batch_size=self.config.max_batch_size,
            max_wait_s=self.config.max_wait_ms / 1e3,
            clock=clock,
            metrics=metrics,
            tracer=self.tracer,
        )
        self.records: List[DispatchRecord] = []
        self.completed = 0
        self.failed = 0
        self._sequence = 0
        self._threads: List[threading.Thread] = []
        self._dispatch_lock = threading.Lock()
        self._records_lock = threading.Lock()
        self._local = threading.local()

    # Submission ------------------------------------------------------

    def submit(
        self,
        cloud: np.ndarray,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
        ctx: Optional[TraceContext] = None,
    ) -> ServingRequest:
        """Admit one ``(N, 3)`` cloud; returns the queued request.

        ``deadline_s`` is relative to now on the serving clock (the
        config's ``default_deadline_ms`` applies when omitted).
        ``ctx`` carries an upstream trace context (the fleet passes
        one per attempt); when omitted and tracing is on, the server
        mints a root context here so even standalone submissions get a
        stitched trace.  Raises a typed
        :class:`~repro.serving.queue.AdmissionError` when the queue
        is full or the server is draining; full sanitization happens
        later, inside the pipeline, where its policy and metrics
        apply.
        """
        with self.tracer.span("serving.submit", "serving") as span:
            cloud = np.asarray(cloud, dtype=np.float64)
            if cloud.ndim != 2 or cloud.shape[-1] != 3:
                raise ValueError(
                    f"submit() takes one (N, 3) cloud, got shape "
                    f"{cloud.shape}"
                )
            now = self.clock()
            if deadline_s is None and (
                self.config.default_deadline_ms is not None
            ):
                deadline_s = self.config.default_deadline_ms / 1e3
            rid = (
                request_id
                if request_id is not None
                else self._next_id()
            )
            if ctx is None:
                ctx = self.tracer.mint_context(rid)
            request = ServingRequest(
                request_id=rid,
                cloud=cloud,
                arrival_s=now,
                deadline_s=(
                    None if deadline_s is None else now + deadline_s
                ),
                ctx=ctx,
            )
            span.set("request_id", request.request_id)
            span.set("points", request.n_points)
            if ctx is not None:
                span.set("trace_id", ctx.trace_id)
            self.queue.put(request)
            return request

    def _next_id(self) -> str:
        with self._records_lock:
            self._sequence += 1
            return f"r{self._sequence:06d}"

    # Dispatch (shared by workers and the virtual pump) ---------------

    def _workspace(self) -> Workspace:
        """This thread's owned scratch workspace, created on first use.

        Sized from the pipeline config's ``workspace_scratch_bytes``
        so serving threads honor the same scratch budget as the
        model's own pool (a GuardedPipeline is unwrapped first).
        """
        workspace = getattr(self._local, "workspace", None)
        if workspace is None:
            config = getattr(self.pipeline, "config", None)
            if config is None:  # GuardedPipeline wraps the pipeline
                config = self.pipeline.pipeline.config
            workspace = Workspace(config.workspace_scratch_bytes)
            workspace.claim_owner()
            self._local.workspace = workspace
        return workspace

    def _infer(self, xyz: np.ndarray):
        model = getattr(self.pipeline, "model", None)
        if model is None:  # GuardedPipeline wraps the real pipeline
            model = self.pipeline.pipeline.model
        # The one blocking call deliberately made under a lock: callers
        # hold _dispatch_lock because the workspace swap mutates shared
        # model state, so concurrent forwards would corrupt each
        # other's scratch.  Worker forwards serialize here by design.
        with swapped_workspace(model, self._workspace()):
            return self.pipeline.infer(xyz)  # repro: allow[CONC-505]

    def _fail_batch(
        self, batch: MicroBatch, error: Exception, reason: str
    ) -> None:
        now = self.clock()
        for request in batch.requests:
            emit_request_trace(
                self.tracer, request, now, "failed", detail=reason
            )
            request.future.set_exception(error)
        self.record_failed(batch.size, reason)

    def _count_failed(self, count: int, reason: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "serving_failed_total", reason=reason
            ).inc(count)

    def record_failed(self, count: int, reason: str) -> None:
        """Fold ``count`` terminal failures into the guarded tally.

        Thread-safe by design: worker threads and the fleet's
        maintenance thread (shedding a dead replica's backlog) all
        account failures here, so the counter write stays under
        ``_records_lock`` like every other ``failed``/``completed``
        mutation.
        """
        with self._records_lock:
            self.failed += count
        self._count_failed(count, reason)

    def _dispatch(self, batch: MicroBatch) -> DispatchRecord:
        """Run one micro-batch and resolve its futures."""
        with self.tracer.span("serving.dispatch", "serving") as span:
            span.set("batch", batch.size)
            span.set("points", batch.n_points)
            span.set("trigger", batch.trigger)
            for request in batch.requests:
                if request.ctx is not None:
                    # Fan out one link per coalesced request so the
                    # wall-clock batch span references every request
                    # trace it served (and vice versa via the
                    # request.batch projection below).
                    span.add_link(
                        request.ctx.trace_id, request.ctx.span_id
                    )
            started = self.clock()
            ok, error_text = True, ""
            simulated_s = 0.0
            degraded: Tuple[str, ...] = ()
            try:
                with self._dispatch_lock:
                    # Serialized forward by design; see _infer for the
                    # workspace-swap rationale behind the lock.
                    result = self._infer(batch.xyz)  # repro: allow[CONC-505]
            except Exception as err:
                # Surface the original typed error (e.g. a
                # CloudValidationError) on every affected future and
                # make the failure observable before moving on.
                ok, error_text = False, f"{type(err).__name__}: {err}"
                now = self.clock()
                for request in batch.requests:
                    emit_request_trace(
                        self.tracer,
                        request,
                        now,
                        "failed",
                        detail=type(err).__name__,
                    )
                    request.future.set_exception(err)
                self.record_failed(batch.size, reason="pipeline_error")
            else:
                rejected = bool(getattr(result, "rejected", False))
                if rejected:
                    error_text = getattr(
                        result, "rejection_reason", "rejected"
                    )
                    ok = False
                    self._fail_batch(
                        batch,
                        InferenceRejectedError(
                            f"guard rejected the batch: {error_text}"
                        ),
                        reason="guard_rejected",
                    )
                else:
                    degraded = tuple(
                        getattr(result, "degraded_stages", ())
                    )
                    inner = getattr(result, "result", None)
                    profiled = inner if inner is not None else result
                    simulated_s = profiled.breakdown.total_s
                    self._complete(
                        batch, profiled, degraded, started,
                        dispatch_span_id=span.span_id,
                    )
            span.set("ok", ok)
            record = DispatchRecord(
                dispatched_s=batch.formed_s,
                trigger=batch.trigger,
                size=batch.size,
                n_points=batch.n_points,
                simulated_s=simulated_s,
                request_ids=tuple(
                    r.request_id for r in batch.requests
                ),
                arrivals_s=tuple(
                    r.arrival_s for r in batch.requests
                ),
                ok=ok,
                error=error_text,
            )
            with self._records_lock:
                self.records.append(record)
            return record

    def _complete(
        self,
        batch: MicroBatch,
        profiled,
        degraded: Tuple[str, ...],
        started: float,
        dispatch_span_id: int = 0,
    ) -> None:
        registry = self.metrics
        total_s = profiled.breakdown.total_s
        for index, request in enumerate(batch.requests):
            wait_s = max(0.0, started - request.arrival_s)
            trace_id = (
                request.ctx.trace_id if request.ctx is not None else ""
            )
            request.future.set_result(
                ServedResult(
                    request_id=request.request_id,
                    logits=profiled.logits[index],
                    prediction=profiled.predictions[index],
                    batch_size=batch.size,
                    trigger=batch.trigger,
                    queue_wait_s=wait_s,
                    simulated_batch_s=total_s,
                    degraded_stages=degraded,
                    trace_id=trace_id,
                )
            )
            if registry is not None:
                registry.counter("serving_completed_total").inc()
                registry.histogram(
                    "serving_queue_wait_seconds"
                ).observe(wait_s)
                # Device time is priced from the cost model; lane
                # queueing behind busy workers is not included here.
                registry.histogram(
                    "serving_request_latency_seconds",
                    buckets=REQUEST_LATENCY_BUCKETS,
                ).observe(
                    wait_s + total_s, trace_id=trace_id or None
                )
            self._emit_request_spans(
                request, batch, profiled, started, dispatch_span_id
            )
        with self._records_lock:
            self.completed += batch.size

    def _emit_request_spans(
        self,
        request: ServingRequest,
        batch: MicroBatch,
        profiled,
        started: float,
        dispatch_span_id: int,
    ) -> None:
        """Project one served request into its trace.

        Emits ``request.queue`` (admission → dispatch) and
        ``request.batch`` (the batch's simulated device time, linked
        to the wall-clock dispatch span) under the request's context,
        with one child span per kernel stage tiled from the profiled
        breakdown — so a single trace shows where the request's
        latency went, across replicas.
        """
        ctx = request.ctx
        if ctx is None or not self.tracer.enabled:
            return
        tracer = self.tracer
        breakdown = profiled.breakdown
        start = tracer.rel(request.arrival_s)
        dispatch = tracer.rel(started)
        tracer.emit_span(
            "request.queue",
            start_s=start,
            duration_s=max(0.0, dispatch - start),
            trace_id=ctx.trace_id,
            parent_id=ctx.span_id,
            thread="requests",
            attrs={"trigger": batch.trigger},
        )
        batch_span = tracer.emit_span(
            "request.batch",
            start_s=dispatch,
            duration_s=breakdown.total_s,
            trace_id=ctx.trace_id,
            parent_id=ctx.span_id,
            thread="requests",
            attrs={
                "batch_size": batch.size,
                "points": batch.n_points,
                "trigger": batch.trigger,
            },
            links=(
                [("", dispatch_span_id)] if dispatch_span_id else None
            ),
        )
        offset = dispatch
        for stage, seconds in (
            ("sample", breakdown.sample_s),
            ("neighbor_search", breakdown.neighbor_s),
            ("grouping", breakdown.grouping_s),
            ("feature_compute", breakdown.feature_s),
        ):
            tracer.emit_span(
                f"request.{stage}",
                start_s=offset,
                duration_s=seconds,
                category="stage",
                trace_id=ctx.trace_id,
                parent_id=batch_span,
                thread="requests",
            )
            offset += seconds
        if ctx.is_root:
            end = dispatch + breakdown.total_s
            tracer.emit_span(
                "request",
                start_s=start,
                duration_s=max(0.0, end - start),
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                thread="requests",
                attrs={
                    "request_id": request.request_id,
                    "outcome": "ok",
                },
            )

    # Threaded mode ---------------------------------------------------

    def start(self) -> "InferenceServer":
        """Spawn the worker pool (idempotent); returns ``self``."""
        with self.tracer.span("serving.start", "serving") as span:
            span.set("workers", self.config.workers)
            if self._threads:
                return self
            for index in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"serving-worker-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
            if self.metrics is not None:
                self.metrics.gauge("serving_workers").set(
                    float(len(self._threads))
                )
            return self

    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            try:
                self._dispatch(batch)
            except Exception:
                # _dispatch already resolves futures for pipeline
                # errors; anything escaping here is a serving bug —
                # count it and keep the worker alive so the queue
                # never deadlocks behind a dead consumer.
                if self.metrics is not None:
                    self.metrics.counter(
                        "serving_failed_total",
                        reason="worker_error",
                    ).inc(batch.size)
                now = self.clock()
                for request in batch.requests:
                    if not request.future.done():
                        emit_request_trace(
                            self.tracer,
                            request,
                            now,
                            "failed",
                            detail="worker_error",
                        )
                        request.future.set_exception(
                            InferenceRejectedError(
                                "serving worker failed while "
                                f"dispatching {request.request_id!r}"
                            )
                        )

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Close admission and shut the workers down.

        With ``drain=True`` every buffered request is still dispatched
        (the batcher's drain trigger flushes partial buckets); with
        ``drain=False`` undispatched requests fail fast with a typed
        :class:`~repro.serving.queue.QueueClosedError`.

        Raises :class:`DrainTimeoutError` when a worker thread is
        still alive after its join timed out — requests it held may
        never resolve, which must not pass silently.
        """
        with self.tracer.span("serving.stop", "serving") as span:
            span.set("drain", drain)
            self.queue.close()
            if not drain:
                self._cancel_pending()
            for thread in self._threads:
                thread.join(timeout=timeout_s)
            stuck = [
                thread.name
                for thread in self._threads
                if thread.is_alive()
            ]
            self._threads = []
            span.set("stuck", len(stuck))
            if self.metrics is not None:
                self.metrics.gauge("serving_workers").set(0.0)
            if stuck:
                if self.metrics is not None:
                    self.metrics.counter(
                        "serving_drain_timeouts_total"
                    ).inc(len(stuck))
                raise DrainTimeoutError(
                    f"{len(stuck)} worker thread(s) failed to join "
                    f"within {timeout_s:.1f}s: {', '.join(stuck)}; "
                    "their in-flight requests may never resolve"
                )

    def _cancel_pending(self) -> None:
        with self.queue.condition:
            pending = self.queue.pop_pending()
        pending.extend(self.batcher.cancel_buffered())
        now = self.clock()
        for request in pending:
            emit_request_trace(
                self.tracer, request, now, "cancelled", detail="stop"
            )
            request.future.set_exception(
                QueueClosedError(
                    f"request {request.request_id!r} cancelled: "
                    "server stopped without draining"
                )
            )
        if pending:
            self.record_failed(len(pending), "cancelled")

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # Virtual mode ----------------------------------------------------

    def pump(
        self, limit: Optional[int] = None
    ) -> List[DispatchRecord]:
        """Dispatch up to ``limit`` due batches inline (all, if
        ``None``); returns their records.

        The virtual-time path: no workers run; the caller advances the
        injected clock between calls and uses ``limit`` to model how
        many simulated servers are free (see
        :class:`~repro.serving.loadgen.LoadGenerator`).
        """
        records: List[DispatchRecord] = []
        while limit is None or len(records) < limit:
            batch = self.batcher.poll()
            if batch is None:
                break
            records.append(self._dispatch(batch))
        return records

    def drain_virtual(self) -> List[DispatchRecord]:
        """Close the queue and pump until nothing is buffered."""
        self.queue.close()
        return self.pump()

    # Introspection ---------------------------------------------------

    @property
    def outstanding(self) -> int:
        """Admitted requests not yet resolved either way."""
        return (
            self.queue.admitted
            - self.completed
            - self.failed
            - self.batcher.requests_expired
        )

    def stats(self) -> Dict[str, float]:
        """Snapshot of the serving counters (also exported as
        ``serving_*`` metrics when a registry is attached)."""
        with self._records_lock:
            batch_sizes = [r.size for r in self.records]
        mean = (
            sum(batch_sizes) / len(batch_sizes) if batch_sizes else 0.0
        )
        if self.metrics is not None:
            self.metrics.gauge("serving_mean_batch_size").set(mean)
        return {
            "admitted": float(self.queue.admitted),
            "rejected": float(self.queue.rejected),
            "expired": float(self.batcher.requests_expired),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "batches": float(len(batch_sizes)),
            "mean_batch_size": mean,
            "outstanding": float(self.outstanding),
        }
