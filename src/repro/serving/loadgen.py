"""Deterministic synthetic load generation against the serving stack.

A :class:`LoadGenerator` drives an
:class:`~repro.serving.server.InferenceServer` in **virtual time**: it
owns a :class:`~repro.observability.clock.FixedClock` shared with the
server, generates seeded clouds and seeded Poisson (or fixed-rate)
arrivals, and advances the clock from event to event — each arrival,
micro-batch flush, and deadline expiry happens at an exact virtual
instant, and batches are dispatched inline through
:meth:`~repro.serving.server.InferenceServer.pump`.  Because nothing
depends on host scheduling, two runs at the same seed produce
bit-identical reports: same admission decisions, same batch-size
histogram, same latency percentiles.

Service is modeled on the paper's simulated edge device: a dispatched
batch occupies one of ``workers`` virtual servers for the batch's
simulated device seconds
(:attr:`~repro.runtime.profiler.StageBreakdown.total_s`), so reported
latencies are queue wait + batching delay + simulated device time —
the end-to-end budget EdgePC Sec. 7 is about, not host wall time.

Two load shapes:

- **open loop** — arrivals at a fixed or Poisson ``rate``, regardless
  of completions (models independent users; overload shows up as
  admission rejections);
- **closed loop** — ``concurrency`` clients, each submitting its next
  request the instant the previous one completes (models a pipeline
  of sensors; throughput self-limits instead of shedding).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability.clock import FixedClock
from repro.serving.fleet import FleetRequest, ServerFleet
from repro.serving.queue import AdmissionError
from repro.serving.server import InferenceServer

ARRIVALS = ("poisson", "fixed")
MODES = ("open", "closed")


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one synthetic load run.

    Attributes:
        duration_s: virtual seconds of arrivals to generate.
        rate: offered requests/second (open loop).
        arrival: ``"poisson"`` (seeded exponential gaps) or
            ``"fixed"`` (metronome).
        mode: ``"open"`` or ``"closed"`` loop.
        concurrency: in-flight clients in closed-loop mode.
        points: candidate cloud sizes; each request draws one
            uniformly (mixed sizes exercise the batcher's N-buckets).
        deadline_ms: per-request deadline; ``None`` disables.
        seed: seeds both the arrival process and the cloud contents.
        tenants: distinct tenant keys drawn uniformly per request
            (fleet runs only; tenants are the routing keys).
        low_priority_tenants: how many of the tenant indices carry
            priority 0 and are shed first under brownout.
    """

    duration_s: float = 5.0
    rate: float = 50.0
    arrival: str = "poisson"
    mode: str = "open"
    concurrency: int = 8
    points: Tuple[int, ...] = (64,)
    deadline_ms: Optional[float] = None
    seed: int = 0
    tenants: int = 4
    low_priority_tenants: int = 1

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if not self.points or any(n < 8 for n in self.points):
            raise ValueError("points must be sizes >= 8")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        if self.tenants < 1:
            raise ValueError("tenants must be positive")
        if not 0 <= self.low_priority_tenants <= self.tenants:
            raise ValueError(
                "low_priority_tenants must be within [0, tenants]"
            )


@dataclass
class LoadReport:
    """Deterministic outcome of one load run (see ``to_dict``)."""

    mode: str
    arrival: str
    duration_s: float
    offered_rps: float
    seed: int
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    late: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    batch_size_hist: Dict[str, int] = field(default_factory=dict)
    trigger_counts: Dict[str, int] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    goodput_rps: float = 0.0
    simulated_busy_s: float = 0.0
    rejection_reasons: Dict[str, int] = field(default_factory=dict)
    replicas: int = 1
    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_cancelled: int = 0
    chaos_events: int = 0
    replica_states: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "arrival": self.arrival,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "seed": self.seed,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "expired": self.expired,
            "completed": self.completed,
            "failed": self.failed,
            "lost": self.lost,
            "late": self.late,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": dict(
                sorted(self.batch_size_hist.items())
            ),
            "trigger_counts": dict(
                sorted(self.trigger_counts.items())
            ),
            "latency_ms": dict(sorted(self.latency_ms.items())),
            "goodput_rps": self.goodput_rps,
            "simulated_busy_s": self.simulated_busy_s,
            "rejection_reasons": dict(
                sorted(self.rejection_reasons.items())
            ),
            "replicas": self.replicas,
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_cancelled": self.hedge_cancelled,
            "chaos_events": self.chaos_events,
            "replica_states": dict(
                sorted(self.replica_states.items())
            ),
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def summary(self) -> str:
        lines = [
            f"loadgen: {self.mode} loop, {self.arrival} arrivals, "
            f"{self.offered_rps:.0f} req/s offered for "
            f"{self.duration_s:.1f}s (seed {self.seed})",
            f"  submitted {self.submitted}  admitted {self.admitted}"
            f"  rejected {self.rejected}  expired {self.expired}",
            f"  completed {self.completed}  failed {self.failed}"
            f"  lost {self.lost}  late {self.late}",
            f"  batches {self.batches}  mean batch size "
            f"{self.mean_batch_size:.2f}  "
            f"goodput {self.goodput_rps:.1f} req/s",
        ]
        if self.rejection_reasons:
            reasons = "  ".join(
                f"{reason}={count}"
                for reason, count in sorted(
                    self.rejection_reasons.items()
                )
            )
            lines.append(f"  rejections by reason: {reasons}")
        if self.replicas > 1:
            lines.append(
                f"  fleet: {self.replicas} replicas  "
                f"retries {self.retries}  hedges {self.hedges} "
                f"(wins {self.hedge_wins}, cancelled "
                f"{self.hedge_cancelled})  chaos events "
                f"{self.chaos_events}"
            )
            states = "  ".join(
                f"{index}:{state}"
                for index, state in sorted(
                    self.replica_states.items()
                )
            )
            if states:
                lines.append(f"  replica states: {states}")
        if self.latency_ms:
            lines.append(
                "  latency p50 {p50:.2f} ms  p95 {p95:.2f} ms  "
                "p99 {p99:.2f} ms  max {max:.2f} ms".format(
                    **self.latency_ms
                )
            )
        hist = " ".join(
            f"{size}x{count}"
            for size, count in sorted(
                self.batch_size_hist.items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(f"  batch-size histogram: {hist or '(empty)'}")
        return "\n".join(lines)


class LoadGenerator:
    """Virtual-time load driver for one in-process server.

    Args:
        server: the server under test.  Its ``clock`` must be the
            same :class:`~repro.observability.clock.FixedClock`
            passed here — the generator is the only thing advancing
            time.
        config: load shape.
        clock: the shared virtual clock.
    """

    def __init__(
        self,
        server: InferenceServer,
        config: Optional[LoadGenConfig] = None,
        clock: Optional[FixedClock] = None,
    ) -> None:
        self.server = server
        self.config = config or LoadGenConfig()
        if clock is None:
            clock = server.clock
        if not isinstance(clock, FixedClock):
            raise TypeError(
                "LoadGenerator needs a FixedClock shared with the "
                "server; threaded wall-clock serving is exercised via "
                "InferenceServer.start() instead"
            )
        self.clock = clock
        self.tracer = server.tracer
        self.metrics = server.metrics

    # Schedules -------------------------------------------------------

    def _open_arrivals(self, rng: np.random.Generator) -> List[float]:
        cfg = self.config
        if cfg.arrival == "fixed":
            count = int(math.floor(cfg.duration_s * cfg.rate))
            return [i / cfg.rate for i in range(count)]
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / cfg.rate))
            if t >= cfg.duration_s:
                return times
            times.append(t)

    def _cloud(self, rng: np.random.Generator) -> np.ndarray:
        n = int(rng.choice(np.asarray(self.config.points)))
        return rng.random((n, 3))

    # Run -------------------------------------------------------------

    def run(self) -> LoadReport:
        """Drive the configured load to completion; returns the report.

        Deterministic for a given (config, server config, model)
        triple: every event happens at an exact virtual instant
        derived from the seed.
        """
        with self.tracer.span("loadgen.run", "serving") as span:
            cfg = self.config
            span.set("mode", cfg.mode)
            span.set("rate", cfg.rate)
            report = self._run_events()
            span.set("submitted", report.submitted)
            span.set("batches", report.batches)
            if self.metrics is not None:
                self.metrics.gauge("serving_mean_batch_size").set(
                    report.mean_batch_size
                )
            return report

    def _run_events(self) -> LoadReport:
        cfg = self.config
        server = self.server
        rng = np.random.default_rng(cfg.seed)
        report = LoadReport(
            mode=cfg.mode,
            arrival=cfg.arrival,
            duration_s=cfg.duration_s,
            offered_rps=cfg.rate,
            seed=cfg.seed,
        )
        arrivals: List[float]
        if cfg.mode == "open":
            arrivals = self._open_arrivals(rng)
        else:
            arrivals = [0.0] * cfg.concurrency
        arrivals.reverse()  # pop() from the tail = earliest first

        busy = [0.0] * server.config.workers
        deadline_s = (
            None if cfg.deadline_ms is None else cfg.deadline_ms / 1e3
        )
        arrival_of: Dict[str, float] = {}
        latencies: List[float] = []
        requests = []

        def advance_to(t: float) -> None:
            delta = t - self.clock()
            if delta > 0:
                self.clock.advance(delta)

        def settle(record, worker: int) -> None:
            """Model one dispatched batch occupying ``worker``."""
            report.batches += 1
            key = str(record.size)
            report.batch_size_hist[key] = (
                report.batch_size_hist.get(key, 0) + 1
            )
            report.trigger_counts[record.trigger] = (
                report.trigger_counts.get(record.trigger, 0) + 1
            )
            if not record.ok:
                return
            start = max(record.dispatched_s, busy[worker])
            done = start + record.simulated_s
            busy[worker] = done
            report.simulated_busy_s += record.simulated_s
            for request_id in record.request_ids:
                arrived = arrival_of[request_id]
                latencies.append(done - arrived)
                if (
                    deadline_s is not None
                    and done - arrived > deadline_s
                ):
                    report.late += 1
                if cfg.mode == "closed" and done < cfg.duration_s:
                    arrivals.insert(0, done)

        def dispatch_free_workers(t: float) -> None:
            """Hand due batches to workers that are free at ``t``."""
            while True:
                free = [
                    index
                    for index, until in enumerate(busy)
                    if until <= t
                ]
                if not free:
                    return
                records = server.pump(limit=1)
                if not records:
                    return
                settle(records[0], free[0])

        while True:
            t_arrival = arrivals[-1] if arrivals else None
            t_flush = server.batcher.next_flush_at
            if t_arrival is None and t_flush is None:
                break
            if t_flush is not None:
                # A due batch only dispatches once a modeled worker
                # frees up; queueing delay is part of the simulation.
                t_flush = max(t_flush, min(busy))
            if t_flush is None or (
                t_arrival is not None and t_arrival <= t_flush
            ):
                advance_to(t_arrival)
                arrivals.pop()
                report.submitted += 1
                cloud = self._cloud(rng)
                try:
                    request = server.submit(
                        cloud, deadline_s=deadline_s
                    )
                except AdmissionError:
                    pass  # counted by the queue's typed counters
                else:
                    arrival_of[request.request_id] = request.arrival_s
                    requests.append(request)
                server.batcher.ingest()
            else:
                advance_to(t_flush)
            dispatch_free_workers(self.clock())

        report.admitted = server.queue.admitted
        report.rejected = server.queue.rejected
        report.expired = server.batcher.requests_expired
        report.rejection_reasons = dict(
            server.queue.rejected_by_reason
        )
        if report.expired:
            report.rejection_reasons["deadline"] = report.expired
        report.completed = server.completed
        report.failed = server.failed
        report.lost = sum(
            1 for request in requests if not request.future.done()
        )
        if report.batches:
            total = sum(
                int(size) * count
                for size, count in report.batch_size_hist.items()
            )
            report.mean_batch_size = total / report.batches
        if latencies:
            ordered = np.sort(np.asarray(latencies))
            report.latency_ms = {
                "p50": float(np.percentile(ordered, 50)) * 1e3,
                "p95": float(np.percentile(ordered, 95)) * 1e3,
                "p99": float(np.percentile(ordered, 99)) * 1e3,
                "mean": float(ordered.mean()) * 1e3,
                "max": float(ordered.max()) * 1e3,
            }
        on_time = report.completed - report.late
        report.goodput_rps = max(0.0, on_time) / cfg.duration_s
        return report


class FleetLoadGenerator:
    """Virtual-time load driver for a :class:`ServerFleet`.

    The fleet analogue of :class:`LoadGenerator`: one event loop
    advances the shared :class:`FixedClock` across arrivals, per-
    replica micro-batch flushes (clamped by each replica's modeled
    workers), fleet retry/hedge timers, deadline expiries on stalled
    replicas, and scheduled chaos events — then drains the tail so
    every submitted request reaches a terminal future state.  Two runs
    at the same seed (and the same chaos schedule) produce
    byte-identical reports and fleet retry traces.

    Args:
        fleet: the fleet under test; its ``clock`` must be the
            :class:`FixedClock` passed here.
        config: load shape; ``tenants`` draws routing keys.
        clock: the shared virtual clock (defaults to the fleet's).
        chaos: optional :class:`~repro.serving.chaos.ChaosHarness`
            replayed as virtual time passes.
        slo: optional :class:`~repro.observability.slo.SloEngine`
            ticked on every event-loop step (and through the drain
            tail), so burn-rate windows see the same virtual instants
            the fleet acted on — deterministic per seed.
    """

    def __init__(
        self,
        fleet: ServerFleet,
        config: Optional[LoadGenConfig] = None,
        clock: Optional[FixedClock] = None,
        chaos=None,
        slo=None,
    ) -> None:
        self.fleet = fleet
        self.config = config or LoadGenConfig()
        self.slo = slo
        if clock is None:
            clock = fleet.clock
        if not isinstance(clock, FixedClock):
            raise TypeError(
                "FleetLoadGenerator needs a FixedClock shared with "
                "the fleet; threaded wall-clock serving is exercised "
                "via ServerFleet.start() instead"
            )
        self.clock = clock
        self.chaos = chaos
        self.tracer = fleet.tracer
        self.metrics = fleet.metrics

    # Schedules (same seeded processes as LoadGenerator) --------------

    def _open_arrivals(self, rng: np.random.Generator) -> List[float]:
        cfg = self.config
        if cfg.arrival == "fixed":
            count = int(math.floor(cfg.duration_s * cfg.rate))
            return [i / cfg.rate for i in range(count)]
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / cfg.rate))
            if t >= cfg.duration_s:
                return times
            times.append(t)

    def _cloud(self, rng: np.random.Generator) -> np.ndarray:
        n = int(rng.choice(np.asarray(self.config.points)))
        return rng.random((n, 3))

    # Run -------------------------------------------------------------

    def run(self) -> LoadReport:
        """Drive the configured load to completion; returns the
        report.  Every future resolves — with a result or a typed
        error — before this returns (the zero-lost invariant the
        chaos tests assert)."""
        with self.tracer.span("loadgen.fleet_run", "serving") as span:
            cfg = self.config
            span.set("mode", cfg.mode)
            span.set("rate", cfg.rate)
            span.set("replicas", len(self.fleet.replicas))
            report = self._run_events()
            span.set("submitted", report.submitted)
            span.set("lost", report.lost)
            if self.metrics is not None:
                self.metrics.gauge("serving_mean_batch_size").set(
                    report.mean_batch_size
                )
            return report

    def _run_events(self) -> LoadReport:
        cfg = self.config
        fleet = self.fleet
        rng = np.random.default_rng(cfg.seed)
        report = LoadReport(
            mode=cfg.mode,
            arrival=cfg.arrival,
            duration_s=cfg.duration_s,
            offered_rps=cfg.rate,
            seed=cfg.seed,
            replicas=len(fleet.replicas),
        )
        if cfg.mode == "open":
            arrivals = self._open_arrivals(rng)
        else:
            arrivals = [0.0] * cfg.concurrency
        arrivals.reverse()  # pop() from the tail = earliest first

        workers = fleet.serving_config.workers
        busy: Dict[int, List[float]] = {
            replica.index: [0.0] * workers
            for replica in fleet.replicas
        }
        deadline_s = (
            None if cfg.deadline_ms is None else cfg.deadline_ms / 1e3
        )
        latencies: List[float] = []
        tracked: List[FleetRequest] = []
        tracked_by_id: Dict[str, FleetRequest] = {}
        recorded: set = set()

        def advance_to(t: float) -> None:
            delta = t - self.clock()
            if delta > 0:
                self.clock.advance(delta)

        def settle(index: int, record) -> None:
            """Model one dispatched batch occupying a replica lane."""
            report.batches += 1
            key = str(record.size)
            report.batch_size_hist[key] = (
                report.batch_size_hist.get(key, 0) + 1
            )
            report.trigger_counts[record.trigger] = (
                report.trigger_counts.get(record.trigger, 0) + 1
            )
            if not record.ok:
                return
            gate = fleet.replicas[index].gate
            simulated = record.simulated_s * gate.slow_factor
            lanes = busy[index]
            worker = lanes.index(min(lanes))
            start = max(record.dispatched_s, lanes[worker])
            done = start + simulated
            lanes[worker] = done
            report.simulated_busy_s += simulated
            for attempt_id in record.request_ids:
                rid = attempt_id.rsplit(".a", 1)[0]
                request = tracked_by_id.get(rid)
                if request is None:
                    continue
                if request.winner != attempt_id or rid in recorded:
                    continue
                recorded.add(rid)
                latencies.append(done - request.arrival_s)
                if (
                    deadline_s is not None
                    and done - request.arrival_s > deadline_s
                ):
                    report.late += 1
                if cfg.mode == "closed" and done < cfg.duration_s:
                    arrivals.insert(0, done)

        def dispatch_free(t: float) -> None:
            """Hand due batches to replica lanes free at ``t``."""
            progress = True
            while progress:
                progress = False
                for replica in fleet.replicas:
                    index = replica.index
                    if replica.gate.stalled:
                        fleet.pump_replica(index, limit=1)
                        continue
                    if replica.gate.failing:
                        # Failed dispatches occupy no lane.
                        while True:
                            records = fleet.pump_replica(
                                index, limit=1
                            )
                            if not records:
                                break
                            fleet.service(t)
                            settle(index, records[0])
                            progress = True
                        continue
                    while any(until <= t for until in busy[index]):
                        records = fleet.pump_replica(index, limit=1)
                        if not records:
                            break
                        fleet.service(t)
                        settle(index, records[0])
                        progress = True
            fleet.service(t)

        def submit_arrival(now: float) -> None:
            report.submitted += 1
            cloud = self._cloud(rng)
            tenant_index = int(rng.integers(cfg.tenants))
            tenant = f"tenant-{tenant_index}"
            priority = (
                0 if tenant_index < cfg.low_priority_tenants else 1
            )
            try:
                request = fleet.submit(
                    cloud,
                    tenant=tenant,
                    priority=priority,
                    deadline_s=deadline_s,
                )
            except AdmissionError:
                pass  # counted by the fleet's typed reason counters
            else:
                tracked.append(request)
                tracked_by_id[request.request_id] = request

        while True:
            t_arrival = arrivals[-1] if arrivals else None
            flush_candidates: List[float] = []
            for replica in fleet.replicas:
                batcher = replica.server.batcher
                if replica.gate.stalled:
                    expiry = batcher.next_expiry_at
                    if expiry is not None:
                        flush_candidates.append(expiry)
                    continue
                flush_at = batcher.next_flush_at
                if flush_at is None:
                    continue
                if replica.gate.failing:
                    flush_candidates.append(flush_at)
                else:
                    flush_candidates.append(
                        max(flush_at, min(busy[replica.index]))
                    )
            t_flush = (
                min(flush_candidates) if flush_candidates else None
            )
            t_timer = fleet.next_timer_at
            t_chaos = (
                self.chaos.next_event_at
                if self.chaos is not None
                else None
            )
            events = [
                t
                for t in (t_arrival, t_flush, t_timer, t_chaos)
                if t is not None
            ]
            if not events:
                break
            t = min(events)
            advance_to(t)
            now = self.clock()
            if self.chaos is not None and (
                t_chaos is not None and t_chaos <= now
            ):
                if self.chaos.apply_due(now):
                    fleet.service(now)
            if t_arrival is not None and t_arrival <= t:
                arrivals.pop()
                submit_arrival(now)
            fleet.service(now)
            dispatch_free(now)
            if self.slo is not None:
                self.slo.tick(now)

        self._drain_tail(tracked, dispatch_free, advance_to)

        now = self.clock()
        if self.slo is not None:
            self.slo.tick(now)
        report.admitted = fleet.accepted
        report.rejected = fleet.submit_rejected
        report.expired = fleet.expired
        report.completed = fleet.completed
        report.failed = fleet.failed
        report.lost = sum(
            1 for request in tracked if not request.future.done()
        )
        report.retries = fleet.retries
        report.hedges = fleet.hedges
        report.hedge_wins = fleet.hedge_wins
        report.hedge_cancelled = fleet.hedge_cancelled
        report.rejection_reasons = dict(fleet.rejection_reasons)
        report.replica_states = fleet.replica_states(now)
        report.chaos_events = (
            len(self.chaos.applied) if self.chaos is not None else 0
        )
        if report.batches:
            total = sum(
                int(size) * count
                for size, count in report.batch_size_hist.items()
            )
            report.mean_batch_size = total / report.batches
        if latencies:
            ordered = np.sort(np.asarray(latencies))
            report.latency_ms = {
                "p50": float(np.percentile(ordered, 50)) * 1e3,
                "p95": float(np.percentile(ordered, 95)) * 1e3,
                "p99": float(np.percentile(ordered, 99)) * 1e3,
                "mean": float(ordered.mean()) * 1e3,
                "max": float(ordered.max()) * 1e3,
            }
        on_time = report.completed - report.late
        report.goodput_rps = max(0.0, on_time) / cfg.duration_s
        return report

    def _drain_tail(self, tracked, dispatch_free, advance_to) -> None:
        """Close admission and force every future to a terminal state.

        Live replicas flush through the drain trigger; backlogs on
        stalled/killed replicas are shed with retryable faults (their
        retries then resolve against closed queues as typed
        :class:`~repro.serving.retry.RetryExhaustedError`); remaining
        retry timers are honored by advancing the virtual clock to
        them.  A generous iteration guard turns any stuck state into
        visible lost requests instead of a hang.
        """
        fleet = self.fleet
        fleet.close()
        for _ in range(10_000):
            if all(request.future.done() for request in tracked):
                return
            now = self.clock()
            for replica in fleet.replicas:
                unreachable = (
                    replica.gate.stalled or replica.gate.killed
                )
                backlog = (
                    replica.server.queue.depth
                    + replica.server.batcher.buffered
                )
                if unreachable and backlog:
                    fleet.shed_replica_backlog(
                        replica.index, "unreachable at drain", now=now
                    )
            dispatch_free(now)
            next_timer = fleet.next_timer_at
            if next_timer is not None and next_timer > now:
                advance_to(next_timer)
            fleet.service(self.clock())
            if self.slo is not None:
                self.slo.tick(self.clock())
