"""Deterministic synthetic load generation against the serving stack.

A :class:`LoadGenerator` drives an
:class:`~repro.serving.server.InferenceServer` in **virtual time**: it
owns a :class:`~repro.observability.clock.FixedClock` shared with the
server, generates seeded clouds and seeded Poisson (or fixed-rate)
arrivals, and advances the clock from event to event — each arrival,
micro-batch flush, and deadline expiry happens at an exact virtual
instant, and batches are dispatched inline through
:meth:`~repro.serving.server.InferenceServer.pump`.  Because nothing
depends on host scheduling, two runs at the same seed produce
bit-identical reports: same admission decisions, same batch-size
histogram, same latency percentiles.

Service is modeled on the paper's simulated edge device: a dispatched
batch occupies one of ``workers`` virtual servers for the batch's
simulated device seconds
(:attr:`~repro.runtime.profiler.StageBreakdown.total_s`), so reported
latencies are queue wait + batching delay + simulated device time —
the end-to-end budget EdgePC Sec. 7 is about, not host wall time.

Two load shapes:

- **open loop** — arrivals at a fixed or Poisson ``rate``, regardless
  of completions (models independent users; overload shows up as
  admission rejections);
- **closed loop** — ``concurrency`` clients, each submitting its next
  request the instant the previous one completes (models a pipeline
  of sensors; throughput self-limits instead of shedding).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.observability.clock import FixedClock
from repro.serving.queue import AdmissionError
from repro.serving.server import InferenceServer

ARRIVALS = ("poisson", "fixed")
MODES = ("open", "closed")


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of one synthetic load run.

    Attributes:
        duration_s: virtual seconds of arrivals to generate.
        rate: offered requests/second (open loop).
        arrival: ``"poisson"`` (seeded exponential gaps) or
            ``"fixed"`` (metronome).
        mode: ``"open"`` or ``"closed"`` loop.
        concurrency: in-flight clients in closed-loop mode.
        points: candidate cloud sizes; each request draws one
            uniformly (mixed sizes exercise the batcher's N-buckets).
        deadline_ms: per-request deadline; ``None`` disables.
        seed: seeds both the arrival process and the cloud contents.
    """

    duration_s: float = 5.0
    rate: float = 50.0
    arrival: str = "poisson"
    mode: str = "open"
    concurrency: int = 8
    points: Tuple[int, ...] = (64,)
    deadline_ms: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.arrival not in ARRIVALS:
            raise ValueError(f"arrival must be one of {ARRIVALS}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}")
        if self.concurrency < 1:
            raise ValueError("concurrency must be positive")
        if not self.points or any(n < 8 for n in self.points):
            raise ValueError("points must be sizes >= 8")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")


@dataclass
class LoadReport:
    """Deterministic outcome of one load run (see ``to_dict``)."""

    mode: str
    arrival: str
    duration_s: float
    offered_rps: float
    seed: int
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    completed: int = 0
    failed: int = 0
    lost: int = 0
    late: int = 0
    batches: int = 0
    mean_batch_size: float = 0.0
    batch_size_hist: Dict[str, int] = field(default_factory=dict)
    trigger_counts: Dict[str, int] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    goodput_rps: float = 0.0
    simulated_busy_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "arrival": self.arrival,
            "duration_s": self.duration_s,
            "offered_rps": self.offered_rps,
            "seed": self.seed,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "expired": self.expired,
            "completed": self.completed,
            "failed": self.failed,
            "lost": self.lost,
            "late": self.late,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "batch_size_hist": dict(
                sorted(self.batch_size_hist.items())
            ),
            "trigger_counts": dict(
                sorted(self.trigger_counts.items())
            ),
            "latency_ms": dict(sorted(self.latency_ms.items())),
            "goodput_rps": self.goodput_rps,
            "simulated_busy_s": self.simulated_busy_s,
        }

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def summary(self) -> str:
        lines = [
            f"loadgen: {self.mode} loop, {self.arrival} arrivals, "
            f"{self.offered_rps:.0f} req/s offered for "
            f"{self.duration_s:.1f}s (seed {self.seed})",
            f"  submitted {self.submitted}  admitted {self.admitted}"
            f"  rejected {self.rejected}  expired {self.expired}",
            f"  completed {self.completed}  failed {self.failed}"
            f"  lost {self.lost}  late {self.late}",
            f"  batches {self.batches}  mean batch size "
            f"{self.mean_batch_size:.2f}  "
            f"goodput {self.goodput_rps:.1f} req/s",
        ]
        if self.latency_ms:
            lines.append(
                "  latency p50 {p50:.2f} ms  p95 {p95:.2f} ms  "
                "p99 {p99:.2f} ms  max {max:.2f} ms".format(
                    **self.latency_ms
                )
            )
        hist = " ".join(
            f"{size}x{count}"
            for size, count in sorted(
                self.batch_size_hist.items(), key=lambda kv: int(kv[0])
            )
        )
        lines.append(f"  batch-size histogram: {hist or '(empty)'}")
        return "\n".join(lines)


class LoadGenerator:
    """Virtual-time load driver for one in-process server.

    Args:
        server: the server under test.  Its ``clock`` must be the
            same :class:`~repro.observability.clock.FixedClock`
            passed here — the generator is the only thing advancing
            time.
        config: load shape.
        clock: the shared virtual clock.
    """

    def __init__(
        self,
        server: InferenceServer,
        config: Optional[LoadGenConfig] = None,
        clock: Optional[FixedClock] = None,
    ) -> None:
        self.server = server
        self.config = config or LoadGenConfig()
        if clock is None:
            clock = server.clock
        if not isinstance(clock, FixedClock):
            raise TypeError(
                "LoadGenerator needs a FixedClock shared with the "
                "server; threaded wall-clock serving is exercised via "
                "InferenceServer.start() instead"
            )
        self.clock = clock
        self.tracer = server.tracer
        self.metrics = server.metrics

    # Schedules -------------------------------------------------------

    def _open_arrivals(self, rng: np.random.Generator) -> List[float]:
        cfg = self.config
        if cfg.arrival == "fixed":
            count = int(math.floor(cfg.duration_s * cfg.rate))
            return [i / cfg.rate for i in range(count)]
        times: List[float] = []
        t = 0.0
        while True:
            t += float(rng.exponential(1.0 / cfg.rate))
            if t >= cfg.duration_s:
                return times
            times.append(t)

    def _cloud(self, rng: np.random.Generator) -> np.ndarray:
        n = int(rng.choice(np.asarray(self.config.points)))
        return rng.random((n, 3))

    # Run -------------------------------------------------------------

    def run(self) -> LoadReport:
        """Drive the configured load to completion; returns the report.

        Deterministic for a given (config, server config, model)
        triple: every event happens at an exact virtual instant
        derived from the seed.
        """
        with self.tracer.span("loadgen.run", "serving") as span:
            cfg = self.config
            span.set("mode", cfg.mode)
            span.set("rate", cfg.rate)
            report = self._run_events()
            span.set("submitted", report.submitted)
            span.set("batches", report.batches)
            if self.metrics is not None:
                self.metrics.gauge("serving_mean_batch_size").set(
                    report.mean_batch_size
                )
            return report

    def _run_events(self) -> LoadReport:
        cfg = self.config
        server = self.server
        rng = np.random.default_rng(cfg.seed)
        report = LoadReport(
            mode=cfg.mode,
            arrival=cfg.arrival,
            duration_s=cfg.duration_s,
            offered_rps=cfg.rate,
            seed=cfg.seed,
        )
        arrivals: List[float]
        if cfg.mode == "open":
            arrivals = self._open_arrivals(rng)
        else:
            arrivals = [0.0] * cfg.concurrency
        arrivals.reverse()  # pop() from the tail = earliest first

        busy = [0.0] * server.config.workers
        deadline_s = (
            None if cfg.deadline_ms is None else cfg.deadline_ms / 1e3
        )
        arrival_of: Dict[str, float] = {}
        latencies: List[float] = []
        requests = []

        def advance_to(t: float) -> None:
            delta = t - self.clock()
            if delta > 0:
                self.clock.advance(delta)

        def settle(record, worker: int) -> None:
            """Model one dispatched batch occupying ``worker``."""
            report.batches += 1
            key = str(record.size)
            report.batch_size_hist[key] = (
                report.batch_size_hist.get(key, 0) + 1
            )
            report.trigger_counts[record.trigger] = (
                report.trigger_counts.get(record.trigger, 0) + 1
            )
            if not record.ok:
                return
            start = max(record.dispatched_s, busy[worker])
            done = start + record.simulated_s
            busy[worker] = done
            report.simulated_busy_s += record.simulated_s
            for request_id in record.request_ids:
                arrived = arrival_of[request_id]
                latencies.append(done - arrived)
                if (
                    deadline_s is not None
                    and done - arrived > deadline_s
                ):
                    report.late += 1
                if cfg.mode == "closed" and done < cfg.duration_s:
                    arrivals.insert(0, done)

        def dispatch_free_workers(t: float) -> None:
            """Hand due batches to workers that are free at ``t``."""
            while True:
                free = [
                    index
                    for index, until in enumerate(busy)
                    if until <= t
                ]
                if not free:
                    return
                records = server.pump(limit=1)
                if not records:
                    return
                settle(records[0], free[0])

        while True:
            t_arrival = arrivals[-1] if arrivals else None
            t_flush = server.batcher.next_flush_at
            if t_arrival is None and t_flush is None:
                break
            if t_flush is not None:
                # A due batch only dispatches once a modeled worker
                # frees up; queueing delay is part of the simulation.
                t_flush = max(t_flush, min(busy))
            if t_flush is None or (
                t_arrival is not None and t_arrival <= t_flush
            ):
                advance_to(t_arrival)
                arrivals.pop()
                report.submitted += 1
                cloud = self._cloud(rng)
                try:
                    request = server.submit(
                        cloud, deadline_s=deadline_s
                    )
                except AdmissionError:
                    pass  # counted by the queue's typed counters
                else:
                    arrival_of[request.request_id] = request.arrival_s
                    requests.append(request)
                server.batcher.ingest()
            else:
                advance_to(t_flush)
            dispatch_free_workers(self.clock())

        report.admitted = server.queue.admitted
        report.rejected = server.queue.rejected
        report.expired = server.batcher.requests_expired
        report.completed = server.completed
        report.failed = server.failed
        report.lost = sum(
            1 for request in requests if not request.future.done()
        )
        if report.batches:
            total = sum(
                int(size) * count
                for size, count in report.batch_size_hist.items()
            )
            report.mean_batch_size = total / report.batches
        if latencies:
            ordered = np.sort(np.asarray(latencies))
            report.latency_ms = {
                "p50": float(np.percentile(ordered, 50)) * 1e3,
                "p95": float(np.percentile(ordered, 95)) * 1e3,
                "p99": float(np.percentile(ordered, 99)) * 1e3,
                "mean": float(ordered.mean()) * 1e3,
                "max": float(ordered.max()) * 1e3,
            }
        on_time = report.completed - report.late
        report.goodput_rps = max(0.0, on_time) / cfg.duration_s
        return report
