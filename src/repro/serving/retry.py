"""Deadline-aware retry and hedging policies for the serving fleet.

A failed attempt on one replica is only worth retrying if the retry
can still land inside the request's latency budget — EdgePC's
per-frame deadlines (Sec. 7) leave no room for a retry storm that
delivers answers after the frame they were for.  :class:`RetryPolicy`
therefore computes exponential backoff with **deterministic jitter**
(a :func:`zlib.crc32` hash of the request id and attempt number, not
wall-clock randomness) and refuses to schedule a retry whose backoff
alone would consume the remaining ``deadline_s`` budget.

:class:`HedgePolicy` covers the complementary tail-latency case: a
replica that is *slow* rather than failed.  Once enough attempt
latencies have been observed, a request still pending past the
configured quantile gets a second, hedged dispatch on another replica;
first result wins and the loser is cancelled
(:class:`~repro.serving.fleet.ServerFleet` does the bookkeeping).

Every retry/hedge decision is appended to the fleet's trace as a
:class:`RetryEvent` — a plain record keyed on virtual-time instants,
so two runs at the same seed produce byte-identical traces.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence


class RetryExhaustedError(RuntimeError):
    """Every allowed attempt failed (or no retry fit the deadline).

    Carries a machine-readable :attr:`reason` like the admission
    errors, so load generators can bucket terminal outcomes.
    """

    reason = "retry_exhausted"


def _unit_hash(token: str) -> float:
    """Deterministic uniform-ish draw in ``[0, 1)`` from a token."""
    return zlib.crc32(token.encode("utf-8")) / 2.0**32


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline cap.

    Attributes:
        max_attempts: total dispatch attempts per request (the first
            attempt counts; ``1`` disables retries).
        base_backoff_s: backoff before the first retry.
        multiplier: backoff growth factor per further retry.
        max_backoff_s: ceiling on the un-jittered backoff.
        jitter: jitter fraction in ``[0, 1]``; the backoff is scaled
            by a deterministic factor in ``[1 - jitter, 1 + jitter]``
            derived from the request id and attempt number, so
            synchronized failures don't retry in lockstep yet two
            runs at the same seed stay byte-identical.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.02
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be non-negative")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                "max_backoff_s must be >= base_backoff_s"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Jittered backoff before retry number ``attempt``.

        ``attempt`` counts completed attempts (1 = first retry).  The
        jitter factor is a pure function of ``(token, attempt)``, so
        the schedule is deterministic per request.
        """
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = self.base_backoff_s * self.multiplier ** (attempt - 1)
        raw = min(raw, self.max_backoff_s)
        if self.jitter == 0.0:
            return raw
        unit = _unit_hash(f"{token}:{attempt}")
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * unit)

    def next_backoff(
        self,
        attempt: int,
        token: str = "",
        remaining_s: Optional[float] = None,
    ) -> Optional[float]:
        """Backoff before the next retry, or ``None`` to give up.

        Returns ``None`` when the attempt budget is spent or when the
        backoff alone would consume the remaining deadline budget
        (``remaining_s``) — a retry that cannot finish in time is load
        the fleet should shed, not carry.
        """
        if attempt >= self.max_attempts:
            return None
        backoff = self.backoff_s(attempt, token)
        if remaining_s is not None and backoff >= remaining_s:
            return None
        return backoff


@dataclass(frozen=True)
class HedgePolicy:
    """When to issue a duplicate (hedged) dispatch for a slow attempt.

    Attributes:
        quantile: attempt-latency quantile past which a still-pending
            primary attempt earns a hedge.
        min_delay_s: floor on the hedge delay — also the delay used
            before enough latency samples exist.
        min_samples: observed attempt latencies required before the
            quantile estimate is trusted.
    """

    quantile: float = 0.95
    min_delay_s: float = 0.05
    min_samples: int = 16

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ValueError("quantile must be within (0, 1)")
        if self.min_delay_s <= 0:
            raise ValueError("min_delay_s must be positive")
        if self.min_samples < 1:
            raise ValueError("min_samples must be positive")

    def delay_s(self, latencies: Sequence[float]) -> float:
        """Hedge delay given the observed attempt latencies."""
        if len(latencies) < self.min_samples:
            return self.min_delay_s
        ordered = sorted(latencies)
        position = self.quantile * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        frac = position - low
        estimate = ordered[low] * (1.0 - frac) + ordered[high] * frac
        return max(self.min_delay_s, estimate)


@dataclass(frozen=True)
class RetryEvent:
    """One entry of a fleet's retry/hedge trace.

    Attributes:
        t_s: virtual-clock instant of the decision.
        request_id: the fleet-level request id.
        attempt: dispatch attempts made so far for the request.
        replica: replica index involved (``-1`` when none applies).
        event: ``dispatch`` | ``refused`` | ``retry`` | ``hedge`` |
            ``hedge_win`` | ``hedge_cancel`` | ``exhausted`` |
            ``failed`` | ``expired``.
        detail: error type or free-form annotation.
        backoff_s: scheduled backoff (retry events only).
        trace_id: the request's trace id, so a retry-trace row can be
            joined against the span trace it belongs to (empty when
            tracing was disabled or the request never got a context).
    """

    t_s: float
    request_id: str
    attempt: int
    replica: int
    event: str
    detail: str = ""
    backoff_s: float = 0.0
    trace_id: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "t_s": self.t_s,
            "request_id": self.request_id,
            "attempt": self.attempt,
            "replica": self.replica,
            "event": self.event,
            "detail": self.detail,
            "backoff_s": self.backoff_s,
            "trace_id": self.trace_id,
        }
