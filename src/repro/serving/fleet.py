"""Multi-replica serving fleet with health-aware failover.

A :class:`ServerFleet` fronts N
:class:`~repro.serving.server.InferenceServer` replicas with a
consistent-hash :class:`Router` keyed on stream/tenant id, and layers
the fault-tolerance policy the single-replica server cannot express:

- **Health-aware routing** — each replica carries a
  :class:`~repro.serving.health.ReplicaHealth` state machine fed by
  attempt outcomes, queue depth, and the guard's breaker state.
  Ejected replicas receive no traffic; degraded ones fall behind
  healthy peers in the ring-walk preference order; probation replicas
  stay routable so re-admission happens through real traffic.
- **Deadline-aware retries** — a failed retryable attempt
  (:class:`~repro.serving.chaos.ReplicaFaultError`, admission
  refusals) is re-dispatched to the next replica in preference order
  after a deterministic jittered backoff
  (:class:`~repro.serving.retry.RetryPolicy`), but never when the
  backoff alone would outlive the request's remaining deadline.
- **Hedging** — with a :class:`~repro.serving.retry.HedgePolicy`, a
  primary attempt still pending past the observed latency quantile
  earns one duplicate dispatch on another replica; first result wins
  and the loser is cancelled.
- **Brownout** — when the routable fraction drops below
  ``brownout_healthy_fraction``, requests below
  ``brownout_min_priority`` are shed at the door with a typed
  :class:`BrownoutError` instead of queueing forever.

The fleet runs in the same two modes as the server: **threaded**
(:meth:`ServerFleet.start` starts every replica's worker pool plus a
maintenance thread that processes attempt outcomes and due timers) and
**virtual** (:meth:`ServerFleet.pump_replica` +
:meth:`ServerFleet.service` under a
:class:`~repro.observability.clock.FixedClock`, driven by the
deterministic :class:`~repro.serving.loadgen.FleetLoadGenerator` and
the chaos harness).  Every decision is recorded in
:attr:`ServerFleet.trace` as
:class:`~repro.serving.retry.RetryEvent` rows, byte-identical across
same-seed runs.
"""

from __future__ import annotations

import bisect
import heapq
import threading
import zlib
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.observability.clock import Clock, wall_clock
from repro.observability.context import TraceContext
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.serving.chaos import ChaosGate, ReplicaFaultError
from repro.serving.health import (
    HealthPolicy,
    ReplicaHealth,
)
from repro.serving.queue import (
    AdmissionError,
    DeadlineExceededError,
    ServingRequest,
    emit_request_trace,
)
from repro.serving.retry import (
    HedgePolicy,
    RetryEvent,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.partition.partitioner import PartitionPlan, ScenePartitioner
from repro.serving.server import (
    DispatchRecord,
    DrainTimeoutError,
    InferenceServer,
    ServedResult,
    ServingConfig,
)


class NoHealthyReplicaError(AdmissionError):
    """Rejected because no routable replica exists right now."""

    reason = "no_healthy_replica"


class BrownoutError(AdmissionError):
    """Shed at the door: fleet in brownout, priority too low."""

    reason = "brownout"


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-level knobs (per-replica knobs live in
    :class:`~repro.serving.server.ServingConfig`).

    Attributes:
        ring_points: virtual nodes per replica on the hash ring.
        default_deadline_ms: deadline applied to requests submitted
            without one; ``None`` disables the default.
        brownout_healthy_fraction: when the routable replica fraction
            drops below this, brownout mode sheds low-priority
            traffic.
        brownout_min_priority: minimum priority admitted during
            brownout (higher numbers are more important).
        retry: the deadline-aware retry policy.
        hedge: optional hedged-dispatch policy; ``None`` disables
            hedging.
        health: per-replica health thresholds.
    """

    ring_points: int = 32
    default_deadline_ms: Optional[float] = None
    brownout_healthy_fraction: float = 0.5
    brownout_min_priority: int = 1
    retry: RetryPolicy = RetryPolicy()
    hedge: Optional[HedgePolicy] = None
    health: HealthPolicy = HealthPolicy()

    def __post_init__(self) -> None:
        if self.ring_points < 1:
            raise ValueError("ring_points must be positive")
        if (
            self.default_deadline_ms is not None
            and self.default_deadline_ms <= 0
        ):
            raise ValueError("default_deadline_ms must be positive")
        if not 0.0 <= self.brownout_healthy_fraction <= 1.0:
            raise ValueError(
                "brownout_healthy_fraction must be within [0, 1]"
            )


class Router:
    """Consistent-hash ring mapping tenant keys to replica indices.

    Each replica owns ``ring_points`` virtual nodes hashed with
    :func:`zlib.crc32` (deterministic across processes, unlike
    ``hash()``).  :meth:`preference` walks the ring clockwise from the
    key's position and returns every replica once, in encounter
    order — the natural failover order that keeps a tenant pinned to
    its primary replica while spreading its retries.
    """

    def __init__(self, replicas: int, ring_points: int = 32) -> None:
        if replicas < 1:
            raise ValueError("replicas must be positive")
        if ring_points < 1:
            raise ValueError("ring_points must be positive")
        self.replicas = int(replicas)
        self.ring_points = int(ring_points)
        ring: List[Tuple[int, int]] = []
        for replica in range(self.replicas):
            for vnode in range(self.ring_points):
                token = f"replica-{replica}-vnode-{vnode}"
                ring.append(
                    (zlib.crc32(token.encode("utf-8")), replica)
                )
        ring.sort()
        self._ring = ring
        self._hashes = [h for h, _ in ring]

    def preference(self, key: str) -> Tuple[int, ...]:
        """All replica indices in ring-walk (failover) order."""
        point = zlib.crc32(str(key).encode("utf-8"))
        start = bisect.bisect_left(self._hashes, point) % len(
            self._ring
        )
        order: List[int] = []
        seen: Set[int] = set()
        for offset in range(len(self._ring)):
            _, replica = self._ring[(start + offset) % len(self._ring)]
            if replica not in seen:
                seen.add(replica)
                order.append(replica)
                if len(order) == self.replicas:
                    break
        return tuple(order)

    def replica_for(self, key: str) -> int:
        """The primary replica for ``key``."""
        return self.preference(key)[0]


@dataclass
class FleetRequest:
    """One fleet-level request; its future survives replica failures.

    Attributes:
        request_id: fleet-level id (``f000001``); attempt ids append
            ``.aK``.
        tenant: routing key (stream/tenant id).
        priority: brownout priority (higher is more important).
        cloud: the ``(N, 3)`` cloud.
        arrival_s: fleet admission instant.
        deadline_s: absolute deadline shared by every attempt.
        future: resolves exactly once — to a
            :class:`~repro.serving.server.ServedResult` or a typed
            error.
        attempts: dispatch attempts made so far.
        tried: replica indices attempted, in order.
        hedges: hedged dispatches issued (at most one).
        inflight: attempt ids not yet resolved.
        winner: attempt id that resolved the future, if successful.
        ctx: root trace context minted at fleet admission; every
            attempt's spans — on whichever replica they land — join
            ``ctx.trace_id``, and the fleet emits the root span when
            the request reaches its terminal state.
        parent_span_id: set on scatter/gather sub-requests (see
            :meth:`ServerFleet.submit_scene`): the scene root span to
            parent this request's terminal span under.  Sub-request
            terminal spans are named ``request.chunk`` so each scene
            trace keeps exactly one ``request`` root.
    """

    request_id: str
    tenant: str
    priority: int
    cloud: np.ndarray
    arrival_s: float
    deadline_s: Optional[float] = None
    future: Future = field(default_factory=Future)
    attempts: int = 0
    tried: List[int] = field(default_factory=list)
    hedges: int = 0
    inflight: Set[str] = field(default_factory=set)
    winner: Optional[str] = None
    ctx: Optional[TraceContext] = None
    parent_span_id: Optional[int] = None


@dataclass
class SceneRequest:
    """One scene-scale request scattered over many fleet requests.

    Minted by :meth:`ServerFleet.submit_scene`: the scene owns the
    trace root; each chunk rides the ordinary fleet path (routing,
    retries, hedging) as a sub-request joined to the scene's trace,
    and the gather step stitches the chunk results into one
    :class:`~repro.serving.server.ServedResult` resolved on
    :attr:`future`.

    Attributes:
        request_id: scene-level id; chunk sub-requests append ``.cJ``.
        tenant: routing key shared by every chunk.
        priority: brownout priority shared by every chunk.
        arrival_s: scene admission instant.
        plan: the partition plan the scene was scattered with.
        future: resolves once — to the stitched result or the first
            chunk error.
        chunks: the chunk sub-requests, aligned with ``plan.chunks``.
        ctx: scene root trace context (``None`` with tracing off).
        pending: chunk outcomes not yet gathered.
        finalized: whether the gather step already ran.
        submit_error: admission error hit while scattering, if any.
    """

    request_id: str
    tenant: str
    priority: int
    arrival_s: float
    plan: PartitionPlan
    future: Future = field(default_factory=Future)
    chunks: List[FleetRequest] = field(default_factory=list)
    ctx: Optional[TraceContext] = None
    pending: int = 0
    finalized: bool = False
    submit_error: Optional[Exception] = None

    @property
    def num_chunks(self) -> int:
        return self.plan.num_chunks


@dataclass
class _Attempt:
    """One dispatch of a fleet request onto one replica."""

    attempt_id: str
    request: FleetRequest
    replica: int
    submitted_s: float
    serving_request: ServingRequest
    hedge: bool = False
    cancelled: bool = False
    ctx: Optional[TraceContext] = None


@dataclass
class Replica:
    """One fleet member: server + health + chaos gate."""

    index: int
    server: InferenceServer
    health: ReplicaHealth
    gate: ChaosGate = field(default_factory=ChaosGate)


#: Errors worth re-dispatching to another replica.  Guard rejections,
#: validation errors, and deadline expiries are terminal.
RETRYABLE_ERRORS = (ReplicaFaultError, AdmissionError)


class ServerFleet:
    """N replicas behind a consistent-hash router (see module doc).

    Args:
        pipelines: one pipeline per replica (each replica needs its
            own model instance — workers swap workspaces into it).
        config: fleet-level policy knobs.
        serving_config: per-replica serving knobs.
        clock: injectable clock shared by every replica; pass a
            :class:`~repro.observability.clock.FixedClock` for
            deterministic virtual-time operation.
        tracer: optional tracer (defaults to the first pipeline's).
        metrics: optional registry (defaults to the first pipeline's).
    """

    def __init__(
        self,
        pipelines: Sequence,
        config: Optional[FleetConfig] = None,
        serving_config: Optional[ServingConfig] = None,
        clock: Clock = wall_clock,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not pipelines:
            raise ValueError("a fleet needs at least one pipeline")
        self.config = config or FleetConfig()
        self.serving_config = serving_config or ServingConfig()
        self.clock = clock
        first = pipelines[0]
        if tracer is None:
            tracer = getattr(first, "tracer", None) or NULL_TRACER
        self.tracer = tracer
        if metrics is None:
            metrics = getattr(first, "metrics", None)
        self.metrics = metrics
        self.replicas: List[Replica] = []
        for index, pipeline in enumerate(pipelines):
            server = InferenceServer(
                pipeline,
                config=self.serving_config,
                clock=clock,
                tracer=tracer,
                metrics=metrics,
            )
            health = ReplicaHealth(
                str(index),
                policy=self.config.health,
                metrics=metrics,
            )
            self.replicas.append(
                Replica(index=index, server=server, health=health)
            )
        self.router = Router(
            len(self.replicas), self.config.ring_points
        )
        self._cond = threading.Condition()
        self._attempts: Dict[str, _Attempt] = {}
        self._resolved: Deque[str] = deque()
        self._retries: List[Tuple[float, int, FleetRequest]] = []
        self._hedge_timers: List[Tuple[float, int, str]] = []
        self._timer_seq = 0
        self._sequence = 0
        self._attempt_latencies: Deque[float] = deque(maxlen=256)
        self._requests: Dict[str, FleetRequest] = {}
        #: Byte-identical-per-seed decision log (RetryEvent rows).
        self.trace: List[RetryEvent] = []
        self.submitted = 0
        self.accepted = 0
        self.completed = 0
        self.failed = 0
        self.expired = 0
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_cancelled = 0
        self.submit_rejected = 0
        self.rejection_reasons: Dict[str, int] = {}
        self._maintenance: Optional[threading.Thread] = None
        self._stopping = False

    # Submission ------------------------------------------------------

    def submit(
        self,
        cloud: np.ndarray,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
        parent_ctx: Optional[TraceContext] = None,
    ) -> FleetRequest:
        """Admit one cloud under a tenant key; returns the request.

        ``deadline_s`` is relative to now on the fleet clock and
        bounds the *whole* request including retries and hedges.
        ``parent_ctx`` joins the request to an existing trace as a
        sub-request (:meth:`submit_scene` passes the scene root):
        instead of minting a new trace, the request's terminal span is
        emitted as ``request.chunk`` under the parent span.  Raises a
        typed :class:`~repro.serving.queue.AdmissionError` subclass
        when the fleet sheds the request at the door (brownout, no
        routable replica, every candidate queue full/closed).
        """
        with self.tracer.span("serving.fleet.submit", "serving") as span:
            cloud = np.asarray(cloud, dtype=np.float64)
            if cloud.ndim != 2 or cloud.shape[-1] != 3:
                raise ValueError(
                    f"submit() takes one (N, 3) cloud, got shape "
                    f"{cloud.shape}"
                )
            now = self.clock()
            with self._cond:
                self.submitted += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_submitted_total"
                ).inc()
            if deadline_s is None and (
                self.config.default_deadline_ms is not None
            ):
                deadline_s = self.config.default_deadline_ms / 1e3
            rid = (
                request_id
                if request_id is not None
                else self._next_id()
            )
            span.set("request_id", rid)
            span.set("tenant", str(tenant))
            parent_span_id: Optional[int] = None
            if parent_ctx is not None:
                ctx = parent_ctx.child(
                    self.tracer.next_span_id()
                ).with_baggage(request_id=rid)
                parent_span_id = parent_ctx.span_id
            else:
                ctx = self.tracer.mint_context(rid, tenant=str(tenant))
            if ctx is not None:
                span.set("trace_id", ctx.trace_id)
            if priority < self.config.brownout_min_priority and (
                self.brownout_active(now)
            ):
                self._reject(
                    now, rid, "brownout", ctx=ctx,
                    parent_span_id=parent_span_id,
                )
                raise BrownoutError(
                    f"request {rid!r} shed: fleet in brownout "
                    f"({self.healthy_count(now)}/"
                    f"{len(self.replicas)} replicas routable) and "
                    f"priority {priority} < "
                    f"{self.config.brownout_min_priority}"
                )
            request = FleetRequest(
                request_id=rid,
                tenant=str(tenant),
                priority=int(priority),
                cloud=cloud,
                arrival_s=now,
                deadline_s=(
                    None if deadline_s is None else now + deadline_s
                ),
                ctx=ctx,
                parent_span_id=parent_span_id,
            )
            index, refusal = self._dispatch_attempt(
                request, now, hedge=False, exclude=set()
            )
            if index is None:
                if refusal is None:
                    self._reject(
                        now, rid, "no_healthy_replica", ctx=ctx,
                        parent_span_id=parent_span_id,
                    )
                    raise NoHealthyReplicaError(
                        f"request {rid!r} rejected: no routable "
                        "replica in the fleet"
                    )
                self._reject(
                    now, rid, refusal.reason, ctx=ctx,
                    parent_span_id=parent_span_id,
                )
                raise refusal
            with self._cond:
                self.accepted += 1
                self._requests[rid] = request
            return request

    def submit_scene(
        self,
        cloud: np.ndarray,
        partitioner: ScenePartitioner,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: Optional[float] = None,
        request_id: Optional[str] = None,
    ) -> SceneRequest:
        """Scatter one ``(N, 3)`` scene over the fleet and gather.

        The scene is split by ``partitioner`` into uniform chunks;
        each chunk is submitted as an ordinary fleet sub-request
        (``{rid}.cJ``) sharing the scene's trace, so routing, retries,
        hedging, and brownout all apply per chunk.  When the last
        chunk settles, the per-chunk results are stitched back into
        scene order with owner-chunk priority and the scene future
        resolves to one :class:`~repro.serving.server.ServedResult`
        with ``trigger="scatter_gather"``.  A chunk's terminal error
        (or a scatter-time admission refusal) fails the whole scene
        with that error once every in-flight chunk settles.
        """
        with self.tracer.span(
            "serving.fleet.submit_scene", "serving"
        ) as span:
            cloud = np.asarray(cloud, dtype=np.float64)
            if cloud.ndim != 2 or cloud.shape[-1] != 3:
                raise ValueError(
                    f"submit_scene() takes one (N, 3) scene, got "
                    f"shape {cloud.shape}"
                )
            now = self.clock()
            rid = (
                request_id
                if request_id is not None
                else self._next_id()
            )
            ctx = self.tracer.mint_context(rid, tenant=str(tenant))
            plan = partitioner.plan(cloud)
            span.set("request_id", rid)
            span.set("points", plan.num_points)
            span.set("chunks", plan.num_chunks)
            if ctx is not None:
                span.set("trace_id", ctx.trace_id)
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_scenes_total"
                ).inc()
                self.metrics.counter(
                    "serving_fleet_scene_chunks_total"
                ).inc(plan.num_chunks)
            scene = SceneRequest(
                request_id=rid,
                tenant=str(tenant),
                priority=int(priority),
                arrival_s=now,
                plan=plan,
                ctx=ctx,
                pending=plan.num_chunks,
            )
            for chunk in plan.chunks:
                try:
                    request = self.submit(
                        cloud[chunk.indices],
                        tenant=tenant,
                        priority=priority,
                        deadline_s=deadline_s,
                        request_id=f"{rid}.c{chunk.index}",
                        parent_ctx=ctx,
                    )
                except AdmissionError as err:
                    scene.submit_error = err
                    break
                scene.chunks.append(request)
                request.future.add_done_callback(
                    lambda fut, s=scene: self._settle_scene_chunks(
                        s, 1
                    )
                )
            unscattered = plan.num_chunks - len(scene.chunks)
            if unscattered:
                self._settle_scene_chunks(scene, unscattered)
            return scene

    def _settle_scene_chunks(
        self, scene: SceneRequest, count: int
    ) -> None:
        """Count ``count`` chunk outcomes toward the scene's gather;
        the caller that retires the last one runs the gather (outside
        the fleet lock — it emits spans and resolves the future)."""
        with self._cond:
            scene.pending -= count
            if scene.pending > 0 or scene.finalized:
                return
            scene.finalized = True
        self._gather_scene(scene)

    def _gather_scene(self, scene: SceneRequest) -> None:
        """Stitch chunk results (or fail with the first chunk error)
        and close the scene trace; runs exactly once per scene."""
        now = self.clock()
        error: Optional[BaseException] = None
        results: List[ServedResult] = []
        for request in scene.chunks:
            chunk_error = request.future.exception()
            if chunk_error is not None:
                error = error or chunk_error
            else:
                results.append(request.future.result())
        if error is None and scene.submit_error is not None:
            error = scene.submit_error
        if error is not None:
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_scene_failed_total",
                    reason=type(error).__name__,
                ).inc()
            self._close_scene_trace(
                scene, now, "failed", detail=type(error).__name__
            )
            scene.future.set_exception(error)
            return
        stitched = self._stitch_scene(scene, results)
        if self.metrics is not None:
            self.metrics.counter(
                "serving_fleet_scene_completed_total"
            ).inc()
        self._close_scene_trace(scene, now, "ok")
        scene.future.set_result(stitched)

    def _stitch_scene(
        self, scene: SceneRequest, results: List[ServedResult]
    ) -> ServedResult:
        """Owner-chunk-priority stitch of per-chunk logits back into
        scene point order (context rows are discarded)."""
        plan = scene.plan
        first = results[0]
        logits = np.empty(
            (plan.num_points, first.logits.shape[-1]),
            dtype=first.logits.dtype,
        )
        degraded: Set[str] = set()
        for chunk, served in zip(plan.chunks, results):
            logits[chunk.core_indices] = served.logits[
                : chunk.num_core
            ]
            degraded.update(served.degraded_stages)
        return ServedResult(
            request_id=scene.request_id,
            logits=logits,
            prediction=logits.argmax(axis=-1),
            batch_size=plan.num_chunks,
            trigger="scatter_gather",
            queue_wait_s=max(r.queue_wait_s for r in results),
            simulated_batch_s=sum(
                r.simulated_batch_s for r in results
            ),
            degraded_stages=tuple(sorted(degraded)),
            trace_id=(
                scene.ctx.trace_id if scene.ctx is not None else ""
            ),
        )

    def _close_scene_trace(
        self,
        scene: SceneRequest,
        now: float,
        outcome: str,
        detail: str = "",
    ) -> None:
        """Emit the scene's root span: the single ``request`` root the
        per-chunk ``request.chunk`` spans parent under."""
        ctx = scene.ctx
        if ctx is None:
            return
        attrs: Dict[str, object] = {
            "request_id": scene.request_id,
            "tenant": scene.tenant,
            "outcome": outcome,
            "chunks": scene.num_chunks,
            "points": scene.plan.num_points,
            "scatter_gather": True,
        }
        if detail:
            attrs["detail"] = detail
        self.tracer.emit_span(
            "request",
            start_s=self.tracer.rel(scene.arrival_s),
            duration_s=max(0.0, now - scene.arrival_s),
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            thread="requests",
            attrs=attrs,
        )

    def _next_id(self) -> str:
        with self._cond:
            self._sequence += 1
            return f"f{self._sequence:06d}"

    def _reject(
        self,
        now: float,
        rid: str,
        reason: str,
        ctx: Optional[TraceContext] = None,
        parent_span_id: Optional[int] = None,
    ) -> None:
        with self._cond:
            self.submit_rejected += 1
            self._count_reason(reason)
        if self.metrics is not None:
            self.metrics.counter(
                "serving_fleet_rejected_total", reason=reason
            ).inc()
        self._note(
            RetryEvent(
                now,
                rid,
                0,
                -1,
                "rejected",
                reason,
                trace_id=ctx.trace_id if ctx is not None else "",
            )
        )
        if ctx is not None:
            # Shed-at-the-door requests still close their trace: a
            # zero-length root span records the rejection.  Scene
            # sub-requests close as request.chunk under the scene
            # root instead, keeping one root per trace.
            self.tracer.emit_span(
                "request"
                if parent_span_id is None
                else "request.chunk",
                start_s=self.tracer.rel(now),
                duration_s=0.0,
                trace_id=ctx.trace_id,
                span_id=ctx.span_id,
                parent_id=parent_span_id,
                thread="requests",
                attrs={
                    "request_id": rid,
                    "outcome": "rejected",
                    "reason": reason,
                },
            )

    def _count_reason(self, reason: str) -> None:
        """Tally one rejection reason; callers hold :attr:`_cond`."""
        self.rejection_reasons[reason] = (
            self.rejection_reasons.get(reason, 0) + 1
        )

    def _note(self, event: RetryEvent) -> None:
        """Append one decision-log row under the fleet lock.

        Submitter threads (rejections) and the maintenance thread
        (outcomes, timers) both write the trace; readers snapshot it
        via ``list(self.trace)``.
        """
        with self._cond:
            self.trace.append(event)

    # Routing and dispatch --------------------------------------------

    def _candidates(
        self, tenant: str, now: float, exclude: Set[int]
    ) -> List[int]:
        """Routable replicas in failover order, avoiding ``exclude``
        (already-tried) unless that would leave nowhere to go."""
        order = self.router.preference(tenant)
        routable = [
            index
            for index in order
            if not self.replicas[index].gate.killed
            and self.replicas[index].health.routable(now)
        ]
        # Degraded replicas stay routable but fall behind healthy
        # peers; probation replicas keep their ring position so
        # re-admission happens through real traffic.
        routable.sort(
            key=lambda index: (
                1
                if self.replicas[index].health.state == "degraded"
                else 0
            )
        )
        fresh = [index for index in routable if index not in exclude]
        return fresh or routable

    def _dispatch_attempt(
        self,
        request: FleetRequest,
        now: float,
        hedge: bool,
        exclude: Set[int],
    ) -> Tuple[Optional[int], Optional[AdmissionError]]:
        """Try each candidate replica once; returns ``(replica,
        last_refusal)`` where ``replica`` is ``None`` if nobody
        accepted."""
        candidates = self._candidates(request.tenant, now, exclude)
        last_refusal: Optional[AdmissionError] = None
        for index in candidates:
            replica = self.replicas[index]
            remaining = (
                None
                if request.deadline_s is None
                else request.deadline_s - now
            )
            attempt_number = request.attempts + 1
            attempt_id = f"{request.request_id}.a{attempt_number}"
            attempt_ctx: Optional[TraceContext] = None
            if request.ctx is not None:
                # Re-anchor the request's trace on a pre-reserved
                # attempt span id; the replica's queue/batch/stage
                # spans parent under it, and the fleet emits the
                # attempt span itself once the outcome is known.
                attempt_ctx = request.ctx.child(
                    self.tracer.next_span_id()
                ).with_baggage(attempt=str(attempt_number))
            try:
                serving_request = replica.server.submit(
                    request.cloud,
                    deadline_s=remaining,
                    request_id=attempt_id,
                    ctx=attempt_ctx,
                )
            except AdmissionError as err:
                last_refusal = err
                self._note(
                    RetryEvent(
                        now,
                        request.request_id,
                        request.attempts,
                        index,
                        "refused",
                        type(err).__name__,
                        trace_id=self._trace_of(request),
                    )
                )
                continue
            request.attempts = attempt_number
            request.tried.append(index)
            request.inflight.add(attempt_id)
            attempt = _Attempt(
                attempt_id=attempt_id,
                request=request,
                replica=index,
                submitted_s=now,
                serving_request=serving_request,
                hedge=hedge,
                ctx=attempt_ctx,
            )
            with self._cond:
                self._attempts[attempt_id] = attempt
            if hedge:
                request.hedges += 1
                with self._cond:
                    self.hedges += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serving_fleet_hedges_total"
                    ).inc()
            self._note(
                RetryEvent(
                    now,
                    request.request_id,
                    attempt_number,
                    index,
                    "hedge" if hedge else "dispatch",
                    trace_id=self._trace_of(request),
                )
            )
            if not hedge and self.config.hedge is not None:
                with self._cond:
                    latencies = list(self._attempt_latencies)
                delay = self.config.hedge.delay_s(latencies)
                with self._cond:
                    self._timer_seq += 1
                    heapq.heappush(
                        self._hedge_timers,
                        (now + delay, self._timer_seq, attempt_id),
                    )
                    # Submitter threads schedule hedges while the
                    # maintenance thread may be parked on a longer
                    # wait; wake it so it re-derives its deadline.
                    self._cond.notify_all()
            serving_request.future.add_done_callback(
                lambda fut, aid=attempt_id: self._attempt_resolved(
                    aid
                )
            )
            # Keep the replica's next_flush_at current for the
            # virtual-time event loop; harmless under workers.
            replica.server.batcher.ingest()
            return index, None
        return None, last_refusal

    def _attempt_resolved(self, attempt_id: str) -> None:
        with self._cond:
            self._resolved.append(attempt_id)
            self._cond.notify_all()

    # Outcome processing ----------------------------------------------

    def service(
        self, now: Optional[float] = None, force: bool = False
    ) -> None:
        """Process resolved attempts and due timers at ``now``.

        The fleet's heartbeat: called by the maintenance thread
        (threaded mode) and by the virtual-time event loop after every
        clock advance.  With ``force=True`` (shutdown) due times are
        ignored: pending retries dispatch immediately or fail typed.
        """
        if now is None:
            now = self.clock()
        self._process_resolved(now)
        self._fire_hedges(now, force)
        self._fire_retries(now, force)
        self._process_resolved(now)
        self._observe_health(now)

    def _process_resolved(self, now: float) -> None:
        while True:
            with self._cond:
                if not self._resolved:
                    return
                attempt_id = self._resolved.popleft()
                attempt = self._attempts.pop(attempt_id, None)
            if attempt is not None:
                self._handle_outcome(attempt, now)

    def _trace_of(self, request: FleetRequest) -> str:
        return request.ctx.trace_id if request.ctx is not None else ""

    def _emit_attempt_span(
        self, attempt: _Attempt, now: float, error: Optional[BaseException]
    ) -> None:
        """Emit the attempt span reserved at dispatch time.

        Parented under the request's root span; the replica-side
        queue/batch/stage spans already point at this id via the
        attempt's child context, so the stitched trace has no orphans
        even though the span is written after its children.
        """
        ctx = attempt.ctx
        root = attempt.request.ctx
        if ctx is None or root is None:
            return
        attrs: Dict[str, object] = {
            "replica": attempt.replica,
            "hedge": attempt.hedge,
            "outcome": (
                "ok" if error is None else type(error).__name__
            ),
        }
        if attempt.cancelled:
            attrs["cancelled"] = True
        self.tracer.emit_span(
            "request.attempt",
            start_s=self.tracer.rel(attempt.submitted_s),
            duration_s=max(0.0, now - attempt.submitted_s),
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=root.span_id,
            thread="requests",
            attrs=attrs,
        )

    def _close_request_trace(
        self,
        request: FleetRequest,
        now: float,
        outcome: str,
        detail: str = "",
    ) -> None:
        """Emit the span reserved at fleet admission: the trace root
        for ordinary requests, a ``request.chunk`` child of the scene
        root for scatter/gather sub-requests."""
        ctx = request.ctx
        if ctx is None:
            return
        attrs: Dict[str, object] = {
            "request_id": request.request_id,
            "tenant": request.tenant,
            "outcome": outcome,
            "attempts": request.attempts,
            "hedges": request.hedges,
        }
        if detail:
            attrs["detail"] = detail
        self.tracer.emit_span(
            "request"
            if request.parent_span_id is None
            else "request.chunk",
            start_s=self.tracer.rel(request.arrival_s),
            duration_s=max(0.0, now - request.arrival_s),
            trace_id=ctx.trace_id,
            span_id=ctx.span_id,
            parent_id=request.parent_span_id,
            thread="requests",
            attrs=attrs,
        )

    def _handle_outcome(self, attempt: _Attempt, now: float) -> None:
        request = attempt.request
        request.inflight.discard(attempt.attempt_id)
        replica = self.replicas[attempt.replica]
        error = attempt.serving_request.future.exception()
        self._emit_attempt_span(attempt, now, error)
        if error is None:
            latency = max(0.0, now - attempt.submitted_s)
            replica.health.record_success(now, latency)
            with self._cond:
                self._attempt_latencies.append(latency)
            if request.future.done():
                return  # a sibling already won
            request.winner = attempt.attempt_id
            request.future.set_result(
                attempt.serving_request.future.result()
            )
            with self._cond:
                self.completed += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_completed_total"
                ).inc()
            if attempt.hedge:
                with self._cond:
                    self.hedge_wins += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "serving_fleet_hedge_wins_total"
                    ).inc()
                self._note(
                    RetryEvent(
                        now,
                        request.request_id,
                        request.attempts,
                        attempt.replica,
                        "hedge_win",
                        trace_id=self._trace_of(request),
                    )
                )
            self._close_request_trace(request, now, "ok")
            self._cancel_siblings(request, now)
            return
        failure_kind = (
            "deadline"
            if isinstance(error, DeadlineExceededError)
            else type(error).__name__
        )
        replica.health.record_failure(now, failure_kind)
        if request.future.done() or attempt.cancelled:
            return
        if request.inflight:
            return  # a sibling attempt may still win
        if isinstance(error, DeadlineExceededError):
            self._expire_request(request, now, attempt.replica, error)
            return
        if not isinstance(error, RETRYABLE_ERRORS):
            self._fail_request(request, now, attempt.replica, error)
            return
        self._schedule_retry(request, now, attempt.replica, error)

    def _expire_request(
        self,
        request: FleetRequest,
        now: float,
        replica: int,
        error: Exception,
    ) -> None:
        with self._cond:
            self.expired += 1
            self._count_reason("deadline")
        if self.metrics is not None:
            self.metrics.counter("serving_fleet_expired_total").inc()
        self._note(
            RetryEvent(
                now,
                request.request_id,
                request.attempts,
                replica,
                "expired",
                trace_id=self._trace_of(request),
            )
        )
        self._close_request_trace(request, now, "expired")
        request.future.set_exception(error)

    def _fail_request(
        self,
        request: FleetRequest,
        now: float,
        replica: int,
        error: Exception,
    ) -> None:
        with self._cond:
            self.failed += 1
        if self.metrics is not None:
            self.metrics.counter(
                "serving_fleet_failed_total",
                reason=type(error).__name__,
            ).inc()
        self._note(
            RetryEvent(
                now,
                request.request_id,
                request.attempts,
                replica,
                "failed",
                type(error).__name__,
                trace_id=self._trace_of(request),
            )
        )
        self._close_request_trace(
            request, now, "failed", detail=type(error).__name__
        )
        request.future.set_exception(error)

    def _exhaust_request(
        self,
        request: FleetRequest,
        now: float,
        replica: int,
        cause: Exception,
    ) -> None:
        with self._cond:
            self.failed += 1
            self._count_reason("retry_exhausted")
        if self.metrics is not None:
            self.metrics.counter(
                "serving_fleet_failed_total",
                reason="retry_exhausted",
            ).inc()
        self._note(
            RetryEvent(
                now,
                request.request_id,
                request.attempts,
                replica,
                "exhausted",
                type(cause).__name__,
                trace_id=self._trace_of(request),
            )
        )
        self._close_request_trace(
            request, now, "exhausted", detail=type(cause).__name__
        )
        exhausted = RetryExhaustedError(
            f"request {request.request_id!r} exhausted after "
            f"{request.attempts} attempt(s); last error: "
            f"{type(cause).__name__}: {cause}"
        )
        exhausted.__cause__ = cause
        request.future.set_exception(exhausted)

    def _schedule_retry(
        self,
        request: FleetRequest,
        now: float,
        replica: int,
        error: Exception,
    ) -> None:
        remaining = (
            None
            if request.deadline_s is None
            else request.deadline_s - now
        )
        backoff = self.config.retry.next_backoff(
            request.attempts, request.request_id, remaining
        )
        if backoff is None:
            self._exhaust_request(request, now, replica, error)
            return
        with self._cond:
            self.retries += 1
        if self.metrics is not None:
            self.metrics.counter("serving_fleet_retries_total").inc()
        self._note(
            RetryEvent(
                now,
                request.request_id,
                request.attempts,
                replica,
                "retry",
                type(error).__name__,
                backoff_s=backoff,
                trace_id=self._trace_of(request),
            )
        )
        with self._cond:
            self._timer_seq += 1
            heapq.heappush(
                self._retries,
                (now + backoff, self._timer_seq, request),
            )
            self._cond.notify_all()

    def _cancel_siblings(
        self, request: FleetRequest, now: float
    ) -> None:
        for attempt_id in sorted(request.inflight):
            with self._cond:
                sibling = self._attempts.get(attempt_id)
            if sibling is None or sibling.cancelled:
                continue
            sibling.cancelled = True
            with self._cond:
                self.hedge_cancelled += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_hedge_cancelled_total"
                ).inc()
            self._note(
                RetryEvent(
                    now,
                    request.request_id,
                    request.attempts,
                    sibling.replica,
                    "hedge_cancel",
                    trace_id=self._trace_of(request),
                )
            )

    # Timers ----------------------------------------------------------

    def _fire_retries(self, now: float, force: bool) -> None:
        while True:
            with self._cond:
                if not self._retries:
                    return
                due, _, request = self._retries[0]
                if not force and due > now:
                    return
                heapq.heappop(self._retries)
            if request.future.done():
                continue
            if (
                request.deadline_s is not None
                and now >= request.deadline_s
            ):
                self._expire_request(
                    request,
                    now,
                    -1,
                    DeadlineExceededError(
                        f"request {request.request_id!r} deadline "
                        "passed before its retry could dispatch"
                    ),
                )
                continue
            index, _ = self._dispatch_attempt(
                request, now, hedge=False, exclude=set(request.tried)
            )
            if index is not None:
                continue
            # Nowhere to go right now: a failed placement consumes an
            # attempt, so the loop terminates at max_attempts even
            # while every queue refuses.
            request.attempts += 1
            remaining = (
                None
                if request.deadline_s is None
                else request.deadline_s - now
            )
            backoff = self.config.retry.next_backoff(
                request.attempts, request.request_id, remaining
            )
            if backoff is None:
                self._exhaust_request(
                    request,
                    now,
                    -1,
                    NoHealthyReplicaError(
                        f"request {request.request_id!r}: no replica "
                        "accepted the retry"
                    ),
                )
                continue
            with self._cond:
                self.retries += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "serving_fleet_retries_total"
                ).inc()
            self._note(
                RetryEvent(
                    now,
                    request.request_id,
                    request.attempts,
                    -1,
                    "retry",
                    "placement",
                    backoff_s=backoff,
                    trace_id=self._trace_of(request),
                )
            )
            with self._cond:
                self._timer_seq += 1
                heapq.heappush(
                    self._retries,
                    (now + backoff, self._timer_seq, request),
                )

    def _fire_hedges(self, now: float, force: bool) -> None:
        while True:
            with self._cond:
                if not self._hedge_timers:
                    return
                due, _, attempt_id = self._hedge_timers[0]
                if not force and due > now:
                    return
                heapq.heappop(self._hedge_timers)
                attempt = self._attempts.get(attempt_id)
            if force:
                continue  # shutting down: no new hedges
            if attempt is None or attempt.cancelled:
                continue
            request = attempt.request
            if request.future.done() or request.hedges >= 1:
                continue
            self._dispatch_attempt(
                request, now, hedge=True, exclude={attempt.replica}
            )

    @property
    def next_timer_at(self) -> Optional[float]:
        """Earliest instant the fleet has scheduled work, if any."""
        with self._cond:
            candidates = []
            if self._retries:
                candidates.append(self._retries[0][0])
            if self._hedge_timers:
                candidates.append(self._hedge_timers[0][0])
            if self._resolved:
                candidates.append(self.clock())
        return min(candidates) if candidates else None

    @property
    def inflight_attempts(self) -> int:
        """Attempts dispatched but not yet processed."""
        with self._cond:
            return len(self._attempts)

    # Health and brownout ---------------------------------------------

    def healthy_count(self, now: float) -> int:
        """Replicas the router may currently send traffic to."""
        return sum(
            1
            for replica in self.replicas
            if not replica.gate.killed
            and replica.health.routable(now)
        )

    def brownout_active(self, now: float) -> bool:
        """Whether low-priority traffic is being shed."""
        fraction = self.healthy_count(now) / len(self.replicas)
        return fraction < self.config.brownout_healthy_fraction

    def _observe_health(self, now: float) -> None:
        for replica in self.replicas:
            breakers = getattr(
                replica.server.pipeline, "breakers", None
            )
            breaker_open = bool(breakers) and any(
                breaker.state == "open"
                for breaker in breakers.values()
            )
            replica.health.observe(
                now,
                queue_depth=replica.server.queue.depth,
                breaker_open=breaker_open,
            )
        if self.metrics is not None:
            self.metrics.gauge("serving_fleet_healthy_replicas").set(
                float(self.healthy_count(now))
            )
            self.metrics.gauge("serving_fleet_brownout").set(
                1.0 if self.brownout_active(now) else 0.0
            )

    # Chaos controls (driven by the harness; also CLI-accessible) -----

    def kill_replica(
        self, index: int, now: Optional[float] = None
    ) -> int:
        """Kill a replica: fail its backlog, force-eject its health.

        Returns the number of shed attempts (each fails with a
        retryable :class:`~repro.serving.chaos.ReplicaFaultError`, so
        the fleet re-dispatches them elsewhere).
        """
        if now is None:
            now = self.clock()
        replica = self.replicas[index]
        replica.gate.killed = True
        shed = self.shed_replica_backlog(index, "killed", now=now)
        replica.health.force_eject(now, "killed")
        return shed

    def stall_replica(
        self, index: int, now: Optional[float] = None
    ) -> None:
        """Stall a replica: it stops dispatching but keeps its
        backlog (deadlines still expire)."""
        self.replicas[index].gate.stalled = True

    def slow_replica(
        self,
        index: int,
        factor: float = 4.0,
        now: Optional[float] = None,
    ) -> None:
        """Slow a replica's simulated device by ``factor``."""
        self.replicas[index].gate.slow_factor = float(factor)

    def error_replica(
        self, index: int, now: Optional[float] = None
    ) -> None:
        """Make every dispatched batch on a replica fail retryably."""
        self.replicas[index].gate.erroring = True

    def recover_replica(
        self, index: int, now: Optional[float] = None
    ) -> None:
        """Clear chaos state; health still walks EJECTED ->
        PROBATION -> HEALTHY on its own clock."""
        self.replicas[index].gate.reset()

    def shed_replica_backlog(
        self, index: int, reason: str, now: Optional[float] = None
    ) -> int:
        """Fail every queued/buffered attempt on a replica with a
        retryable :class:`~repro.serving.chaos.ReplicaFaultError`;
        returns the count."""
        if now is None:
            now = self.clock()
        replica = self.replicas[index]
        server = replica.server
        with server.queue.condition:
            pending = server.queue.pop_pending()
            if pending:
                server.queue.release(len(pending))
        pending.extend(server.batcher.cancel_buffered())
        if not pending:
            return 0
        for serving_request in pending:
            emit_request_trace(
                self.tracer, serving_request, now, "shed",
                detail=reason,
            )
            serving_request.future.set_exception(
                ReplicaFaultError(
                    f"attempt {serving_request.request_id!r} shed: "
                    f"replica {index} {reason}"
                )
            )
        server.record_failed(len(pending), "replica_fault")
        return len(pending)

    # Virtual mode ----------------------------------------------------

    def pump_replica(
        self, index: int, limit: Optional[int] = None
    ) -> List[DispatchRecord]:
        """Dispatch up to ``limit`` due batches on one replica.

        Chaos-aware: a stalled replica only expires deadlines; a
        killed/erroring replica pops due batches and fails them with
        a retryable fault instead of running inference.
        """
        replica = self.replicas[index]
        if replica.gate.stalled:
            replica.server.batcher.expire_due()
            return []
        if replica.gate.failing:
            records: List[DispatchRecord] = []
            while limit is None or len(records) < limit:
                batch = replica.server.batcher.poll()
                if batch is None:
                    break
                error = ReplicaFaultError(
                    f"replica {index} is {replica.gate.describe()}"
                )
                now = self.clock()
                for serving_request in batch.requests:
                    emit_request_trace(
                        self.tracer, serving_request, now, "failed",
                        detail="replica_fault",
                    )
                    serving_request.future.set_exception(error)
                replica.server.record_failed(
                    batch.size, "replica_fault"
                )
                records.append(
                    DispatchRecord(
                        dispatched_s=batch.formed_s,
                        trigger=batch.trigger,
                        size=batch.size,
                        n_points=batch.n_points,
                        simulated_s=0.0,
                        request_ids=tuple(
                            r.request_id for r in batch.requests
                        ),
                        arrivals_s=tuple(
                            r.arrival_s for r in batch.requests
                        ),
                        ok=False,
                        error="ReplicaFaultError: chaos",
                    )
                )
            return records
        return replica.server.pump(limit=limit)

    def close(self) -> None:
        """Close every replica's admission queue (drain begins)."""
        for replica in self.replicas:
            replica.server.queue.close()

    # Threaded mode ---------------------------------------------------

    def start(self) -> "ServerFleet":
        """Start every replica's worker pool plus the maintenance
        thread (idempotent); returns ``self``."""
        with self.tracer.span("serving.fleet.start", "serving") as span:
            span.set("replicas", len(self.replicas))
            for replica in self.replicas:
                replica.server.start()
            if self._maintenance is None:
                with self._cond:
                    self._stopping = False
                thread = threading.Thread(
                    target=self._maintenance_loop,
                    name="fleet-maintenance",
                    daemon=True,
                )
                thread.start()
                self._maintenance = thread
            return self

    def _maintenance_loop(self) -> None:
        while True:
            with self._cond:
                if self._stopping and not self._resolved:
                    return
                if not self._resolved:
                    # Sleep until the next due retry/hedge timer, but
                    # never longer than the bounded tick — that keeps
                    # timers serviced even if a notify is missed, and
                    # keeps sub-tick hedge delays honest instead of
                    # quantizing them up to the tick.
                    timeout = 0.005
                    due = []
                    if self._retries:
                        due.append(self._retries[0][0])
                    if self._hedge_timers:
                        due.append(self._hedge_timers[0][0])
                    if due:
                        timeout = min(
                            timeout, max(0.0, min(due) - self.clock())
                        )
                    self._cond.wait(timeout=timeout)
            self.service()

    def stop(
        self, drain: bool = True, timeout_s: float = 30.0
    ) -> None:
        """Stop every replica and settle every fleet future.

        After the replicas drain, remaining retries are forced
        against closed queues, so they resolve to typed
        :class:`~repro.serving.retry.RetryExhaustedError` instead of
        hanging.  Re-raises the first
        :class:`~repro.serving.server.DrainTimeoutError` once the
        fleet is otherwise settled.
        """
        with self.tracer.span("serving.fleet.stop", "serving") as span:
            span.set("drain", drain)
            drain_errors: List[DrainTimeoutError] = []
            for replica in self.replicas:
                try:
                    replica.server.stop(
                        drain=drain, timeout_s=timeout_s
                    )
                except DrainTimeoutError as err:
                    drain_errors.append(err)
            while True:
                self.service(force=True)
                with self._cond:
                    settled = not (
                        self._resolved
                        or self._retries
                        or self._hedge_timers
                    )
                if settled:
                    break
            with self._cond:
                self._stopping = True
                self._cond.notify_all()
            thread = self._maintenance
            if thread is not None:
                thread.join(timeout=timeout_s)
                self._maintenance = None
            if drain_errors:
                raise drain_errors[0]

    def __enter__(self) -> "ServerFleet":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # Introspection ---------------------------------------------------

    def replica_states(self, now: Optional[float] = None) -> Dict[
        str, str
    ]:
        """Current health state per replica index."""
        if now is None:
            now = self.clock()
        states = {}
        for replica in self.replicas:
            replica.health.tick(now)
            states[str(replica.index)] = replica.health.state
        return states

    def stats(self) -> Dict[str, float]:
        """Snapshot of the fleet counters (also exported as
        ``serving_fleet_*`` metrics when a registry is attached)."""
        now = self.clock()
        if self.metrics is not None:
            self.metrics.gauge("serving_fleet_healthy_replicas").set(
                float(self.healthy_count(now))
            )
        return {
            "replicas": float(len(self.replicas)),
            "submitted": float(self.submitted),
            "accepted": float(self.accepted),
            "rejected": float(self.submit_rejected),
            "completed": float(self.completed),
            "failed": float(self.failed),
            "expired": float(self.expired),
            "retries": float(self.retries),
            "hedges": float(self.hedges),
            "hedge_wins": float(self.hedge_wins),
            "hedge_cancelled": float(self.hedge_cancelled),
            "healthy": float(self.healthy_count(now)),
        }
