"""The per-operation cost model: StageEvent -> simulated seconds.

Every event recorded by the models (:mod:`repro.nn.recorder`) is priced
here against a :class:`~repro.runtime.device.DeviceSpec`.  All prices
scale linearly with the batch size (batch elements are independent work
of the same shape), so speedups are batch-invariant; the paper's small
W1-vs-W2 asymmetry (Sec. 6.2, a batch-size effect of their CUDA
scheduler) is outside this model and noted in EXPERIMENTS.md.

Event count conventions: all size fields (``n_points``, ``n_queries``,
...) are *per batch element* with the batch size in ``batch``, except
``matmul`` whose ``rows``/``flops`` are whole-batch totals.

The ops fall into two families, mirroring the paper's Sec. 5:

- **exact ops** — ``fps`` (serial pick chain with per-step overhead),
  ``ball_query`` / ``knn`` (all-pairs distance scans, priced
  proportionally to the distance dimensionality), ``interp_exact``
  (full search over the sampled set);
- **approximate ops** — ``morton_gen`` (linear), ``morton_sort``
  (``N log N``, latency-bound on small arrays), ``uniform_pick`` /
  ``reuse`` (pure gathers), ``morton_window`` (``Q x W`` distance
  evaluations), ``interp_morton`` (4 candidate anchors per point,
  gather-latency dominated).
"""

from __future__ import annotations

import math
from typing import Dict

from repro.nn.recorder import StageEvent
from repro.runtime.device import DeviceSpec

#: The SOTA kernels EdgePC replaces.  The ``*_fast`` / ``*_grid``
#: variants are the same exact math behind pruning / cell-list
#: dispatch, so they belong to the exact family too.
EXACT_OPS = frozenset(
    {
        "fps",
        "fps_fast",
        "ball_query",
        "ball_query_grid",
        "knn",
        "knn_grid",
        "interp_exact",
    }
)

#: EdgePC's approximate kernels.
APPROX_OPS = frozenset(
    {
        "morton_gen",
        "morton_sort",
        "uniform_pick",
        "morton_window",
        "interp_morton",
        "reuse",
    }
)


class CostModel:
    """Prices stage events on a device."""

    def __init__(self, device: DeviceSpec) -> None:
        self.device = device

    # Individual op prices (seconds, per whole event) --------------------

    def _price_fps(self, c: Dict[str, float]) -> float:
        per_element = c["n_samples"] * (
            self.device.fps_step_overhead_s
            + c["n_points"] / self.device.fps_distance_rate
        )
        return c.get("batch", 1) * per_element

    def _price_fps_fast(self, c: Dict[str, float]) -> float:
        # Same serial pick chain as brute FPS, but only the distance
        # evaluations the pruning bound could not skip are paid.
        per_element = (
            c["n_samples"] * self.device.fps_step_overhead_s
            + c["points_scanned"] / self.device.fps_distance_rate
        )
        return c.get("batch", 1) * per_element

    def _price_grid_query(self, c: Dict[str, float]) -> float:
        # Cell-list build (a stable sort over small linearized cell
        # keys — far cheaper per key than the 60-bit Morton comparison
        # sort that ``sort_rate`` models) plus only the pairs the
        # expanding-ring probe actually scored.
        n = c["n_candidates"]
        build = (
            n * max(1.0, math.log2(max(n, 2))) / self.device.morton_rate
        )
        scan = c["pairs_scanned"] / self.device.brute_distance_rate
        return c.get("batch", 1) * (build + scan)

    def _price_pairwise(self, c: Dict[str, float]) -> float:
        dim_factor = max(1.0, c.get("dim", 3) / 3.0)
        work = c["n_queries"] * c["n_candidates"] * dim_factor
        return c.get("batch", 1) * work / self.device.brute_distance_rate

    def _price_interp_exact(self, c: Dict[str, float]) -> float:
        work = c["n_points"] * c["n_samples"]
        return c.get("batch", 1) * work / self.device.brute_distance_rate

    def _price_morton_gen(self, c: Dict[str, float]) -> float:
        return (
            c.get("batch", 1) * c["n_points"] / self.device.morton_rate
        )

    def _price_morton_sort(self, c: Dict[str, float]) -> float:
        n = c["n_points"]
        work = n * max(1.0, math.log2(max(n, 2)))
        per_element = max(
            self.device.sort_latency_floor_s,
            work / self.device.sort_rate,
        )
        return c.get("batch", 1) * per_element

    def _price_uniform_pick(self, c: Dict[str, float]) -> float:
        return (
            c.get("batch", 1) * c["n_samples"] / self.device.gather_rate
        )

    def _price_morton_window(self, c: Dict[str, float]) -> float:
        work = c["n_queries"] * c["window"]
        return c.get("batch", 1) * work / self.device.brute_distance_rate

    def _price_interp_morton(self, c: Dict[str, float]) -> float:
        # Four candidate anchors per point (Sec. 5.1.2), each costing a
        # gather-latency equivalent rather than one distance evaluation.
        work = c["n_points"] * 4.0 * self.device.interp_candidate_cost
        return c.get("batch", 1) * work / self.device.brute_distance_rate

    def _price_reuse(self, c: Dict[str, float]) -> float:
        work = c["n_queries"] * c["k"]
        return c.get("batch", 1) * work / self.device.gather_rate

    def _price_gather(self, c: Dict[str, float]) -> float:
        work = c["n_groups"] * c["k"] * c["channels"]
        rate = self.device.gather_rate
        if c.get("sorted"):
            rate *= self.device.sorted_gather_speedup
        return c.get("batch", 1) * work / rate

    def _price_matmul(
        self,
        c: Dict[str, float],
        use_tensor_cores: bool,
        merge_factor: float = 1.0,
    ) -> float:
        # Channel merging (Sec. 5.4.1) multiplies the effective input
        # channel width at equal FLOPs; grouped (per-neighborhood)
        # convs and pointwise convs benefit alike.
        return self.device.matmul_time(
            c["flops"], c.get("c_in", 0) * merge_factor,
            use_tensor_cores,
        )

    # Dispatch ------------------------------------------------------------

    def price(
        self,
        event: StageEvent,
        use_tensor_cores: bool = False,
        merge_factor: float = 1.0,
    ) -> float:
        """Simulated seconds for one event."""
        c = event.counts
        op = event.op
        if op == "fps":
            return self._price_fps(c)
        if op == "fps_fast":
            return self._price_fps_fast(c)
        if op in ("ball_query", "knn"):
            return self._price_pairwise(c)
        if op in ("ball_query_grid", "knn_grid"):
            return self._price_grid_query(c)
        if op == "interp_exact":
            return self._price_interp_exact(c)
        if op == "morton_gen":
            return self._price_morton_gen(c)
        if op == "morton_sort":
            return self._price_morton_sort(c)
        if op == "uniform_pick":
            return self._price_uniform_pick(c)
        if op == "morton_window":
            return self._price_morton_window(c)
        if op == "interp_morton":
            return self._price_interp_morton(c)
        if op == "reuse":
            return self._price_reuse(c)
        if op == "gather":
            return self._price_gather(c)
        if op == "matmul":
            return self._price_matmul(c, use_tensor_cores, merge_factor)
        raise ValueError(f"cost model has no price for op {op!r}")
