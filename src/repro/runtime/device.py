"""Edge-device model: an NVIDIA Jetson AGX Xavier-like specification.

The paper evaluates on a real Xavier board (512-core Volta GPU, 64
tensor cores, 16 GB LPDDR4x).  We replace the board with an analytic
model whose parameters are calibrated against the per-stage numbers the
paper reports:

- FPS sampling 40 256 -> 1 024 points: ~81.7 ms (Sec. 4.2);
- uniform sampling of the same model: ~1 ms (Sec. 4.2);
- Morton code generation for 8 192 points: ~0.1 ms (Sec. 5.1.2);
- compute power 4.5 W baseline vs 4.2 W with approximations; memory
  power 1.35 W -> 1.63 W when neighbor reuse is enabled (Sec. 6.2);
- a 32x1000x12x32 conv takes 40.4 ms with no tensor-core utilization
  and 18.3 ms at 40% utilization after channel merging (Sec. 5.4.1).

All throughput parameters are *effective* (achieved) rates, not peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Analytic model of an edge GPU.

    Attributes:
        fps_step_overhead_s: per-iteration serial overhead of FPS (the
            dependency chain between picks; dominates for small N).
        fps_distance_rate: distance evaluations/s inside one FPS pass.
        interp_candidate_cost: distance-evaluation-equivalents charged
            per candidate anchor in the Morton up-sampler (dominated by
            gather latency rather than arithmetic).
        brute_distance_rate: distance evaluations/s of the parallel
            brute-force kNN / ball-query kernels.
        morton_rate: Morton codes generated per second.
        sort_rate: sort key-operations (N log2 N) per second.
        sort_latency_floor_s: minimum latency of one sort launch per
            batch element — small-array GPU sorts are latency-bound,
            which is why re-structurizing the deeper (smaller) CNN
            levels barely pays off (Secs. 5.2.3, 6.3).
        gather_rate: gathered elements per second (grouping stage).
        sorted_gather_speedup: grouping-throughput gain when the index
            rows are pre-sorted (Sec. 5.4.2's traffic reduction).
        cuda_flops: effective FP32 FLOP/s on the CUDA cores.
        tensor_core_flops: effective FLOP/s on tensor cores at 100%
            utilization.
        tc_min_channels: below this input-channel count the tensor
            cores are not invoked at all (utilization 0, Sec. 5.4.1).
        tc_saturation_channels: channel count at which tensor-core
            utilization reaches ``tc_max_utilization``.
        tc_max_utilization: peak achievable tensor-core utilization.
        max_parallel_batches: how many batch elements the lightweight
            (approximate) kernels can process concurrently.
        compute_power_baseline_w / compute_power_approx_w: GPU power
            during the sample/neighbor stages, exact vs approximate.
        compute_power_fc_w: GPU power during feature compute.
        memory_power_w / memory_power_reuse_w: DRAM power, without and
            with the neighbor-reuse buffer live.
    """

    fps_step_overhead_s: float = 60e-6
    fps_distance_rate: float = 2.0e9
    brute_distance_rate: float = 4.0e9
    morton_rate: float = 8.0e7
    sort_rate: float = 1.8e7
    sort_latency_floor_s: float = 3.0e-3
    gather_rate: float = 2.0e9
    sorted_gather_speedup: float = 1.4
    cuda_flops: float = 1.0e11
    tensor_core_flops: float = 5.5e11
    tc_min_channels: int = 16
    tc_saturation_channels: int = 150
    tc_max_utilization: float = 0.5
    max_parallel_batches: int = 32
    compute_power_baseline_w: float = 4.5
    compute_power_approx_w: float = 4.2
    compute_power_fc_w: float = 6.0
    memory_power_w: float = 1.35
    memory_power_reuse_w: float = 1.63
    interp_candidate_cost: float = 48.0

    def __post_init__(self) -> None:
        for name in (
            "fps_distance_rate",
            "brute_distance_rate",
            "morton_rate",
            "sort_rate",
            "gather_rate",
            "cuda_flops",
            "tensor_core_flops",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.fps_step_overhead_s < 0:
            raise ValueError("fps_step_overhead_s must be non-negative")
        if self.max_parallel_batches < 1:
            raise ValueError("max_parallel_batches must be >= 1")
        if not 0 < self.tc_max_utilization <= 1:
            raise ValueError("tc_max_utilization must be in (0, 1]")
        if self.tc_min_channels < 1:
            raise ValueError("tc_min_channels must be >= 1")

    def tensor_core_utilization(self, in_channels: float) -> float:
        """Utilization as a function of the conv's input-channel width.

        Zero below ``tc_min_channels`` (the kernels are not dispatched
        to tensor cores at all), then ramping linearly up to
        ``tc_max_utilization`` at ``tc_saturation_channels`` — the
        behaviour the paper measures in Sec. 5.4.1.
        """
        if in_channels < self.tc_min_channels:
            return 0.0
        ramp = min(1.0, in_channels / self.tc_saturation_channels)
        return self.tc_max_utilization * ramp

    def matmul_time(
        self, flops: float, in_channels: float, use_tensor_cores: bool
    ) -> float:
        """Seconds to execute a conv/matmul of ``flops`` total work."""
        if flops < 0:
            raise ValueError("flops must be non-negative")
        if use_tensor_cores:
            utilization = self.tensor_core_utilization(in_channels)
            if utilization > 0:
                return flops / (self.tensor_core_flops * utilization)
        return flops / self.cuda_flops

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with some parameters replaced (sensitivity studies)."""
        return replace(self, **kwargs)


def xavier() -> DeviceSpec:
    """The default Jetson AGX Xavier-like device."""
    return DeviceSpec()
