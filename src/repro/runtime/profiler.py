"""Stage-level latency/energy profiling of recorded forward passes.

Converts a :class:`~repro.nn.recorder.StageRecorder` trace into the
per-stage breakdown, end-to-end latency, and energy the paper's
evaluation reports (Figs. 3, 9, 11, 13):

- latency per pipeline stage (sample, neighbor search, grouping,
  feature compute) and per layer;
- energy = Σ stage_time x stage_power + memory_power x total_time,
  with the paper's measured power levels (compute 4.5 W baseline vs
  4.2 W approximate; memory 1.35 W vs 1.63 W when reuse is cached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.pipeline import EdgePCConfig
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    StageRecorder,
)
from repro.runtime.cost import APPROX_OPS, CostModel
from repro.runtime.device import DeviceSpec, xavier


@dataclass(frozen=True)
class StageBreakdown:
    """Per-stage simulated latency (seconds) plus derived metrics.

    ``per_layer_s`` is insertion-ordered by recorder event: keys appear
    in the order each ``stage[layer]`` pair first occurred in the
    forward pass.  Exporters (trace files, run reports) rely on this,
    so identical runs produce byte-identical artifacts.
    """

    sample_s: float
    neighbor_s: float
    grouping_s: float
    feature_s: float
    per_layer_s: Dict[str, float] = field(default_factory=dict)

    @property
    def sample_and_neighbor_s(self) -> float:
        """The paper's 'SMP + NS' quantity."""
        return self.sample_s + self.neighbor_s

    @property
    def total_s(self) -> float:
        return (
            self.sample_s
            + self.neighbor_s
            + self.grouping_s
            + self.feature_s
        )

    @property
    def sample_and_neighbor_fraction(self) -> float:
        """Fraction of E2E latency in sample + neighbor search (the
        38-80% headline of Fig. 3)."""
        total = self.total_s
        if total == 0:
            return 0.0
        return self.sample_and_neighbor_s / total


@dataclass(frozen=True)
class EnergyReport:
    """Simulated energy (joules) split into compute and memory."""

    compute_j: float
    memory_j: float

    @property
    def total_j(self) -> float:
        return self.compute_j + self.memory_j


class PipelineProfiler:
    """Prices recorded traces under a device and an EdgePC config."""

    def __init__(self, device: Optional[DeviceSpec] = None) -> None:
        self.device = device or xavier()
        self._cost = CostModel(self.device)

    def breakdown(
        self, recorder: StageRecorder, config: EdgePCConfig
    ) -> StageBreakdown:
        """Per-stage latency of one recorded forward pass."""
        stage_times = {
            STAGE_SAMPLE: 0.0,
            STAGE_NEIGHBOR: 0.0,
            STAGE_GROUPING: 0.0,
            STAGE_FEATURE: 0.0,
        }
        per_layer: Dict[str, float] = {}
        for event in recorder:
            seconds = self._cost.price(
                event,
                use_tensor_cores=config.use_tensor_cores,
                merge_factor=getattr(config, "fc_merge_factor", 1),
            )
            stage_times[event.stage] += seconds
            key = f"{event.stage}[{event.layer}]"
            per_layer[key] = per_layer.get(key, 0.0) + seconds
        return StageBreakdown(
            sample_s=stage_times[STAGE_SAMPLE],
            neighbor_s=stage_times[STAGE_NEIGHBOR],
            grouping_s=stage_times[STAGE_GROUPING],
            feature_s=stage_times[STAGE_FEATURE],
            per_layer_s=per_layer,
        )

    def energy(
        self, recorder: StageRecorder, config: EdgePCConfig
    ) -> EnergyReport:
        """Energy of one recorded forward pass.

        Compute power differs between the exact and approximate
        sample/NS kernels; memory power rises when the reuse buffer is
        live (Sec. 6.2's tegrastats measurements).
        """
        compute_j = 0.0
        total_s = 0.0
        uses_reuse = False
        for event in recorder:
            seconds = self._cost.price(
                event,
                use_tensor_cores=config.use_tensor_cores,
                merge_factor=getattr(config, "fc_merge_factor", 1),
            )
            total_s += seconds
            if event.stage == STAGE_FEATURE:
                power = self.device.compute_power_fc_w
            elif event.op in APPROX_OPS:
                power = self.device.compute_power_approx_w
                if event.op == "reuse":
                    uses_reuse = True
            else:
                power = self.device.compute_power_baseline_w
            compute_j += seconds * power
        memory_power = (
            self.device.memory_power_reuse_w
            if uses_reuse
            else self.device.memory_power_w
        )
        return EnergyReport(
            compute_j=compute_j, memory_j=total_s * memory_power
        )


@dataclass(frozen=True)
class ComparisonReport:
    """Baseline-vs-EdgePC summary for one workload (Fig. 13 row)."""

    baseline: StageBreakdown
    optimized: StageBreakdown
    baseline_energy: EnergyReport
    optimized_energy: EnergyReport

    @property
    def sample_neighbor_speedup(self) -> float:
        return (
            self.baseline.sample_and_neighbor_s
            / self.optimized.sample_and_neighbor_s
        )

    @property
    def end_to_end_speedup(self) -> float:
        return self.baseline.total_s / self.optimized.total_s

    @property
    def energy_saving_fraction(self) -> float:
        base = self.baseline_energy.total_j
        if base == 0:
            return 0.0
        return 1.0 - self.optimized_energy.total_j / base


def compare(
    profiler: PipelineProfiler,
    baseline_recorder: StageRecorder,
    baseline_config: EdgePCConfig,
    optimized_recorder: StageRecorder,
    optimized_config: EdgePCConfig,
) -> ComparisonReport:
    """Build the Fig. 13-style comparison for one workload."""
    return ComparisonReport(
        baseline=profiler.breakdown(baseline_recorder, baseline_config),
        optimized=profiler.breakdown(optimized_recorder, optimized_config),
        baseline_energy=profiler.energy(
            baseline_recorder, baseline_config
        ),
        optimized_energy=profiler.energy(
            optimized_recorder, optimized_config
        ),
    )
