"""Edge-device simulation: device spec, cost model, profiler."""

from repro.runtime.cost import APPROX_OPS, EXACT_OPS, CostModel
from repro.runtime.device import DeviceSpec, xavier
from repro.runtime.profiler import (
    ComparisonReport,
    EnergyReport,
    PipelineProfiler,
    StageBreakdown,
    compare,
)

__all__ = [
    "DeviceSpec",
    "xavier",
    "CostModel",
    "EXACT_OPS",
    "APPROX_OPS",
    "PipelineProfiler",
    "StageBreakdown",
    "EnergyReport",
    "ComparisonReport",
    "compare",
]
