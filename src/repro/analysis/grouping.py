"""Grouping-stage memory-traffic model (paper Sec. 5.4.2).

The grouping stage gathers feature rows by a ``(n, k)`` index matrix.
The paper observes that simply *sorting each row* of the index matrix
makes consecutive GPU threads read nearby rows, cutting L2 traffic by
53.9% and DRAM traffic by 25.7%.

We reproduce the effect with a small two-level cache simulator: gathers
stream through a (set-associative LRU) L2 model in front of a DRAM
counter, with feature rows mapped onto cache lines.  The figures
produced are reads *from* L2 (i.e. L1-miss traffic into L2) and reads
from DRAM (L2 misses), matching the two percentages the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


class SetAssociativeCache:
    """A classic set-associative LRU cache over line addresses."""

    def __init__(
        self, num_sets: int, ways: int, line_bytes: int = 128
    ) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError("num_sets and ways must be positive")
        if line_bytes < 1:
            raise ValueError("line_bytes must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self.line_bytes = line_bytes
        # Per set: list of tags in LRU order (front = most recent).
        self._sets: List[List[int]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, byte_address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = byte_address // self.line_bytes
        index = line % self.num_sets
        tag = line // self.num_sets
        entries = self._sets[index]
        if tag in entries:
            entries.remove(tag)
            entries.insert(0, tag)
            self.hits += 1
            return True
        entries.insert(0, tag)
        if len(entries) > self.ways:
            entries.pop()
        self.misses += 1
        return False

    @property
    def capacity_bytes(self) -> int:
        return self.num_sets * self.ways * self.line_bytes


@dataclass(frozen=True)
class GatherTraffic:
    """Traffic produced by one simulated grouping gather."""

    l2_reads: int
    dram_reads: int


def simulate_gather(
    index_matrix: np.ndarray,
    feature_bytes_per_row: int = 32,
    warp_size: int = 32,
    l1_sets: int = 16,
    l1_ways: int = 2,
    l2_sets: int = 64,
    l2_ways: int = 4,
    line_bytes: int = 128,
) -> GatherTraffic:
    """Simulate the grouping gather's memory traffic.

    GPU thread layout follows the reference grouping kernel: thread
    ``t`` of a warp gathers *row* ``base + t``'s entry in *column*
    ``j`` — i.e. the kernel walks the index matrix column-major in
    warps of consecutive rows.  Three stages:

    1. **Coalescer** — a warp's simultaneous accesses falling on one
       cache line merge into a single transaction.
    2. **L1** (small, per-SM) — transactions that hit here never reach
       L2.  ``l2_reads`` counts the misses (reads *from* L2, the
       quantity the paper reports).
    3. **L2** — its misses are the ``dram_reads``.

    Per-row sorting helps (Sec. 5.4.2) because after sorting, column
    ``j`` holds each row's j-th smallest neighbor index: a warp's 32
    accesses land close together and collapse onto few lines, and
    consecutive warp-columns revisit lines still resident in L1/L2.
    """
    index_matrix = np.asarray(index_matrix)
    if index_matrix.ndim != 2:
        raise ValueError("index matrix must be (n, k)")
    if warp_size < 1:
        raise ValueError("warp_size must be positive")
    n_rows, k = index_matrix.shape
    l1 = SetAssociativeCache(l1_sets, l1_ways, line_bytes)
    l2 = SetAssociativeCache(l2_sets, l2_ways, line_bytes)
    l2_reads = 0
    dram_reads = 0
    for base in range(0, n_rows, warp_size):
        for column in range(k):
            rows = index_matrix[base : base + warp_size, column]
            addresses = rows.astype(np.int64) * feature_bytes_per_row
            lines = np.unique(addresses // line_bytes)
            for line in lines:
                address = int(line) * line_bytes
                if not l1.access(address):
                    l2_reads += 1
                    if not l2.access(address):
                        dram_reads += 1
    return GatherTraffic(l2_reads=l2_reads, dram_reads=dram_reads)


@dataclass(frozen=True)
class SortedGatherComparison:
    """Traffic reduction from sorting the index matrix rows."""

    unsorted: GatherTraffic
    sorted: GatherTraffic

    @property
    def l2_reduction(self) -> float:
        if self.unsorted.l2_reads == 0:
            return 0.0
        return 1.0 - self.sorted.l2_reads / self.unsorted.l2_reads

    @property
    def dram_reduction(self) -> float:
        if self.unsorted.dram_reads == 0:
            return 0.0
        return 1.0 - self.sorted.dram_reads / self.unsorted.dram_reads


def compare_sorted_gather(
    index_matrix: np.ndarray, **cache_kwargs
) -> SortedGatherComparison:
    """The Sec. 5.4.2 experiment: same gather, rows sorted ascending."""
    index_matrix = np.asarray(index_matrix)
    sorted_matrix = np.sort(index_matrix, axis=1)
    return SortedGatherComparison(
        unsorted=simulate_gather(index_matrix, **cache_kwargs),
        sorted=simulate_gather(sorted_matrix, **cache_kwargs),
    )


def duplicate_read_fraction(index_matrix: np.ndarray) -> float:
    """Fraction of gathered reads that re-fetch an already-read row —
    the sharing opportunity the paper motivates with ``nk > N``."""
    index_matrix = np.asarray(index_matrix)
    flat = index_matrix.reshape(-1)
    if flat.size == 0:
        return 0.0
    unique = np.unique(flat).size
    return 1.0 - unique / flat.size
