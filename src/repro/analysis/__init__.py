"""Analysis utilities: grouping-traffic simulation, tensor-core
channel-merge study, and report formatting."""

from repro.analysis.grouping import (
    GatherTraffic,
    SetAssociativeCache,
    SortedGatherComparison,
    compare_sorted_gather,
    duplicate_read_fraction,
    simulate_gather,
)
from repro.analysis.reports import (
    format_breakdown_row,
    format_comparison_row,
    format_layer_latencies,
    geometric_mean,
)
from repro.analysis.tensorcore import (
    MergePoint,
    merge_analysis,
    merge_split_error,
    merge_split_features,
)

__all__ = [
    "SetAssociativeCache",
    "GatherTraffic",
    "simulate_gather",
    "compare_sorted_gather",
    "SortedGatherComparison",
    "duplicate_read_fraction",
    "MergePoint",
    "merge_analysis",
    "merge_split_features",
    "merge_split_error",
    "format_breakdown_row",
    "format_comparison_row",
    "format_layer_latencies",
    "geometric_mean",
]
