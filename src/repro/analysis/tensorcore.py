"""Tensor-core channel-merging analysis (paper Sec. 5.4.1).

The paper observes a conv over a ``32 x 1000 x 12 x 32`` input with a
12-channel weight runs entirely on CUDA cores (40.4 ms, 0% tensor-core
utilization) because the channel dimension is below the dispatch
threshold; reshaping to ``32 x 100 x 120 x 32`` with a 120-channel
weight — merging ``t = 10`` neighboring positions into the channel
dimension — keeps the FLOP count identical but reaches 40% utilization
and 18.3 ms.

:func:`merge_analysis` reproduces the latency side with the device
model; :func:`merge_split_features` implements the actual merge/split
approximation on feature arrays (with the averaging split the paper
sketches), so its accuracy impact can be measured too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.runtime.device import DeviceSpec


@dataclass(frozen=True)
class MergePoint:
    """Latency/utilization at one merge factor."""

    merge_factor: int
    effective_channels: int
    utilization: float
    latency_s: float


def merge_analysis(
    device: DeviceSpec,
    rows: int,
    in_channels: int,
    out_channels: int,
    merge_factors=(1, 2, 4, 10, 16),
) -> list:
    """Latency of the same conv at several channel-merge factors.

    The FLOP count is invariant (merging multiplies channels by ``t``
    and divides positions by ``t``); only the tensor-core utilization
    changes with the effective channel width.
    """
    if rows < 1 or in_channels < 1 or out_channels < 1:
        raise ValueError("dimensions must be positive")
    flops = 2.0 * rows * in_channels * out_channels
    points = []
    for t in merge_factors:
        if t < 1 or rows % t:
            continue
        channels = in_channels * t
        points.append(
            MergePoint(
                merge_factor=t,
                effective_channels=channels,
                utilization=device.tensor_core_utilization(channels),
                latency_s=device.matmul_time(
                    flops, channels, use_tensor_cores=True
                ),
            )
        )
    if not points:
        raise ValueError("no valid merge factor divides the row count")
    return points


def merge_split_features(
    features: np.ndarray, weight: np.ndarray, merge_factor: int
) -> np.ndarray:
    """The merge-compute-split approximation on real arrays.

    Args:
        features: ``(N, C)`` per-point features, Morton-ordered so that
            consecutive rows are spatial neighbors.
        weight: ``(C, C_out)`` pointwise conv weight.
        merge_factor: ``t`` neighboring points merged per group.

    Returns:
        ``(N, C_out)`` approximate outputs: groups of ``t`` consecutive
        points share one conv evaluation over their concatenated
        features (weight block-replicated), split back by averaging.
    """
    features = np.asarray(features, dtype=np.float64)
    weight = np.asarray(weight, dtype=np.float64)
    n, c = features.shape
    if weight.shape[0] != c:
        raise ValueError("weight rows must match feature channels")
    if merge_factor < 1 or n % merge_factor:
        raise ValueError("merge_factor must divide the point count")
    t = merge_factor
    if t == 1:
        return features @ weight
    merged = features.reshape(n // t, t * c)  # (N/t, tC)
    # Block-replicated weight: each point's slice maps through the same
    # conv, then the group result is averaged over the t points.
    stacked = np.concatenate([weight] * t, axis=0) / t  # (tC, C_out)
    group_out = merged @ stacked  # (N/t, C_out): mean of member outputs
    return np.repeat(group_out, t, axis=0)


def merge_split_error(
    features: np.ndarray, weight: np.ndarray, merge_factor: int
) -> float:
    """Relative L2 error of the merge/split approximation vs the exact
    pointwise conv (how much model quality the trick risks)."""
    exact = np.asarray(features, dtype=np.float64) @ np.asarray(
        weight, dtype=np.float64
    )
    approx = merge_split_features(features, weight, merge_factor)
    denom = np.linalg.norm(exact)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(approx - exact) / denom)
