"""Text report formatters for the experiment harness.

Every benchmark prints its results through these helpers so the rows
match the paper's tables/figures and are easy to diff against
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.runtime.profiler import ComparisonReport, StageBreakdown


def format_breakdown_row(name: str, breakdown: StageBreakdown) -> str:
    """One Fig. 3-style row: stage shares of the E2E latency."""
    total = breakdown.total_s
    if total == 0:
        return f"{name:<22}(empty trace)"
    sn = breakdown.sample_and_neighbor_s / total * 100
    grouping = breakdown.grouping_s / total * 100
    feature = breakdown.feature_s / total * 100
    return (
        f"{name:<22}total {total * 1e3:9.2f} ms | "
        f"sample+NS {sn:5.1f}% | grouping {grouping:5.1f}% | "
        f"feature {feature:5.1f}%"
    )


def format_comparison_row(name: str, report: ComparisonReport) -> str:
    """One Fig. 13-style row: speedups and energy saving."""
    return (
        f"{name:<6}S+N {report.sample_neighbor_speedup:5.2f}x | "
        f"E2E {report.end_to_end_speedup:5.2f}x | "
        f"energy saved {report.energy_saving_fraction * 100:5.1f}%"
    )


def format_layer_latencies(
    per_layer_s: Dict[str, float], keys: Sequence[str]
) -> str:
    """Fig. 9/11-style per-layer latency listing (milliseconds)."""
    lines = []
    for key in keys:
        value = per_layer_s.get(key, 0.0)
        lines.append(f"  {key:<22}{value * 1e3:9.3f} ms")
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geomean, the conventional average for speedup summaries."""
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
