"""NumPy deep-learning substrate: autograd, layers, optimizers, and the
PointNet++ / DGCNN reproductions."""

from repro.nn.autograd import Tensor, concatenate, maximum, no_grad, stack
from repro.nn.dgcnn import DGCNNClassifier, DGCNNSegmentation, EdgeConv
from repro.nn.layers import (
    BatchNorm,
    Dropout,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    shared_mlp,
)
from repro.nn.losses import accuracy, cross_entropy, log_softmax, softmax
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.pointnet import PointNetClassifier, PointNetSegmentation
from repro.nn.pointnet2 import (
    DEFAULT_SA_CONFIGS,
    FeaturePropagation,
    PointNet2Classifier,
    PointNet2Segmentation,
    SAConfig,
    SetAbstraction,
)
from repro.nn.serialization import load_checkpoint, save_checkpoint
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    NullRecorder,
    StageEvent,
    StageRecorder,
)

__all__ = [
    "Tensor",
    "no_grad",
    "concatenate",
    "stack",
    "maximum",
    "Module",
    "Linear",
    "BatchNorm",
    "ReLU",
    "LeakyReLU",
    "Dropout",
    "Sequential",
    "shared_mlp",
    "cross_entropy",
    "accuracy",
    "log_softmax",
    "softmax",
    "SGD",
    "Adam",
    "StepLR",
    "SAConfig",
    "DEFAULT_SA_CONFIGS",
    "SetAbstraction",
    "FeaturePropagation",
    "PointNet2Segmentation",
    "PointNetClassifier",
    "PointNetSegmentation",
    "PointNet2Classifier",
    "EdgeConv",
    "DGCNNClassifier",
    "DGCNNSegmentation",
    "StageRecorder",
    "save_checkpoint",
    "load_checkpoint",
    "NullRecorder",
    "StageEvent",
    "STAGE_SAMPLE",
    "STAGE_NEIGHBOR",
    "STAGE_GROUPING",
    "STAGE_FEATURE",
]
