"""Model checkpointing: save/load state dicts to disk.

Checkpoints are a single ``.npz`` holding the parameter arrays plus a
``__meta__`` JSON blob (library version, parameter names) so loading
can fail loudly on mismatches instead of silently mis-assigning
weights.  BatchNorm running statistics are included — they are state,
not parameters, and eval-mode accuracy depends on them.
"""

from __future__ import annotations

import json
from typing import Dict

import numpy as np

from repro.nn.layers import BatchNorm, Module

_META_KEY = "__meta__"
_RUNNING_PREFIX = "__running__."


def _running_stats(model: Module) -> Dict[str, np.ndarray]:
    stats: Dict[str, np.ndarray] = {}
    for index, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm):
            stats[f"{_RUNNING_PREFIX}{index}.mean"] = (
                module.running_mean
            )
            stats[f"{_RUNNING_PREFIX}{index}.var"] = module.running_var
    return stats


def _load_running_stats(
    model: Module, arrays: Dict[str, np.ndarray]
) -> None:
    for index, module in enumerate(model.modules()):
        if isinstance(module, BatchNorm):
            mean_key = f"{_RUNNING_PREFIX}{index}.mean"
            var_key = f"{_RUNNING_PREFIX}{index}.var"
            if mean_key in arrays:
                module.running_mean = np.asarray(
                    arrays[mean_key], dtype=np.float64
                )
                module.running_var = np.asarray(
                    arrays[var_key], dtype=np.float64
                )


def save_checkpoint(model: Module, path: str) -> None:
    """Write the model's parameters and BatchNorm stats to ``path``."""
    from repro import __version__

    state = model.state_dict()
    meta = {
        "library_version": __version__,
        "parameter_names": sorted(state),
        "num_parameters": int(model.num_parameters()),
    }
    arrays = dict(state)
    arrays.update(_running_stats(model))
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode(), dtype=np.uint8
    )
    np.savez(path, **arrays)


def load_checkpoint(model: Module, path: str) -> Dict[str, object]:
    """Load a checkpoint into ``model``; returns the metadata.

    Raises ``KeyError``/``ValueError`` on any name or shape mismatch
    (delegated to :meth:`Module.load_state_dict`).
    """
    with np.load(path) as data:
        arrays = {key: data[key] for key in data.files}
    if _META_KEY not in arrays:
        raise ValueError(f"{path}: not a repro checkpoint (no meta)")
    meta = json.loads(bytes(arrays.pop(_META_KEY)).decode())
    running = {
        key: value
        for key, value in arrays.items()
        if key.startswith(_RUNNING_PREFIX)
    }
    state = {
        key: value
        for key, value in arrays.items()
        if not key.startswith(_RUNNING_PREFIX)
    }
    model.load_state_dict(state)
    _load_running_stats(model, running)
    return meta
