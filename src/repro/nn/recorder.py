"""Stage recording: the bridge between model forward passes and the
edge-device cost model.

Models emit one :class:`StageEvent` per priced operation (an FPS call,
a kNN search, a grouping gather, a shared-MLP matmul ...).  The
:mod:`repro.runtime` cost model then converts the recorded operation
counts into simulated edge-GPU latency and energy, which is how the
latency-breakdown and speedup experiments (Figs. 3, 9, 11, 13) are
regenerated without the Jetson board.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

#: Stage names used across the library (paper Fig. 3's breakdown).
STAGE_SAMPLE = "sample"
STAGE_NEIGHBOR = "neighbor_search"
STAGE_GROUPING = "grouping"
STAGE_FEATURE = "feature_compute"

VALID_STAGES = frozenset(
    {STAGE_SAMPLE, STAGE_NEIGHBOR, STAGE_GROUPING, STAGE_FEATURE}
)


@dataclass(frozen=True)
class StageEvent:
    """One priced operation.

    Attributes:
        stage: one of :data:`VALID_STAGES`.
        op: operation name the cost model dispatches on
            (e.g. ``"fps"``, ``"knn"``, ``"morton_sort"``).
        layer: the module index the op ran in (for per-layer plots).
        counts: operation-size parameters (``n``, ``N``, ``k``, ``flops``
            ...), consumed by :mod:`repro.runtime.cost`.
    """

    stage: str
    op: str
    layer: int
    counts: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.stage not in VALID_STAGES:
            raise ValueError(f"unknown stage {self.stage!r}")
        if self.layer < 0:
            raise ValueError("layer must be non-negative")


class StageRecorder:
    """Accumulates :class:`StageEvent` objects during a forward pass."""

    def __init__(self) -> None:
        self.events: List[StageEvent] = []

    def record(
        self, stage: str, op: str, layer: int, **counts: float
    ) -> None:
        self.events.append(StageEvent(stage, op, layer, dict(counts)))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[StageEvent]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()

    def events_for_stage(self, stage: str) -> List[StageEvent]:
        return [e for e in self.events if e.stage == stage]

    def events_for_layer(self, layer: int) -> List[StageEvent]:
        return [e for e in self.events if e.layer == layer]

    def op_names(self) -> List[str]:
        return sorted({e.op for e in self.events})


class NullRecorder(StageRecorder):
    """A recorder that drops everything (zero overhead bookkeeping)."""

    def record(self, stage: str, op: str, layer: int, **counts) -> None:
        pass
