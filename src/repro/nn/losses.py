"""Loss functions for the classification / segmentation heads."""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(
        logits.data.max(axis=axis, keepdims=True)
    )
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    return log_softmax(logits, axis).exp()


def cross_entropy(
    logits: Tensor, targets: np.ndarray, label_smoothing: float = 0.0
) -> Tensor:
    """Mean cross entropy between ``(..., C)`` logits and integer targets.

    Leading axes are flattened, so the same call handles ``(B, C)``
    classification logits and ``(B, N, C)`` per-point segmentation
    logits with ``(B, N)`` labels.
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise ValueError(
            f"target shape {targets.shape} does not match logit "
            f"batch shape {logits.shape[:-1]}"
        )
    if not 0 <= label_smoothing < 1:
        raise ValueError("label_smoothing must be in [0, 1)")
    num_classes = logits.shape[-1]
    if targets.min() < 0 or targets.max() >= num_classes:
        raise ValueError("target label out of range")
    log_probs = log_softmax(logits, axis=-1)
    flat = log_probs.reshape(-1, num_classes)
    rows = np.arange(flat.shape[0])
    picked = flat[(rows, targets.reshape(-1))]
    nll = -picked.mean()
    if label_smoothing == 0.0:
        return nll
    smooth = -flat.mean()
    return (1.0 - label_smoothing) * nll + label_smoothing * smooth


def accuracy(logits: Tensor, targets: np.ndarray) -> float:
    """Fraction of correct argmax predictions (any leading shape)."""
    targets = np.asarray(targets)
    predictions = logits.data.argmax(axis=-1)
    if predictions.shape != targets.shape:
        raise ValueError("prediction/target shape mismatch")
    return float((predictions == targets).mean())
