"""Neural-network layers over the autograd engine.

The layer set matches what PointNet++ and DGCNN need: pointwise shared
MLPs (1x1 convolutions), batch normalization, dropout, and the usual
activations.  All layers treat the *last* axis as the channel axis, so
the same ``Linear`` applies to ``(B, C)`` logits, ``(B, N, C)`` point
features, and ``(B, N, k, C)`` grouped neighborhoods — which is exactly
the "shared MLP" structure of the original networks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.autograd import Tensor


class Module:
    """Base class: parameter registry, train/eval mode, state dicts."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # Registry ----------------------------------------------------------

    def register_parameter(self, name: str, value: Tensor) -> Tensor:
        value.requires_grad = True
        self._parameters[name] = value
        return value

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    def parameters(self) -> Iterator[Tensor]:
        yield from self._parameters.values()
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # Modes -------------------------------------------------------------

    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # Serialization -----------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {
            name: param.data.copy()
            for name, param in self.named_parameters()
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {param.data.shape}"
                )
            param.data = value.copy()

    # Calling -----------------------------------------------------------

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Linear(Module):
    """Affine map on the last axis: ``y = x W + b``.

    Applied to higher-rank inputs this is the shared MLP / 1x1
    convolution of PointNet-family networks.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("feature counts must be positive")
        rng = rng or np.random.default_rng(0)
        # Kaiming-uniform fan-in init, as in the PyTorch originals.
        bound = np.sqrt(6.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight",
            Tensor(rng.uniform(-bound, bound, (in_features, out_features))),
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(np.zeros(out_features))
            )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input channels, "
                f"got {x.shape[-1]}"
            )
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm(Module):
    """Batch normalization over the channel (last) axis.

    Statistics are computed across every non-channel axis, which for
    ``(B, N, C)`` point features matches BatchNorm1d in the reference
    implementations.  Running statistics are kept for eval mode.
    """

    def __init__(
        self, num_features: int, momentum: float = 0.1, eps: float = 1e-5
    ) -> None:
        super().__init__()
        if num_features < 1:
            raise ValueError("num_features must be positive")
        if not 0 < momentum <= 1:
            raise ValueError("momentum must be in (0, 1]")
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.register_parameter(
            "gamma", Tensor(np.ones(num_features))
        )
        self.beta = self.register_parameter(
            "beta", Tensor(np.zeros(num_features))
        )
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.shape[-1]}"
            )
        axes = tuple(range(x.ndim - 1))
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=axes, keepdims=True)
            self.running_mean = (
                (1 - self.momentum) * self.running_mean
                + self.momentum * mean.data.reshape(-1)
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var
                + self.momentum * var.data.reshape(-1)
            )
            normalized = centered * (var + self.eps) ** -0.5
        else:
            normalized = (x - self.running_mean) * (
                self.running_var + self.eps
            ) ** -0.5
        return normalized * self.gamma + self.beta


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(
        self, p: float = 0.5, rng: Optional[np.random.Generator] = None
    ) -> None:
        super().__init__()
        if not 0 <= p < 1:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0:
            return x
        keep = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(keep)


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers: List[Module] = []
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)
            self.layers.append(layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


def shared_mlp(
    channels: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    batch_norm: bool = True,
    activation: str = "relu",
    final_activation: bool = True,
) -> Sequential:
    """Build the PointNet-style shared MLP: Linear -> BN -> activation
    per stage.

    Args:
        channels: e.g. ``[in, 64, 128]`` builds two stages.
        activation: ``"relu"`` (PointNet++) or ``"leaky_relu"`` (DGCNN).
        final_activation: whether the last stage gets BN + activation.
    """
    if len(channels) < 2:
        raise ValueError("need at least input and output channel counts")
    if activation not in ("relu", "leaky_relu"):
        raise ValueError(f"unknown activation {activation!r}")
    rng = rng or np.random.default_rng(0)
    layers: List[Module] = []
    last = len(channels) - 2
    for i, (c_in, c_out) in enumerate(zip(channels[:-1], channels[1:])):
        layers.append(Linear(c_in, c_out, rng=rng))
        if i < last or final_activation:
            if batch_norm:
                layers.append(BatchNorm(c_out))
            layers.append(
                ReLU() if activation == "relu" else LeakyReLU()
            )
    return Sequential(*layers)
