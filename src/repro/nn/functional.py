"""Point-cloud-specific tensor ops: batched gathers and grouping.

The *grouping* stage (paper Sec. 5.4.2) turns a ``(B, N, C)`` feature
map and a ``(B, n, k)`` neighbor-index matrix into the ``(B, n, k, C)``
matrix the shared MLPs convolve.  Index *computation* (sampling,
neighbor search) happens outside autograd in plain NumPy; these ops
carry gradients through the gathers themselves.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor, concatenate


def _check_batched(features: Tensor, indices: np.ndarray) -> np.ndarray:
    indices = np.asarray(indices)
    if features.ndim != 3:
        raise ValueError(f"features must be (B, N, C), got {features.shape}")
    if indices.shape[0] != features.shape[0]:
        raise ValueError("batch sizes differ between features and indices")
    if indices.min() < 0 or indices.max() >= features.shape[1]:
        raise ValueError("index out of range")
    return indices


def gather_points(features: Tensor, indices: np.ndarray) -> Tensor:
    """Gather ``(B, n, C)`` rows out of ``(B, N, C)`` by ``(B, n)``."""
    indices = _check_batched(features, indices)
    if indices.ndim != 2:
        raise ValueError(f"indices must be (B, n), got {indices.shape}")
    batch = np.arange(indices.shape[0])[:, None]
    return features[(batch, indices)]


def group_points(features: Tensor, indices: np.ndarray) -> Tensor:
    """Gather ``(B, n, k, C)`` neighborhoods out of ``(B, N, C)`` by
    ``(B, n, k)`` — the grouping stage."""
    indices = _check_batched(features, indices)
    if indices.ndim != 3:
        raise ValueError(f"indices must be (B, n, k), got {indices.shape}")
    batch = np.arange(indices.shape[0])[:, None, None]
    return features[(batch, indices)]


def relative_neighborhoods(
    xyz: np.ndarray, center_indices: np.ndarray, neighbor_indices: np.ndarray
) -> np.ndarray:
    """Neighbor coordinates relative to their center: ``(B, n, k, 3)``.

    This is the geometric input channel every SA module prepends to the
    grouped features (PointNet++ convention).  Pure data — no gradient
    flows into coordinates.
    """
    xyz = np.asarray(xyz, dtype=np.float64)
    center_indices = np.asarray(center_indices)
    neighbor_indices = np.asarray(neighbor_indices)
    if xyz.ndim != 3 or xyz.shape[2] != 3:
        raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
    batch = np.arange(xyz.shape[0])[:, None, None]
    neighbors = xyz[batch, neighbor_indices]  # (B, n, k, 3)
    centers = xyz[np.arange(xyz.shape[0])[:, None], center_indices]
    return neighbors - centers[:, :, None, :]


def max_pool_neighbors(grouped: Tensor) -> Tensor:
    """Max over the neighbor axis: ``(B, n, k, C) -> (B, n, C)``.

    The symmetric aggregation at the heart of PointNet-family models.
    """
    if grouped.ndim != 4:
        raise ValueError(f"expected (B, n, k, C), got {grouped.shape}")
    return grouped.max(axis=2)


def edge_features(
    features: Tensor, neighbor_indices: np.ndarray
) -> Tensor:
    """DGCNN edge features: ``[x_i, x_j - x_i]`` per edge.

    Input ``(B, N, C)`` and indices ``(B, N, k)``; output
    ``(B, N, k, 2C)``.
    """
    if features.ndim != 3:
        raise ValueError(f"features must be (B, N, C), got {features.shape}")
    grouped = group_points(features, neighbor_indices)  # (B, N, k, C)
    k = neighbor_indices.shape[2]
    center = features.expand_dims(2).broadcast_to(
        (features.shape[0], features.shape[1], k, features.shape[2])
    )
    return concatenate([center, grouped - center], axis=3)
