"""The original PointNet (Qi et al., CVPR 2017 — the paper's [47]).

PointNet is the ancestor of the evaluated pipelines: a per-point
shared MLP followed by a global max pool, with no sampling or neighbor
search at all.  It is included to complete the model family and as the
natural control in experiments — since it has neither bottleneck
stage, EdgePC's approximations are no-ops for it, which the tests
assert (its stage trace contains only feature-compute events).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.autograd import Tensor, concatenate
from repro.nn.layers import Dropout, Linear, Module, shared_mlp
from repro.nn.recorder import (
    STAGE_FEATURE,
    NullRecorder,
    StageRecorder,
)


class PointNetClassifier(Module):
    """PointNet classification: shared MLP -> global max -> MLP head."""

    def __init__(
        self,
        num_classes: int,
        mlp_channels: Sequence[int] = (32, 32, 64),
        head_hidden: int = 32,
        dropout: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_classes = num_classes
        channels = (3,) + tuple(mlp_channels)
        self.mlp_channels = channels
        self.mlp = shared_mlp(channels, rng=rng)
        self.head_hidden = Linear(channels[-1], head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-cloud logits ``(B, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
        recorder = NullRecorder() if recorder is None else recorder
        batch, n_points, _ = xyz.shape
        features = self.mlp(Tensor(xyz))
        for c_in, c_out in zip(
            self.mlp_channels[:-1], self.mlp_channels[1:]
        ):
            recorder.record(
                STAGE_FEATURE, "matmul", 0,
                rows=batch * n_points, c_in=c_in, c_out=c_out,
                flops=2.0 * batch * n_points * c_in * c_out,
            )
        pooled = features.max(axis=1)
        hidden = self.head_hidden(pooled).relu()
        hidden = self.head_dropout(hidden)
        logits = self.head_out(hidden)
        recorder.record(
            STAGE_FEATURE, "matmul", 1,
            rows=batch,
            c_in=self.head_hidden.in_features,
            c_out=self.num_classes,
            flops=2.0 * batch * (
                self.head_hidden.in_features
                * self.head_hidden.out_features
                + self.head_hidden.out_features * self.num_classes
            ),
        )
        return logits


class PointNetSegmentation(Module):
    """PointNet segmentation: per-point features concatenated with the
    tiled global feature, then a per-point head (the original paper's
    segmentation network shape)."""

    def __init__(
        self,
        num_classes: int,
        mlp_channels: Sequence[int] = (32, 32, 64),
        head_hidden: int = 32,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_classes = num_classes
        channels = (3,) + tuple(mlp_channels)
        self.mlp_channels = channels
        self.mlp = shared_mlp(channels, rng=rng)
        head_in = 2 * channels[-1]  # per-point + tiled global
        self.head_hidden = Linear(head_in, head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-point logits ``(B, N, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
        recorder = NullRecorder() if recorder is None else recorder
        batch, n_points, _ = xyz.shape
        per_point = self.mlp(Tensor(xyz))
        for c_in, c_out in zip(
            self.mlp_channels[:-1], self.mlp_channels[1:]
        ):
            recorder.record(
                STAGE_FEATURE, "matmul", 0,
                rows=batch * n_points, c_in=c_in, c_out=c_out,
                flops=2.0 * batch * n_points * c_in * c_out,
            )
        global_feature = per_point.max(axis=1, keepdims=True)
        tiled = global_feature.broadcast_to(
            (batch, n_points, per_point.shape[2])
        )
        merged = concatenate([per_point, tiled], axis=2)
        hidden = self.head_hidden(merged).relu()
        hidden = self.head_dropout(hidden)
        logits = self.head_out(hidden)
        recorder.record(
            STAGE_FEATURE, "matmul", 1,
            rows=batch * n_points,
            c_in=self.head_hidden.in_features,
            c_out=self.num_classes,
            flops=2.0 * batch * n_points * (
                self.head_hidden.in_features
                * self.head_hidden.out_features
                + self.head_hidden.out_features * self.num_classes
            ),
        )
        return logits
