"""Optimizers: SGD with momentum and Adam (what the originals train
with), plus a step-decay LR schedule."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.autograd import Tensor


class Optimizer:
    """Base: holds the parameter list and the shared step/zero API."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """SGD with classical momentum and optional L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += grad
            param.data = param.data - self.lr * velocity


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (
                np.sqrt(v_hat) + self.eps
            )


class StepLR:
    """Multiply the optimizer's LR by ``gamma`` every ``step_size``
    epochs (the schedule PointNet++ training uses)."""

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.7
    ) -> None:
        if step_size < 1:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
