"""PointNet++ (Qi et al., NeurIPS 2017) over the NumPy substrate.

The architecture follows the paper's Fig. 2a: a stack of SetAbstraction
(SA) modules that down-sample and aggregate local neighborhoods,
mirrored by FeaturePropagation (FP) modules that interpolate features
back up, with skip connections between matching levels, and a per-point
segmentation head (or a global classification head).

EdgePC integration: each SA/FP module consults an
:class:`~repro.core.pipeline.EdgePCConfig` to decide whether its
sampling, neighbor-search, and interpolation stages run the exact SOTA
kernels (FPS / ball query / full 3-NN interpolation) or the Morton
approximations.  Every priced operation is reported to a
:class:`~repro.nn.recorder.StageRecorder`, which the runtime package
converts into simulated edge-GPU latency/energy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batched import BatchedSampleResult
from repro.core.neighbor import MortonNeighborSearch
from repro.core.pipeline import EdgePCConfig
from repro.core.sampler import (
    MortonSampler,
    MortonUpsampler,
    exact_interpolate,
)
from repro.core.workspace import Workspace
from repro.neighbors.batched import (
    ball_query_batch,
    ball_query_grid_batch,
)
from repro.neighbors.grid import GridQueryStats
from repro.nn.autograd import Tensor, concatenate
from repro.nn.functional import (
    gather_points,
    group_points,
    max_pool_neighbors,
    relative_neighborhoods,
)
from repro.nn.layers import Dropout, Linear, Module, shared_mlp
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    STAGE_NEIGHBOR,
    STAGE_SAMPLE,
    NullRecorder,
    StageRecorder,
)
from repro.sampling.fps import (
    FastFpsStats,
    farthest_point_sample_batch,
    farthest_point_sample_fast_batch,
)


@dataclass(frozen=True)
class SAConfig:
    """Hyper-parameters of one SetAbstraction module.

    Attributes:
        ratio: down-sampling ratio (``n = max(1, N * ratio)``).
        k: neighbors grouped per sampled point.
        radius: ball-query radius of the exact searcher.
        mlp: shared-MLP output channels (input inferred).
    """

    ratio: float
    k: int
    radius: float
    mlp: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not 0 < self.ratio <= 1:
            raise ValueError("ratio must be in (0, 1]")
        if self.k < 1:
            raise ValueError("k must be positive")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if not self.mlp:
            raise ValueError("mlp must have at least one stage")


#: A compact PointNet++(s) configuration: 4 SA levels that each keep a
#: quarter of the points, as in the original semantic-segmentation net.
DEFAULT_SA_CONFIGS = (
    SAConfig(0.25, 16, 0.1, (16, 16, 32)),
    SAConfig(0.25, 16, 0.2, (32, 32, 64)),
    SAConfig(0.25, 16, 0.4, (64, 64, 128)),
    SAConfig(0.25, 16, 0.8, (128, 128, 256)),
)


def _record_matmuls(
    recorder: StageRecorder,
    layer: int,
    mlp_channels: Sequence[int],
    rows: int,
) -> None:
    """Price each Linear stage of a shared MLP for the cost model."""
    for c_in, c_out in zip(mlp_channels[:-1], mlp_channels[1:]):
        recorder.record(
            STAGE_FEATURE,
            "matmul",
            layer,
            rows=rows,
            c_in=c_in,
            c_out=c_out,
            flops=2.0 * rows * c_in * c_out,
        )


@dataclass
class _LevelState:
    """Forward-pass bookkeeping for one resolution level."""

    xyz: np.ndarray  # (B, N_l, 3)
    features: Tensor  # (B, N_l, C_l)
    sample_result: Optional[BatchedSampleResult] = None
    sampled_indices: Optional[np.ndarray] = None  # (B, n) into parent


class SetAbstraction(Module):
    """One SA module: sample -> neighbor search -> group -> MLP -> pool."""

    def __init__(
        self,
        layer_index: int,
        in_channels: int,
        config: SAConfig,
        edgepc: EdgePCConfig,
        rng: Optional[np.random.Generator] = None,
        workspace: Optional[Workspace] = None,
    ) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.config = config
        self.edgepc = edgepc
        # +3 for the relative xyz channel prepended to grouped features.
        channels = (in_channels + 3,) + tuple(config.mlp)
        self.mlp_channels = channels
        self.mlp = shared_mlp(channels, rng=rng)
        self.out_channels = channels[-1]
        self._morton_sampler = MortonSampler(edgepc.code_bits)
        self.workspace = workspace or Workspace()

    # Index computation (NumPy, outside autograd) -----------------------

    def _sample(
        self, xyz: np.ndarray, recorder: StageRecorder
    ) -> Tuple[np.ndarray, Optional[BatchedSampleResult]]:
        batch, n_points, _ = xyz.shape
        n_out = max(1, int(round(n_points * self.config.ratio)))
        if self.edgepc.uses_morton_sampling(self.layer_index):
            result: Optional[BatchedSampleResult] = (
                self._morton_sampler.sample_batch(xyz, n_out)
            )
            indices = result.indices
            recorder.record(
                STAGE_SAMPLE, "morton_gen", self.layer_index,
                n_points=n_points, batch=batch,
            )
            recorder.record(
                STAGE_SAMPLE, "morton_sort", self.layer_index,
                n_points=n_points, batch=batch,
            )
            recorder.record(
                STAGE_SAMPLE, "uniform_pick", self.layer_index,
                n_samples=n_out, batch=batch,
            )
        elif self.edgepc.exact_engine_for(n_points) == "fast":
            # Large-N exact path: pruning FPS, bit-identical picks.
            result = None
            stats = FastFpsStats()
            indices = farthest_point_sample_fast_batch(
                xyz, n_out, start_index=0, stats=stats
            )
            recorder.record(
                STAGE_SAMPLE, "fps_fast", self.layer_index,
                n_points=n_points, n_samples=n_out, batch=batch,
                points_scanned=stats.points_scanned / batch,
                blocks_applied=stats.block_updates_applied / batch,
                blocks_pruned=stats.block_updates_pruned / batch,
                worst_case=stats.worst_case / batch,
            )
        else:
            result = None
            indices = farthest_point_sample_batch(
                xyz, n_out, start_index=0
            )
            recorder.record(
                STAGE_SAMPLE, "fps", self.layer_index,
                n_points=n_points, n_samples=n_out, batch=batch,
            )
        return indices, result

    def _neighbors(
        self,
        xyz: np.ndarray,
        sampled: np.ndarray,
        sample_result: Optional[BatchedSampleResult],
        recorder: StageRecorder,
    ) -> np.ndarray:
        batch, n_points, _ = xyz.shape
        n_out = sampled.shape[1]
        k = self.config.k
        if self.edgepc.uses_morton_neighbors(self.layer_index):
            window = min(n_points, self.edgepc.window_for(k))
            searcher = MortonNeighborSearch(
                k, window, self.edgepc.code_bits, self.workspace
            )
            if sample_result is not None:
                # Reuse the sampler's Morton codes (Sec. 5.2.3).
                out = searcher.search_batch(
                    xyz, sampled, sample_result.order
                )
            else:
                out = searcher.search_batch(xyz, sampled)
                recorder.record(
                    STAGE_NEIGHBOR, "morton_gen", self.layer_index,
                    n_points=n_points, batch=batch,
                )
                recorder.record(
                    STAGE_NEIGHBOR, "morton_sort", self.layer_index,
                    n_points=n_points, batch=batch,
                )
            recorder.record(
                STAGE_NEIGHBOR, "morton_window", self.layer_index,
                n_queries=n_out, window=window, k=k, batch=batch,
            )
        elif self.edgepc.exact_engine_for(n_points) == "fast":
            # Large-N exact path: grid cell-list ball query, identical
            # output rows.
            centers = np.take_along_axis(
                xyz, sampled[:, :, None], axis=1
            )
            stats = GridQueryStats()
            out = ball_query_grid_batch(
                centers, xyz, self.config.radius, k,
                workspace=self.workspace, stats=stats,
            )
            recorder.record(
                STAGE_NEIGHBOR, "ball_query_grid", self.layer_index,
                n_queries=n_out, n_candidates=n_points, k=k, batch=batch,
                pairs_scanned=stats.pairs_scanned / batch,
                rounds=stats.rounds,
            )
        else:
            centers = np.take_along_axis(
                xyz, sampled[:, :, None], axis=1
            )
            out = ball_query_batch(
                centers, xyz, self.config.radius, k, self.workspace
            )
            recorder.record(
                STAGE_NEIGHBOR, "ball_query", self.layer_index,
                n_queries=n_out, n_candidates=n_points, k=k, batch=batch,
            )
        return out

    # Forward ------------------------------------------------------------

    def forward(
        self,
        xyz: np.ndarray,
        features: Tensor,
        recorder: Optional[StageRecorder] = None,
    ) -> Tuple[np.ndarray, Tensor, _LevelState]:
        """Run the module.

        Args:
            xyz: ``(B, N, 3)`` input coordinates (data, not Tensor).
            features: ``(B, N, C)`` input features.
            recorder: optional stage recorder.

        Returns:
            ``(new_xyz, new_features, state)`` where ``state`` carries
            the sample results the matching FP module may reuse.
        """
        recorder = NullRecorder() if recorder is None else recorder
        sampled, sample_result = self._sample(xyz, recorder)
        neighbor_idx = self._neighbors(
            xyz, sampled, sample_result, recorder
        )
        if self.edgepc.sorted_grouping:
            # Sec. 5.4.2: row-sorting is a no-op for the max-pooled
            # aggregation but coalesces the gather's memory accesses.
            neighbor_idx = np.sort(neighbor_idx, axis=-1)
        batch, n_out, k = neighbor_idx.shape
        rel = relative_neighborhoods(xyz, sampled, neighbor_idx)
        grouped = group_points(features, neighbor_idx)
        recorder.record(
            STAGE_GROUPING, "gather", self.layer_index,
            n_groups=n_out, k=k,
            channels=features.shape[2] + 3, batch=batch,
            sorted=float(self.edgepc.sorted_grouping),
        )
        grouped = concatenate([Tensor(rel), grouped], axis=3)
        out = self.mlp(grouped)  # (B, n, k, C_out)
        _record_matmuls(
            recorder, self.layer_index, self.mlp_channels,
            rows=batch * n_out * k,
        )
        pooled = max_pool_neighbors(out)
        new_xyz = np.take_along_axis(xyz, sampled[:, :, None], axis=1)
        state = _LevelState(
            xyz=new_xyz,
            features=pooled,
            sample_result=sample_result,
            sampled_indices=sampled,
        )
        return new_xyz, pooled, state


class FeaturePropagation(Module):
    """One FP module: interpolate coarse features up, concat skip, MLP."""

    def __init__(
        self,
        layer_index: int,
        coarse_channels: int,
        skip_channels: int,
        mlp: Tuple[int, ...],
        edgepc: EdgePCConfig,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.layer_index = layer_index
        self.edgepc = edgepc
        channels = (coarse_channels + skip_channels,) + tuple(mlp)
        self.mlp_channels = channels
        self.mlp = shared_mlp(channels, rng=rng)
        self.out_channels = channels[-1]
        self._upsampler = MortonUpsampler()

    def forward(
        self,
        fine_xyz: np.ndarray,
        fine_features: Tensor,
        coarse_features: Tensor,
        sa_state: _LevelState,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Propagate ``coarse_features`` onto the fine level.

        Args:
            fine_xyz: ``(B, N, 3)`` coordinates of the fine level.
            fine_features: ``(B, N, C_skip)`` skip features.
            coarse_features: ``(B, n, C_coarse)`` features to upsample.
            sa_state: the matching SA module's state (sampled indices
                and, if it ran the Morton sampler, the sample results).
        """
        recorder = NullRecorder() if recorder is None else recorder
        batch, n_fine, _ = fine_xyz.shape
        n_coarse = coarse_features.shape[1]
        use_morton = self.edgepc.uses_morton_upsampling(self.layer_index)
        result = sa_state.sample_result
        if use_morton and result is not None:
            anchors, weights = (
                self._upsampler.interpolation_weights_batch(
                    fine_xyz, result
                )
            )
            picked = group_points(coarse_features, anchors)
            mixed = (picked * Tensor(weights[:, :, :, None])).sum(axis=2)
            # interpolation_weights rows follow sorted order; gather by
            # rank to restore the original order.
            upsampled = gather_points(mixed, result.order.ranks)
            recorder.record(
                STAGE_SAMPLE, "interp_morton", self.layer_index,
                n_points=n_fine, batch=batch,
            )
        else:
            upsampled = _exact_interpolate_tensor(
                fine_xyz,
                sa_state.sampled_indices,
                coarse_features,
            )
            recorder.record(
                STAGE_SAMPLE, "interp_exact", self.layer_index,
                n_points=n_fine, n_samples=n_coarse, batch=batch,
            )
        merged = concatenate([upsampled, fine_features], axis=2)
        out = self.mlp(merged)
        _record_matmuls(
            recorder,
            self.layer_index,
            self.mlp_channels,
            rows=batch * n_fine,
        )
        return out


def _exact_interpolate_tensor(
    fine_xyz: np.ndarray, sampled_indices: np.ndarray, features: Tensor
) -> Tensor:
    """Differentiable 3-NN inverse-distance interpolation (SOTA FP),
    batched: ``(B, N, 3)`` points, ``(B, n)`` sampled indices, and
    ``(B, n, C)`` features to ``(B, N, C)``."""
    sampled_xyz = np.take_along_axis(
        fine_xyz, sampled_indices[:, :, None], axis=1
    )
    d2 = (
        np.sum(fine_xyz**2, axis=2)[:, :, None]
        - 2.0 * fine_xyz @ sampled_xyz.transpose(0, 2, 1)
        + np.sum(sampled_xyz**2, axis=2)[:, None, :]
    )
    np.maximum(d2, 0.0, out=d2)
    k = min(3, sampled_xyz.shape[1])
    pick = np.argsort(d2, axis=2, kind="stable")[:, :, :k]
    inv = 1.0 / np.maximum(np.take_along_axis(d2, pick, axis=2), 1e-10)
    weights = inv / inv.sum(axis=2, keepdims=True)
    picked = group_points(features, pick)  # (B, N, k, C)
    return (picked * Tensor(weights[:, :, :, None])).sum(axis=2)


class PointNet2Segmentation(Module):
    """PointNet++(s): hierarchical encoder + FP decoder + per-point head.

    Args:
        num_classes: per-point label count.
        in_channels: input feature channels (0 for xyz-only input, in
            which case a constant 1-channel feature is synthesized).
        sa_configs: per-level hyper-parameters.
        edgepc: the approximation configuration.
    """

    def __init__(
        self,
        num_classes: int,
        in_channels: int = 0,
        sa_configs: Sequence[SAConfig] = DEFAULT_SA_CONFIGS,
        edgepc: Optional[EdgePCConfig] = None,
        head_hidden: int = 32,
        dropout: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.edgepc = edgepc or EdgePCConfig.baseline()
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.sa_configs = tuple(sa_configs)
        self.sa_modules: List[SetAbstraction] = []
        self.workspace = Workspace(self.edgepc.workspace_scratch_bytes)
        channels = max(in_channels, 1)
        skip_channels = [channels]
        for i, cfg in enumerate(self.sa_configs):
            module = SetAbstraction(
                i, channels, cfg, self.edgepc, rng, self.workspace
            )
            setattr(self, f"sa{i}", module)
            self.sa_modules.append(module)
            channels = module.out_channels
            skip_channels.append(channels)
        self.fp_modules: List[FeaturePropagation] = []
        num_levels = len(self.sa_configs)
        for j in range(num_levels):
            coarse = skip_channels[num_levels - j]
            skip = skip_channels[num_levels - j - 1]
            out = max(skip_channels[num_levels - j - 1], 32)
            module = FeaturePropagation(
                j, coarse, skip, (out, out), self.edgepc, rng
            )
            setattr(self, f"fp{j}", module)
            self.fp_modules.append(module)
            skip_channels[num_levels - j - 1] = module.out_channels
        head_in = self.fp_modules[-1].out_channels
        self.head_hidden = Linear(head_in, head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        features: Optional[Tensor] = None,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-point logits ``(B, N, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
        recorder = NullRecorder() if recorder is None else recorder
        if features is None:
            if self.in_channels not in (0, 1):
                raise ValueError(
                    "model expects input features but none were given"
                )
            features = Tensor(np.ones(xyz.shape[:2] + (1,)))
        levels: List[_LevelState] = [
            _LevelState(xyz=xyz, features=features)
        ]
        for module in self.sa_modules:
            new_xyz, new_features, state = module(
                levels[-1].xyz, levels[-1].features, recorder
            )
            levels.append(state)
        coarse = levels[-1].features
        num_levels = len(self.sa_modules)
        for j, module in enumerate(self.fp_modules):
            fine_state = levels[num_levels - j - 1]
            sa_state = levels[num_levels - j]
            coarse = module(
                fine_state.xyz,
                fine_state.features,
                coarse,
                sa_state,
                recorder,
            )
        hidden = self.head_hidden(coarse).relu()
        hidden = self.head_dropout(hidden)
        logits = self.head_out(hidden)
        _record_matmuls(
            recorder,
            len(self.sa_modules) + len(self.fp_modules),
            (
                self.head_hidden.in_features,
                self.head_hidden.out_features,
                self.num_classes,
            ),
            rows=xyz.shape[0] * xyz.shape[1],
        )
        return logits


class PointNet2Classifier(Module):
    """PointNet++ classification variant: SA stack + global pool + MLP."""

    def __init__(
        self,
        num_classes: int,
        in_channels: int = 0,
        sa_configs: Sequence[SAConfig] = DEFAULT_SA_CONFIGS[:3],
        edgepc: Optional[EdgePCConfig] = None,
        head_hidden: int = 64,
        dropout: float = 0.4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.edgepc = edgepc or EdgePCConfig.baseline()
        self.num_classes = num_classes
        self.in_channels = in_channels
        self.sa_modules: List[SetAbstraction] = []
        self.workspace = Workspace(self.edgepc.workspace_scratch_bytes)
        channels = max(in_channels, 1)
        for i, cfg in enumerate(sa_configs):
            module = SetAbstraction(
                i, channels, cfg, self.edgepc, rng, self.workspace
            )
            setattr(self, f"sa{i}", module)
            self.sa_modules.append(module)
            channels = module.out_channels
        self.head_hidden = Linear(channels, head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        features: Optional[Tensor] = None,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-cloud logits ``(B, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        recorder = NullRecorder() if recorder is None else recorder
        if features is None:
            features = Tensor(np.ones(xyz.shape[:2] + (1,)))
        current_xyz, current = xyz, features
        for module in self.sa_modules:
            current_xyz, current, _ = module(
                current_xyz, current, recorder
            )
        pooled = current.max(axis=1)  # (B, C)
        hidden = self.head_hidden(pooled).relu()
        hidden = self.head_dropout(hidden)
        logits = self.head_out(hidden)
        _record_matmuls(
            recorder,
            len(self.sa_modules),
            (
                self.head_hidden.in_features,
                self.head_hidden.out_features,
                self.num_classes,
            ),
            rows=xyz.shape[0],
        )
        return logits
