"""DGCNN (Wang et al.) over the NumPy substrate.

Architecture per the paper's Fig. 2b: a chain of EdgeConv (EC) modules.
Each EC finds k nearest neighbors — the *first* module in coordinate
space, later modules in *feature* space — builds edge features
``[x_i, x_j - x_i]``, applies a shared MLP, and max-pools over
neighbors.  The point count never changes, so DGCNN has no sampling
stage (paper Sec. 3.1).

EdgePC integration (Sec. 5.2.3):

- EC module 0 queries in 3-D coordinate space, so its kNN can be
  replaced by the Morton index-window search.
- Later modules measure distance between high-dimensional features,
  which Morton codes cannot index; EdgePC instead interleaves *reuse*
  of the previous module's neighbor indices with exact recomputation,
  governed by :class:`~repro.core.reuse.NeighborReusePolicy`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.neighbor import MortonNeighborSearch
from repro.core.pipeline import EdgePCConfig
from repro.core.reuse import NeighborCache
from repro.core.workspace import Workspace
from repro.neighbors.batched import knn_batch, knn_grid_batch
from repro.neighbors.grid import GridQueryStats
from repro.nn.autograd import Tensor, concatenate
from repro.nn.functional import edge_features, max_pool_neighbors
from repro.nn.layers import Dropout, Linear, Module, shared_mlp
from repro.nn.recorder import (
    STAGE_FEATURE,
    STAGE_GROUPING,
    STAGE_NEIGHBOR,
    NullRecorder,
    StageRecorder,
)


class EdgeConv(Module):
    """One EdgeConv module: kNN graph -> edge features -> MLP -> max."""

    def __init__(
        self,
        layer_index: int,
        in_channels: int,
        out_channels: Tuple[int, ...],
        k: int,
        edgepc: EdgePCConfig,
        rng: Optional[np.random.Generator] = None,
        workspace: Optional[Workspace] = None,
    ) -> None:
        super().__init__()
        if k < 1:
            raise ValueError("k must be positive")
        self.layer_index = layer_index
        self.k = k
        self.edgepc = edgepc
        channels = (2 * in_channels,) + tuple(out_channels)
        self.mlp_channels = channels
        self.mlp = shared_mlp(channels, rng=rng, activation="leaky_relu")
        self.out_channels = channels[-1]
        self.workspace = workspace or Workspace()

    def _graph(
        self,
        xyz: np.ndarray,
        features: Tensor,
        cache: NeighborCache,
        recorder: StageRecorder,
    ) -> np.ndarray:
        """Compute or reuse the ``(B, N, k)`` neighbor graph."""
        batch, n_points = features.shape[0], features.shape[1]
        policy = self.edgepc.reuse_policy()
        if self.layer_index > 0 and policy.should_reuse(self.layer_index):
            if not cache.is_empty:
                recorder.record(
                    STAGE_NEIGHBOR, "reuse", self.layer_index,
                    n_queries=n_points, k=self.k, batch=batch,
                )
                return cache.load()
        if (
            self.layer_index == 0
            and self.edgepc.uses_morton_neighbors(0)
        ):
            window = min(n_points, self.edgepc.window_for(self.k))
            searcher = MortonNeighborSearch(
                self.k, window, self.edgepc.code_bits, self.workspace
            )
            out = searcher.search_batch(xyz)
            recorder.record(
                STAGE_NEIGHBOR, "morton_gen", 0,
                n_points=n_points, batch=batch,
            )
            recorder.record(
                STAGE_NEIGHBOR, "morton_sort", 0,
                n_points=n_points, batch=batch,
            )
            recorder.record(
                STAGE_NEIGHBOR, "morton_window", 0,
                n_queries=n_points, window=window, k=self.k, batch=batch,
            )
        else:
            space = (
                xyz
                if self.layer_index == 0
                else features.data
            )
            dim = space.shape[2]
            if (
                dim == 3
                and self.edgepc.exact_engine_for(n_points) == "fast"
            ):
                # Large-N exact path: grid cell-list kNN (xyz space
                # only — feature-space graphs are high-dimensional).
                stats = GridQueryStats()
                out = knn_grid_batch(
                    space, space, self.k,
                    workspace=self.workspace, stats=stats,
                )
                recorder.record(
                    STAGE_NEIGHBOR, "knn_grid", self.layer_index,
                    n_queries=n_points, n_candidates=n_points,
                    k=self.k, dim=dim, batch=batch,
                    pairs_scanned=stats.pairs_scanned / batch,
                    rounds=stats.rounds,
                )
            else:
                out = knn_batch(space, space, self.k, self.workspace)
                recorder.record(
                    STAGE_NEIGHBOR, "knn", self.layer_index,
                    n_queries=n_points, n_candidates=n_points,
                    k=self.k, dim=dim, batch=batch,
                )
        cache.store(out)
        return out

    def forward(
        self,
        xyz: np.ndarray,
        features: Tensor,
        cache: NeighborCache,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        recorder = NullRecorder() if recorder is None else recorder
        neighbor_idx = self._graph(xyz, features, cache, recorder)
        if self.edgepc.sorted_grouping:
            # Sec. 5.4.2: order within a neighborhood is irrelevant to
            # the max-pooled edge aggregation.
            neighbor_idx = np.sort(neighbor_idx, axis=-1)
        batch, n_points, k = neighbor_idx.shape
        edges = edge_features(features, neighbor_idx)
        recorder.record(
            STAGE_GROUPING, "gather", self.layer_index,
            n_groups=n_points, k=k,
            channels=2 * features.shape[2], batch=batch,
            sorted=float(self.edgepc.sorted_grouping),
        )
        out = self.mlp(edges)
        for c_in, c_out in zip(
            self.mlp_channels[:-1], self.mlp_channels[1:]
        ):
            recorder.record(
                STAGE_FEATURE, "matmul", self.layer_index,
                rows=batch * n_points * k,
                c_in=c_in, c_out=c_out,
                flops=2.0 * batch * n_points * k * c_in * c_out,
            )
        return max_pool_neighbors(out)


class _DGCNNBackbone(Module):
    """The shared EC chain + per-point concat used by every variant."""

    def __init__(
        self,
        in_channels: int,
        ec_channels: Sequence[Tuple[int, ...]],
        k: int,
        edgepc: EdgePCConfig,
        rng: np.random.Generator,
        workspace: Optional[Workspace] = None,
    ) -> None:
        super().__init__()
        self.ec_modules: List[EdgeConv] = []
        workspace = workspace or Workspace()
        channels = in_channels
        for i, out_channels in enumerate(ec_channels):
            module = EdgeConv(
                i, channels, out_channels, k, edgepc, rng, workspace
            )
            setattr(self, f"ec{i}", module)
            self.ec_modules.append(module)
            channels = module.out_channels
        self.concat_channels = sum(m.out_channels for m in self.ec_modules)

    def forward(
        self,
        xyz: np.ndarray,
        features: Tensor,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        cache = NeighborCache()
        outputs: List[Tensor] = []
        current = features
        for module in self.ec_modules:
            current = module(xyz, current, cache, recorder)
            outputs.append(current)
        return concatenate(outputs, axis=2)  # (B, N, sum C)


class DGCNNClassifier(Module):
    """DGCNN(c): EC chain -> global max pool -> MLP head."""

    def __init__(
        self,
        num_classes: int,
        k: int = 16,
        ec_channels: Sequence[Tuple[int, ...]] = ((32,), (32,), (64,)),
        emb_channels: int = 128,
        head_hidden: int = 64,
        dropout: float = 0.4,
        edgepc: Optional[EdgePCConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.edgepc = edgepc or EdgePCConfig.baseline()
        self.num_classes = num_classes
        self.workspace = Workspace(self.edgepc.workspace_scratch_bytes)
        self.backbone = _DGCNNBackbone(
            3, ec_channels, k, self.edgepc, rng, self.workspace
        )
        self.embedding = Linear(
            self.backbone.concat_channels, emb_channels, rng=rng
        )
        self.head_hidden = Linear(emb_channels, head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-cloud logits ``(B, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
        recorder = NullRecorder() if recorder is None else recorder
        features = Tensor(xyz)
        per_point = self.backbone(xyz, features, recorder)
        embedded = self.embedding(per_point).leaky_relu(0.2)
        recorder.record(
            STAGE_FEATURE, "matmul", len(self.backbone.ec_modules),
            rows=xyz.shape[0] * xyz.shape[1],
            c_in=self.embedding.in_features,
            c_out=self.embedding.out_features,
            flops=2.0 * xyz.shape[0] * xyz.shape[1]
            * self.embedding.in_features * self.embedding.out_features,
        )
        pooled = embedded.max(axis=1)
        hidden = self.head_hidden(pooled).leaky_relu(0.2)
        hidden = self.head_dropout(hidden)
        return self.head_out(hidden)


class DGCNNSegmentation(Module):
    """DGCNN(s) / DGCNN(p): EC chain -> global context -> per-point head.

    The part-segmentation and semantic-segmentation variants share this
    structure; they differ only in dataset and class count.
    """

    def __init__(
        self,
        num_classes: int,
        k: int = 16,
        ec_channels: Sequence[Tuple[int, ...]] = ((32,), (32,), (64,)),
        emb_channels: int = 128,
        head_hidden: int = 64,
        dropout: float = 0.4,
        edgepc: Optional[EdgePCConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.edgepc = edgepc or EdgePCConfig.baseline()
        self.num_classes = num_classes
        self.workspace = Workspace(self.edgepc.workspace_scratch_bytes)
        self.backbone = _DGCNNBackbone(
            3, ec_channels, k, self.edgepc, rng, self.workspace
        )
        self.embedding = Linear(
            self.backbone.concat_channels, emb_channels, rng=rng
        )
        head_in = self.backbone.concat_channels + emb_channels
        self.head_hidden = Linear(head_in, head_hidden, rng=rng)
        self.head_dropout = Dropout(dropout, rng=rng)
        self.head_out = Linear(head_hidden, num_classes, rng=rng)

    def forward(
        self,
        xyz: np.ndarray,
        recorder: Optional[StageRecorder] = None,
    ) -> Tensor:
        """Per-point logits ``(B, N, num_classes)``."""
        xyz = np.asarray(xyz, dtype=np.float64)
        if xyz.ndim != 3 or xyz.shape[2] != 3:
            raise ValueError(f"xyz must be (B, N, 3), got {xyz.shape}")
        recorder = NullRecorder() if recorder is None else recorder
        n_points = xyz.shape[1]
        features = Tensor(xyz)
        per_point = self.backbone(xyz, features, recorder)
        embedded = self.embedding(per_point).leaky_relu(0.2)
        recorder.record(
            STAGE_FEATURE, "matmul", len(self.backbone.ec_modules),
            rows=xyz.shape[0] * n_points,
            c_in=self.embedding.in_features,
            c_out=self.embedding.out_features,
            flops=2.0 * xyz.shape[0] * n_points
            * self.embedding.in_features * self.embedding.out_features,
        )
        global_context = embedded.max(axis=1, keepdims=True)
        tiled = global_context.broadcast_to(
            (xyz.shape[0], n_points, global_context.shape[2])
        )
        merged = concatenate([per_point, tiled], axis=2)
        hidden = self.head_hidden(merged).leaky_relu(0.2)
        hidden = self.head_dropout(hidden)
        return self.head_out(hidden)
