"""A small reverse-mode automatic-differentiation engine over NumPy.

This is the substrate the PointNet++ / DGCNN reproductions train on.
It implements exactly the operator set those models need — elementwise
arithmetic, matmul, reductions, reshaping, gathers for the
grouping stage — with full broadcasting support, and builds a dynamic
tape that :meth:`Tensor.backward` walks in reverse topological order.

Design notes:

- Gradients accumulate into ``Tensor.grad`` (float64 arrays); graphs are
  rebuilt every forward pass (define-by-run), matching how the PyTorch
  originals behave.
- Only ops whose inputs have ``requires_grad`` propagate; constant
  subgraphs are pruned automatically.
- ``no_grad`` is a context manager for inference passes.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]

# Grad mode is thread-local: serving worker threads run inference
# under ``no_grad`` concurrently, and a shared global flag would let
# two overlapping save/restore pairs interleave so the loser's stale
# ``previous`` wins — permanently disabling graph construction for
# every thread (including a trainer on the main thread).
_GRAD_STATE = threading.local()


@contextlib.contextmanager
def no_grad():
    """Disable graph construction inside the block (inference mode)."""
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def is_grad_enabled() -> bool:
    return getattr(_GRAD_STATE, "enabled", True)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum along axes that were 1 in the original shape.
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 != g
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array plus an optional gradient and tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # Introspection ------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """The underlying array (not a copy — treat as read-only)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    # Autograd -----------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise RuntimeError("called backward on a non-grad tensor")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward without an explicit gradient requires a "
                    "scalar output"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError("gradient shape mismatch")

        # Reverse topological order over the tape.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # Arithmetic ----------------------------------------------------------

    @staticmethod
    def _lift(value: Union["Tensor", Number, np.ndarray]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data
        needs = self.requires_grad or other.requires_grad
        out = Tensor(out_data, needs, (self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        out = Tensor(-self.data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        out._backward = backward if out.requires_grad else None
        return out

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data
        needs = self.requires_grad or other.requires_grad
        out = Tensor(out_data, needs, (self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(
                    _unbroadcast(grad * other.data, self.data.shape)
                )
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(grad * self.data, other.data.shape)
                )

        out._backward = backward if out.requires_grad else None
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        return self * other ** -1.0

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) * self ** -1.0

    def __pow__(self, exponent: Number) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor(self.data**exponent, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(
                grad * exponent * self.data ** (exponent - 1.0)
            )

        out._backward = backward if out.requires_grad else None
        return out

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data
        needs = self.requires_grad or other.requires_grad
        out = Tensor(out_data, needs, (self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    # Elementwise functions ------------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor(out_data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        out._backward = backward if out.requires_grad else None
        return out

    def log(self) -> "Tensor":
        out = Tensor(np.log(self.data), self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        out._backward = backward if out.requires_grad else None
        return out

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor(out_data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        out._backward = backward if out.requires_grad else None
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor(self.data * mask, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        out._backward = backward if out.requires_grad else None
        return out

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        """DGCNN uses LeakyReLU(0.2) throughout."""
        positive = self.data > 0
        scale = np.where(positive, 1.0, negative_slope)
        out = Tensor(self.data * scale, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        out._backward = backward if out.requires_grad else None
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor(out_data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        out._backward = backward if out.requires_grad else None
        return out

    # Reductions ------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor(out_data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        out._backward = backward if out.requires_grad else None
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else np.prod(
                [self.data.shape[a] for a in np.atleast_1d(axis)]
            )
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Max along one axis; gradient flows to the (first) argmax."""
        out_data = self.data.max(axis=axis, keepdims=True)
        mask = self.data == out_data
        # Route gradient only to the first maximal element per slice so
        # ties don't double-count (matches PyTorch's max backward).
        first = np.cumsum(mask, axis=axis) == 1
        mask = mask & first
        squeezed = out_data if keepdims else out_data.squeeze(axis=axis)
        out = Tensor(squeezed, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g)

        out._backward = backward if out.requires_grad else None
        return out

    def min(self, axis: int, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # Shape manipulation -----------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor(
            self.data.reshape(shape), self.requires_grad, (self,)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        out = Tensor(
            self.data.transpose(axes), self.requires_grad, (self,)
        )
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        out._backward = backward if out.requires_grad else None
        return out

    def expand_dims(self, axis: int) -> "Tensor":
        out = Tensor(
            np.expand_dims(self.data, axis), self.requires_grad, (self,)
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.squeeze(axis=axis))

        out._backward = backward if out.requires_grad else None
        return out

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        out = Tensor(
            np.broadcast_to(self.data, shape).copy(),
            self.requires_grad,
            (self,),
        )

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))

        out._backward = backward if out.requires_grad else None
        return out

    # Gathers ---------------------------------------------------------------

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Fancy-gather along ``axis`` (the grouping primitive).

        ``indices`` may be any integer array; the result inserts the
        index array's shape in place of ``axis``.  The backward pass is
        a scatter-add.
        """
        indices = np.asarray(indices)
        if not np.issubdtype(indices.dtype, np.integer):
            raise TypeError("indices must be integers")
        out_data = np.take(self.data, indices, axis=axis)
        out = Tensor(out_data, self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(self.data)
            moved = np.moveaxis(
                grad,
                tuple(range(axis, axis + indices.ndim)),
                tuple(range(indices.ndim)),
            )
            g_moved = np.moveaxis(g, axis, 0)
            np.add.at(g_moved, indices.reshape(-1), moved.reshape(
                (-1,) + g_moved.shape[1:]
            ))
            self._accumulate(np.moveaxis(g_moved, 0, axis))

        out._backward = backward if out.requires_grad else None
        return out

    def __getitem__(self, key) -> "Tensor":
        out = Tensor(self.data[key], self.requires_grad, (self,))

        def backward(grad: np.ndarray) -> None:
            g = np.zeros_like(self.data)
            np.add.at(g, key, grad)
            self._accumulate(g)

        out._backward = backward if out.requires_grad else None
        return out


# Free functions -------------------------------------------------------------


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing."""
    tensors = [Tensor._lift(t) for t in tensors]
    if not tensors:
        raise ValueError("need at least one tensor")
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    needs = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, needs, tuple(tensors))
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(lo, hi)
                tensor._accumulate(grad[tuple(index)])

    out._backward = backward if out.requires_grad else None
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    expanded = [t.expand_dims(axis) for t in tensors]
    return concatenate(expanded, axis=axis)


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise maximum with subgradient routing to the winner."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    a_wins = a.data >= b.data
    out_data = np.where(a_wins, a.data, b.data)
    needs = a.requires_grad or b.requires_grad
    out = Tensor(out_data, needs, (a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * a_wins, a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~a_wins, b.data.shape))

    out._backward = backward if out.requires_grad else None
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Select ``a`` where ``condition`` else ``b`` (condition is data)."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)
    needs = a.requires_grad or b.requires_grad
    out = Tensor(out_data, needs, (a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.data.shape))

    out._backward = backward if out.requires_grad else None
    return out
