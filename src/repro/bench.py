"""Kernel micro-benchmarks: the batched engine vs per-cloud loops.

``repro bench`` times every hot kernel both ways — one batched NumPy
dispatch over ``(B, N, 3)`` versus the pre-batching shape, a Python
loop of per-cloud calls — at a fixed paper-scale workload, and writes
the results to ``BENCH_kernels.json``.  CI re-runs the suite and fails
when a kernel's batched-vs-looped *speedup ratio* drops below the
committed baseline by more than the tolerance band.  Ratios, not
absolute seconds, are compared: both variants run on the same machine
in the same process, so the ratio cancels host speed and stays
meaningful across CI runners.

Several per-cloud wrappers (``farthest_point_sample``, ``knn``,
``MortonNeighborSearch.search_ranks``) now delegate to the batched
kernels, so looping them would time the new code twice.  For those the
looped side is a ``_reference_*`` function below that preserves the
pre-batching per-cloud algorithm verbatim — the bench keeps measuring
the real before/after delta.

Timing uses ``time.perf_counter`` best-of-``repeats`` — the standard
micro-benchmark estimator, robust to one-off scheduler noise.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import morton
from repro.core.batched import structurize_batch
from repro.core.neighbor import MortonNeighborSearch, window_ranks
from repro.core.sampler import MortonSampler
from repro.core.structurize import MortonOrder
from repro.core.workspace import Workspace
from repro.neighbors.batched import (
    ball_query_batch,
    ball_query_grid_batch,
    knn_batch,
    knn_grid_batch,
)
from repro.sampling.fps import (
    farthest_point_sample_batch,
    farthest_point_sample_fast_batch,
)
from repro.sampling.uniform import uniform_stride_indices

SCHEMA_VERSION = 1

#: Default fraction a kernel's speedup may fall below the committed
#: baseline before the regression gate fails.  Micro-benchmark ratios
#: on shared CI runners are noisy; half the baseline ratio is a real
#: regression, not jitter.
DEFAULT_TOLERANCE = 0.5


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# Pre-batching reference implementations ------------------------------
#
# These are the per-cloud algorithms the repo shipped before the
# batched kernel layer, kept verbatim so the bench's "looped" column
# stays an honest before/after comparison.


def _reference_window_search(
    points: np.ndarray, order: MortonOrder, query_ranks: np.ndarray,
    k: int, window: int,
) -> np.ndarray:
    candidates = window_ranks(query_ranks, window, len(order))
    sorted_xyz = order.sorted_points(points)
    cand_xyz = sorted_xyz[candidates]  # (Q, W, 3)
    query_xyz = sorted_xyz[np.asarray(query_ranks)]
    d2 = np.sum((cand_xyz - query_xyz[:, None, :]) ** 2, axis=2)
    pick = np.argsort(d2, axis=1, kind="stable")[:, :k]
    rows = np.arange(candidates.shape[0])[:, None]
    return order.original_index_of(candidates[rows, pick])


def _reference_fps(
    points: np.ndarray, num_samples: int, start_index: int
) -> np.ndarray:
    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = start_index
    distance = np.sum((points - points[start_index]) ** 2, axis=1)
    distance[start_index] = -1.0
    for i in range(1, num_samples):
        farthest = int(np.argmax(distance))
        selected[i] = farthest
        delta = np.sum((points - points[farthest]) ** 2, axis=1)
        np.minimum(distance, delta, out=distance)
        distance[selected[: i + 1]] = -1.0
    return selected


def _reference_knn(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> np.ndarray:
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    c_sq = np.sum(candidates**2, axis=1)[None, :]
    for lo in range(0, queries.shape[0], 2048):
        block = queries[lo : lo + 2048]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ candidates.T
            + c_sq
        )
        np.maximum(d2, 0.0, out=d2)
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        row = np.arange(d2.shape[0])[:, None]
        sort = np.argsort(d2[row, part], axis=1, kind="stable")
        out[lo : lo + d2.shape[0]] = part[row, sort]
    return out


def run_suite(
    batch: int = 8,
    points: int = 1024,
    k: int = 16,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, object]:
    """Time the batched kernels against per-cloud loops.

    Returns the result document written to ``BENCH_kernels.json``:
    per-kernel best-of-``repeats`` wall-clock for both variants and
    their ratio (``looped_s / batched_s``).
    """
    if batch < 1 or points < 8:
        raise ValueError("need batch >= 1 and points >= 8")
    if not 1 <= k <= points:
        raise ValueError(f"k must be in [1, {points}], got {k}")
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(batch, points, 3))
    cells = rng.integers(0, 1 << 10, size=(batch, points, 3))
    codes = morton.encode(cells)
    num_samples = max(1, points // 4)
    num_fps = max(1, points // 8)
    sampler = MortonSampler()
    window = min(points, 2 * k)
    workspace = Workspace()
    searcher = MortonNeighborSearch(k, window, workspace=workspace)
    batch_order = structurize_batch(pts)
    cloud_orders = [batch_order.cloud(b) for b in range(batch)]
    query_ranks = uniform_stride_indices(points, num_samples)

    pairs: Dict[str, tuple] = {
        "morton_encode": (
            lambda: morton.encode(cells),
            lambda: [morton.encode(cells[b]) for b in range(batch)],
        ),
        "morton_sort": (
            lambda: np.argsort(codes, axis=1, kind="stable"),
            lambda: [
                np.argsort(codes[b], kind="stable")
                for b in range(batch)
            ],
        ),
        "morton_sample": (
            lambda: sampler.sample_batch(pts, num_samples),
            lambda: [
                sampler.sample(pts[b], num_samples)
                for b in range(batch)
            ],
        ),
        "window_search": (
            lambda: searcher.search_ranks_batch(
                pts, batch_order, query_ranks
            ),
            lambda: [
                _reference_window_search(
                    pts[b], cloud_orders[b], query_ranks, k, window
                )
                for b in range(batch)
            ],
        ),
        "fps": (
            lambda: farthest_point_sample_batch(
                pts, num_fps, start_index=0
            ),
            lambda: [
                _reference_fps(pts[b], num_fps, 0)
                for b in range(batch)
            ],
        ),
        "knn": (
            lambda: knn_batch(pts, pts, k, workspace),
            lambda: [
                _reference_knn(pts[b], pts[b], k)
                for b in range(batch)
            ],
        ),
    }

    kernels: Dict[str, Dict[str, float]] = {}
    for name, (batched, looped) in pairs.items():
        batched()  # warm up caches and the workspace pool
        batched_s = _best_of(batched, repeats)
        looped_s = _best_of(looped, repeats)
        kernels[name] = {
            "batched_s": batched_s,
            "looped_s": looped_s,
            "speedup": looped_s / batched_s,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "batched_kernels",
        "params": {
            "batch": batch,
            "points": points,
            "k": k,
            "repeats": repeats,
            "seed": seed,
        },
        "kernels": kernels,
    }


#: Default point counts for the large-N exact-engine suite.  The CI
#: ratio gate (``repro bench --suite large-n``) keys off the 40960
#: entry; 8192 sits just above the dispatch threshold and 102400 shows
#: the asymptotic trend.
LARGE_N_SIZES = (8192, 40960, 102400)

#: Query-ball radius for the large-N ball-query pair.  On the suite's
#: unit-Gaussian clouds this yields roughly ``k`` points per ball at
#: N=40960, matching the first SA level's paper-scale workload.
LARGE_N_RADIUS = 0.1


def run_large_n_suite(
    sizes: tuple = LARGE_N_SIZES,
    k: int = 16,
    repeats: int = 2,
    seed: int = 0,
) -> Dict[str, object]:
    """Time the large-N exact fast engines against the brute kernels.

    For each cloud size ``N`` (one unit-Gaussian cloud, ``N // 16``
    FPS picks and kNN / ball queries): the pruning-FPS and grid
    neighbor engines versus the production brute kernels they displace
    above :attr:`~repro.core.pipeline.EdgePCConfig.exact_fast_threshold`.
    Both sides return bit-identical indices (asserted here on every
    run), so the ratio is a pure like-for-like speedup.

    Returns a ``{"params", "kernels"}`` section dict; kernels are keyed
    ``"<op>/<N>"`` with ``brute_s`` / ``fast_s`` / ``speedup``.
    """
    sizes = tuple(int(n) for n in sizes)
    if not sizes or any(n < 64 for n in sizes):
        raise ValueError("sizes must be point counts >= 64")
    if repeats < 1:
        raise ValueError("repeats must be positive")
    if k < 1:
        raise ValueError("k must be positive")
    rng = np.random.default_rng(seed)
    workspace = Workspace()
    kernels: Dict[str, Dict[str, float]] = {}
    for n_points in sizes:
        pts = rng.normal(size=(1, n_points, 3))
        num_fps = max(1, n_points // 16)
        queries = pts[:, uniform_stride_indices(n_points, num_fps)]

        def fps_fast():
            return farthest_point_sample_fast_batch(
                pts, num_fps, start_index=0
            )

        def fps_brute():
            return farthest_point_sample_batch(
                pts, num_fps, start_index=0
            )

        def grid_knn():
            return knn_grid_batch(queries, pts, k, workspace=workspace)

        def brute_knn():
            return knn_batch(queries, pts, k, workspace)

        def grid_ball():
            return ball_query_grid_batch(
                queries, pts, LARGE_N_RADIUS, k, workspace=workspace
            )

        def brute_ball():
            return ball_query_batch(
                queries, pts, LARGE_N_RADIUS, k, workspace
            )

        for op, fast_fn, brute_fn in (
            ("fps_fast", fps_fast, fps_brute),
            ("knn_grid", grid_knn, brute_knn),
            ("ball_query_grid", grid_ball, brute_ball),
        ):
            fast_out = fast_fn()  # warm up pools; keep for identity
            brute_out = brute_fn()
            if not np.array_equal(fast_out, brute_out):
                raise AssertionError(
                    f"{op} diverged from brute at N={n_points}"
                )
            fast_s = _best_of(fast_fn, repeats)
            brute_s = _best_of(brute_fn, repeats)
            kernels[f"{op}/{n_points}"] = {
                "fast_s": fast_s,
                "brute_s": brute_s,
                "speedup": brute_s / fast_s,
            }
    return {
        "params": {
            "sizes": list(sizes),
            "k": k,
            "repeats": repeats,
            "seed": seed,
            "radius": LARGE_N_RADIUS,
        },
        "kernels": kernels,
    }


#: Default scene sizes for the partition suite.  The CI ratio gate
#: (``repro bench --suite partition``) keys off these entries; they
#: are deliberately modest — the suite *prices* the monolithic run
#: instead of executing it, so small scenes already exercise the full
#: scatter/price/project path.
PARTITION_SIZES = (25_000, 50_000)

#: Default chunk core budget for the partition suite (a chunk batch
#: is ``chunk_points`` plus halo and padding context).
PARTITION_CHUNK_POINTS = 4096

#: Default halo width (== the bench model's receptive field, the sum
#: of its SA radii) for the partition suite.
PARTITION_HALO_WIDTH = 0.12


def run_partition_suite(
    sizes: tuple = PARTITION_SIZES,
    chunk_points: int = PARTITION_CHUNK_POINTS,
    halo_width: float = PARTITION_HALO_WIDTH,
    seed: int = 0,
) -> Dict[str, object]:
    """Price chunked scene execution against the monolithic projection.

    For each scene size ``N``: a tiled-room scene is partitioned into
    Morton chunks, one representative chunk batch is *recorded*
    through a scene-tuned PointNet++ pipeline, and
    :func:`repro.partition.price_partition` projects both sides on the
    device cost model.  Unlike the wall-clock suites, every number
    here is deterministic **simulated seconds** — the ratio gate is
    machine-independent by construction.

    The bench model's SA radii sum to ``halo_width``, so the plan's
    halo covers exactly the model receptive field, and its config
    drops ``exact_fast_threshold`` below the chunk size so chunk
    batches record the same fast engines the monolithic run would
    dispatch — keeping the projection like-for-like.

    Returns a ``{"params", "kernels"}`` section dict; kernels are
    keyed ``"scene/<N>"`` with ``chunked_s`` / ``monolithic_s`` /
    ``speedup`` plus the plan's shape.
    """
    from dataclasses import replace as _replace

    from repro.core.pipeline import EdgePCConfig
    from repro.datasets import make_scene
    from repro.nn.pointnet2 import PointNet2Segmentation, SAConfig
    from repro.partition import ScenePartitioner, price_partition
    from repro.pipeline import EdgePCPipeline

    sizes = tuple(int(n) for n in sizes)
    if not sizes or any(n <= chunk_points for n in sizes):
        raise ValueError(
            "sizes must be scene point counts above chunk_points"
        )
    if chunk_points < 64:
        raise ValueError("chunk_points must be at least 64")
    if halo_width <= 0:
        raise ValueError("halo_width must be positive")
    sa_configs = (
        SAConfig(
            ratio=0.25, k=16, radius=halo_width / 3.0,
            mlp=(16, 16, 32),
        ),
        SAConfig(
            ratio=0.25, k=16, radius=2.0 * halo_width / 3.0,
            mlp=(32, 32, 64),
        ),
    )
    config = _replace(
        EdgePCConfig.baseline(), exact_fast_threshold=1024
    )
    model = PointNet2Segmentation(
        num_classes=13,
        sa_configs=sa_configs,
        edgepc=config,
        rng=np.random.default_rng(seed),
    )
    pipeline = EdgePCPipeline(model)
    partitioner = ScenePartitioner(
        chunk_points=chunk_points, halo_width=halo_width
    )
    kernels: Dict[str, Dict[str, float]] = {}
    for n_points in sizes:
        scene = make_scene(n_points, seed=seed)
        plan = partitioner.plan(scene.xyz)
        report = price_partition(pipeline, scene.xyz, plan)
        kernels[f"scene/{n_points}"] = {
            "chunked_s": report.chunked_s,
            "monolithic_s": report.monolithic_s,
            "speedup": report.speedup,
            "per_chunk_s": report.per_chunk_s,
            "num_chunks": float(report.num_chunks),
            "chunk_size": float(report.chunk_size),
            "halo_ratio": report.halo_ratio,
        }
    return {
        "params": {
            "sizes": list(sizes),
            "chunk_points": chunk_points,
            "halo_width": halo_width,
            "seed": seed,
        },
        "kernels": kernels,
    }


def format_partition_results(section: Dict[str, object]) -> str:
    """Human-readable table of one partition suite section."""
    params = section["params"]
    lines = [
        "scene partition suite "
        f"(sizes={params['sizes']}, "
        f"chunk_points={params['chunk_points']}, "
        f"halo_width={params['halo_width']}; simulated seconds)",
        f"{'scene':<16}{'chunked':>12}{'monolithic':>12}"
        f"{'speedup':>10}{'halo':>8}",
    ]
    for name, entry in section["kernels"].items():
        lines.append(
            f"{name:<16}"
            f"{entry['chunked_s']:>11.3f}s"
            f"{entry['monolithic_s']:>11.3f}s"
            f"{entry['speedup']:>9.1f}x"
            f"{entry['halo_ratio']:>8.2f}"
        )
    return "\n".join(lines)


def format_large_n_results(section: Dict[str, object]) -> str:
    """Human-readable table of one large-N suite section."""
    params = section["params"]
    lines = [
        "large-N exact-engine suite "
        f"(sizes={params['sizes']}, k={params['k']}, "
        f"best of {params['repeats']})",
        f"{'kernel':<24}{'fast':>12}{'brute':>12}{'speedup':>10}",
    ]
    for name, entry in section["kernels"].items():
        lines.append(
            f"{name:<24}"
            f"{entry['fast_s'] * 1e3:>10.2f}ms"
            f"{entry['brute_s'] * 1e3:>10.2f}ms"
            f"{entry['speedup']:>9.1f}x"
        )
    return "\n".join(lines)


def format_results(results: Dict[str, object]) -> str:
    """Human-readable tables of one suite run (both sections)."""
    lines: List[str] = []
    if "kernels" in results:
        params = results["params"]
        lines += [
            "batched kernel suite "
            f"(B={params['batch']}, N={params['points']}, "
            f"k={params['k']}, best of {params['repeats']})",
            f"{'kernel':<16}{'batched':>12}"
            f"{'looped':>12}{'speedup':>10}",
        ]
        for name, entry in results["kernels"].items():
            lines.append(
                f"{name:<16}"
                f"{entry['batched_s'] * 1e3:>10.2f}ms"
                f"{entry['looped_s'] * 1e3:>10.2f}ms"
                f"{entry['speedup']:>9.1f}x"
            )
    if "large_n" in results:
        if lines:
            lines.append("")
        lines.append(format_large_n_results(results["large_n"]))
    if "partition" in results:
        if lines:
            lines.append("")
        lines.append(format_partition_results(results["partition"]))
    return "\n".join(lines)


def compare_with_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` against a committed ``baseline``.

    A kernel regresses when its speedup ratio falls below
    ``baseline_speedup * (1 - tolerance)``, or when it disappears from
    the suite.  Returns one message per regression; empty means the
    gate passes.

    Each section (``kernels``, ``large_n``, ``partition``) is gated
    only when the current run produced it, so a ``--suite large-n``
    smoke run can be checked against the full committed baseline.
    Within ``large_n`` and ``partition``, baseline entries for sizes
    the current run did not request (its ``params.sizes``) are
    skipped — those suites are size-parameterized and CI gates a
    subset.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")

    def check(name, entry, current_kernels, prefix=""):
        if name not in current_kernels:
            problems.append(
                f"{prefix}{name}: missing from current suite"
            )
            return
        floor = entry["speedup"] * (1.0 - tolerance)
        got = current_kernels[name]["speedup"]
        if got < floor:
            problems.append(
                f"{prefix}{name}: speedup {got:.2f}x fell below "
                f"{floor:.2f}x (baseline {entry['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )

    problems: List[str] = []
    if "kernels" in current:
        current_kernels = current.get("kernels", {})
        for name, entry in baseline.get("kernels", {}).items():
            check(name, entry, current_kernels)
    for key in ("large_n", "partition"):
        if key not in current:
            continue
        section = current[key]
        sizes = {int(n) for n in section["params"]["sizes"]}
        base = baseline.get(key, {})
        for name, entry in base.get("kernels", {}).items():
            if int(name.rsplit("/", 1)[1]) not in sizes:
                continue
            check(name, entry, section.get("kernels", {}), f"{key}/")
    return problems
