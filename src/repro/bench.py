"""Kernel micro-benchmarks: the batched engine vs per-cloud loops.

``repro bench`` times every hot kernel both ways — one batched NumPy
dispatch over ``(B, N, 3)`` versus the pre-batching shape, a Python
loop of per-cloud calls — at a fixed paper-scale workload, and writes
the results to ``BENCH_kernels.json``.  CI re-runs the suite and fails
when a kernel's batched-vs-looped *speedup ratio* drops below the
committed baseline by more than the tolerance band.  Ratios, not
absolute seconds, are compared: both variants run on the same machine
in the same process, so the ratio cancels host speed and stays
meaningful across CI runners.

Several per-cloud wrappers (``farthest_point_sample``, ``knn``,
``MortonNeighborSearch.search_ranks``) now delegate to the batched
kernels, so looping them would time the new code twice.  For those the
looped side is a ``_reference_*`` function below that preserves the
pre-batching per-cloud algorithm verbatim — the bench keeps measuring
the real before/after delta.

Timing uses ``time.perf_counter`` best-of-``repeats`` — the standard
micro-benchmark estimator, robust to one-off scheduler noise.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import morton
from repro.core.batched import structurize_batch
from repro.core.neighbor import MortonNeighborSearch, window_ranks
from repro.core.sampler import MortonSampler
from repro.core.structurize import MortonOrder
from repro.core.workspace import Workspace
from repro.neighbors.batched import knn_batch
from repro.sampling.fps import farthest_point_sample_batch
from repro.sampling.uniform import uniform_stride_indices

SCHEMA_VERSION = 1

#: Default fraction a kernel's speedup may fall below the committed
#: baseline before the regression gate fails.  Micro-benchmark ratios
#: on shared CI runners are noisy; half the baseline ratio is a real
#: regression, not jitter.
DEFAULT_TOLERANCE = 0.5


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# Pre-batching reference implementations ------------------------------
#
# These are the per-cloud algorithms the repo shipped before the
# batched kernel layer, kept verbatim so the bench's "looped" column
# stays an honest before/after comparison.


def _reference_window_search(
    points: np.ndarray, order: MortonOrder, query_ranks: np.ndarray,
    k: int, window: int,
) -> np.ndarray:
    candidates = window_ranks(query_ranks, window, len(order))
    sorted_xyz = order.sorted_points(points)
    cand_xyz = sorted_xyz[candidates]  # (Q, W, 3)
    query_xyz = sorted_xyz[np.asarray(query_ranks)]
    d2 = np.sum((cand_xyz - query_xyz[:, None, :]) ** 2, axis=2)
    pick = np.argsort(d2, axis=1, kind="stable")[:, :k]
    rows = np.arange(candidates.shape[0])[:, None]
    return order.original_index_of(candidates[rows, pick])


def _reference_fps(
    points: np.ndarray, num_samples: int, start_index: int
) -> np.ndarray:
    selected = np.empty(num_samples, dtype=np.int64)
    selected[0] = start_index
    distance = np.sum((points - points[start_index]) ** 2, axis=1)
    distance[start_index] = -1.0
    for i in range(1, num_samples):
        farthest = int(np.argmax(distance))
        selected[i] = farthest
        delta = np.sum((points - points[farthest]) ** 2, axis=1)
        np.minimum(distance, delta, out=distance)
        distance[selected[: i + 1]] = -1.0
    return selected


def _reference_knn(
    queries: np.ndarray, candidates: np.ndarray, k: int
) -> np.ndarray:
    out = np.empty((queries.shape[0], k), dtype=np.int64)
    c_sq = np.sum(candidates**2, axis=1)[None, :]
    for lo in range(0, queries.shape[0], 2048):
        block = queries[lo : lo + 2048]
        d2 = (
            np.sum(block**2, axis=1)[:, None]
            - 2.0 * block @ candidates.T
            + c_sq
        )
        np.maximum(d2, 0.0, out=d2)
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        row = np.arange(d2.shape[0])[:, None]
        sort = np.argsort(d2[row, part], axis=1, kind="stable")
        out[lo : lo + d2.shape[0]] = part[row, sort]
    return out


def run_suite(
    batch: int = 8,
    points: int = 1024,
    k: int = 16,
    repeats: int = 5,
    seed: int = 0,
) -> Dict[str, object]:
    """Time the batched kernels against per-cloud loops.

    Returns the result document written to ``BENCH_kernels.json``:
    per-kernel best-of-``repeats`` wall-clock for both variants and
    their ratio (``looped_s / batched_s``).
    """
    if batch < 1 or points < 8:
        raise ValueError("need batch >= 1 and points >= 8")
    if not 1 <= k <= points:
        raise ValueError(f"k must be in [1, {points}], got {k}")
    if repeats < 1:
        raise ValueError("repeats must be positive")
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(batch, points, 3))
    cells = rng.integers(0, 1 << 10, size=(batch, points, 3))
    codes = morton.encode(cells)
    num_samples = max(1, points // 4)
    num_fps = max(1, points // 8)
    sampler = MortonSampler()
    window = min(points, 2 * k)
    workspace = Workspace()
    searcher = MortonNeighborSearch(k, window, workspace=workspace)
    batch_order = structurize_batch(pts)
    cloud_orders = [batch_order.cloud(b) for b in range(batch)]
    query_ranks = uniform_stride_indices(points, num_samples)

    pairs: Dict[str, tuple] = {
        "morton_encode": (
            lambda: morton.encode(cells),
            lambda: [morton.encode(cells[b]) for b in range(batch)],
        ),
        "morton_sort": (
            lambda: np.argsort(codes, axis=1, kind="stable"),
            lambda: [
                np.argsort(codes[b], kind="stable")
                for b in range(batch)
            ],
        ),
        "morton_sample": (
            lambda: sampler.sample_batch(pts, num_samples),
            lambda: [
                sampler.sample(pts[b], num_samples)
                for b in range(batch)
            ],
        ),
        "window_search": (
            lambda: searcher.search_ranks_batch(
                pts, batch_order, query_ranks
            ),
            lambda: [
                _reference_window_search(
                    pts[b], cloud_orders[b], query_ranks, k, window
                )
                for b in range(batch)
            ],
        ),
        "fps": (
            lambda: farthest_point_sample_batch(
                pts, num_fps, start_index=0
            ),
            lambda: [
                _reference_fps(pts[b], num_fps, 0)
                for b in range(batch)
            ],
        ),
        "knn": (
            lambda: knn_batch(pts, pts, k, workspace),
            lambda: [
                _reference_knn(pts[b], pts[b], k)
                for b in range(batch)
            ],
        ),
    }

    kernels: Dict[str, Dict[str, float]] = {}
    for name, (batched, looped) in pairs.items():
        batched()  # warm up caches and the workspace pool
        batched_s = _best_of(batched, repeats)
        looped_s = _best_of(looped, repeats)
        kernels[name] = {
            "batched_s": batched_s,
            "looped_s": looped_s,
            "speedup": looped_s / batched_s,
        }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "batched_kernels",
        "params": {
            "batch": batch,
            "points": points,
            "k": k,
            "repeats": repeats,
            "seed": seed,
        },
        "kernels": kernels,
    }


def format_results(results: Dict[str, object]) -> str:
    """Human-readable table of one suite run."""
    params = results["params"]
    lines = [
        "batched kernel suite "
        f"(B={params['batch']}, N={params['points']}, "
        f"k={params['k']}, best of {params['repeats']})",
        f"{'kernel':<16}{'batched':>12}{'looped':>12}{'speedup':>10}",
    ]
    for name, entry in results["kernels"].items():
        lines.append(
            f"{name:<16}"
            f"{entry['batched_s'] * 1e3:>10.2f}ms"
            f"{entry['looped_s'] * 1e3:>10.2f}ms"
            f"{entry['speedup']:>9.1f}x"
        )
    return "\n".join(lines)


def compare_with_baseline(
    current: Dict[str, object],
    baseline: Dict[str, object],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Regressions of ``current`` against a committed ``baseline``.

    A kernel regresses when its speedup ratio falls below
    ``baseline_speedup * (1 - tolerance)``, or when it disappears from
    the suite.  Returns one message per regression; empty means the
    gate passes.
    """
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must be in [0, 1)")
    problems: List[str] = []
    current_kernels = current.get("kernels", {})
    for name, entry in baseline.get("kernels", {}).items():
        if name not in current_kernels:
            problems.append(f"{name}: missing from current suite")
            continue
        floor = entry["speedup"] * (1.0 - tolerance)
        got = current_kernels[name]["speedup"]
        if got < floor:
            problems.append(
                f"{name}: speedup {got:.2f}x fell below "
                f"{floor:.2f}x (baseline {entry['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return problems
