"""Million-point scene partitioning (scatter/gather over chunks).

EdgePC's Morton structurization (paper Sec. 4.1) makes contiguous rank
ranges spatially compact — so a scene far above the per-cloud budget
can be split into Morton-contiguous chunks, each padded with a halo of
boundary points wide enough to cover the model's receptive field, and
executed as rectangular ``(B, S, 3)`` batches through the existing
pipeline.  Stitching assigns every scene point the prediction of the
chunk that *owns* it (owner-chunk priority), which keeps multi-chunk
output deterministic and — for halo widths at or above the receptive
field — identical to the monolithic run on interior points.
"""

from repro.partition.cost import PartitionCostReport, price_partition
from repro.partition.partitioner import (
    PartitionPlan,
    SceneChunk,
    ScenePartitioner,
    halo_width_for,
)
from repro.partition.pipeline import (
    PartitionedPipeline,
    PartitionedResult,
    PartitionRejectedError,
)

__all__ = [
    "ScenePartitioner",
    "PartitionPlan",
    "SceneChunk",
    "halo_width_for",
    "PartitionedPipeline",
    "PartitionedResult",
    "PartitionRejectedError",
    "PartitionCostReport",
    "price_partition",
]
