"""Chunked scene inference: scatter, batch, stitch.

:class:`PartitionedPipeline` drives a :class:`ScenePartitioner` plan
through an existing :class:`~repro.pipeline.EdgePCPipeline` (or a
:class:`~repro.robustness.guard.GuardedPipeline` wrapping one): chunks
of one uniform size stack into rectangular ``(B, S, 3)`` batches, ride
the ordinary batch path, and the per-point outputs are stitched back
into scene order.  Stitch semantics are **owner-chunk priority**:
every scene point takes the logits its owning chunk computed for it;
halo and padding rows are context only and are discarded.  This makes
multi-chunk output deterministic regardless of chunk count, and — for
halo widths at or above the model's receptive field — identical to
the monolithic run on interior points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

import numpy as np

from repro.observability.context import TraceContext
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NULL_TRACER, Tracer
from repro.partition.partitioner import PartitionPlan, ScenePartitioner


class PartitionRejectedError(RuntimeError):
    """A chunk batch was rejected at the guarded validation boundary.

    Carries the scene indices of the rejected chunks' core points so
    callers can attribute the failure to a region of the scene.
    """

    def __init__(self, reason: str, chunk_indices: Tuple[int, ...]):
        super().__init__(
            f"chunk batch {chunk_indices} rejected: {reason}"
        )
        self.reason = reason
        self.chunk_indices = chunk_indices


@dataclass(frozen=True)
class PartitionedResult:
    """A stitched scene prediction plus the plan that produced it.

    ``simulated_s`` / ``energy_j`` sum the per-batch device profiles,
    i.e. total chunked work including halo overhead — not critical
    path (chunks are independent and may run concurrently).
    """

    logits: np.ndarray
    predictions: np.ndarray
    plan: PartitionPlan
    simulated_s: float
    energy_j: float
    degraded_stages: Tuple[str, ...] = ()

    @property
    def num_points(self) -> int:
        return int(self.predictions.shape[0])


class PartitionedPipeline:
    """Executes partition plans through the batch inference path.

    Args:
        pipeline: an :class:`~repro.pipeline.EdgePCPipeline` or a
            :class:`~repro.robustness.guard.GuardedPipeline`; chunk
            batches go through its ``infer``.
        partitioner: the scatter policy; defaults to one sized from
            the model's receptive field when the model exposes
            ``sa_configs``, else a halo-less default.
        max_chunks_per_batch: ceiling on ``B`` per inner batch —
            bounds peak memory of the grouped ``(B, S, k, C)``
            tensors.
        tracer / metrics: observability sinks; default to the wrapped
            pipeline's own, so partition spans and the pipeline's
            per-stage spans land in one trace.
    """

    def __init__(
        self,
        pipeline,
        partitioner: Optional[ScenePartitioner] = None,
        max_chunks_per_batch: int = 4,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_chunks_per_batch < 1:
            raise ValueError("max_chunks_per_batch must be positive")
        inner = getattr(pipeline, "pipeline", pipeline)
        if partitioner is None:
            model = inner.model
            if getattr(model, "sa_configs", None) is not None:
                partitioner = ScenePartitioner.for_model(model)
            else:
                partitioner = ScenePartitioner()
        self.pipeline = pipeline
        self.partitioner = partitioner
        self.max_chunks_per_batch = int(max_chunks_per_batch)
        self.tracer = tracer if tracer is not None else (
            inner.tracer if inner.tracer is not None else NULL_TRACER
        )
        self.metrics = (
            metrics if metrics is not None else inner.metrics
        )

    def infer(
        self,
        xyz: np.ndarray,
        ctx: Optional[TraceContext] = None,
    ) -> PartitionedResult:
        """Partition, batch, and stitch one ``(N, 3)`` scene.

        Pass ``ctx`` to parent the ``partition.infer`` span (and all
        chunk-batch spans beneath it) under an existing request trace.
        """
        with self.tracer.span(
            "partition.infer", "partition", context=ctx
        ) as span:
            points = np.asarray(xyz, dtype=np.float64)
            if points.ndim != 2 or points.shape[1] != 3:
                raise ValueError(
                    f"expected an (N, 3) scene, got {points.shape}"
                )
            with self.tracer.span("partition.plan", "partition"):
                plan = self.partitioner.plan(points)
            logits, simulated_s, energy_j, degraded = (
                self._run_chunks(points, plan)
            )
            span.set("points", plan.num_points)
            span.set("chunks", plan.num_chunks)
            span.set("chunk_size", plan.chunk_size)
            span.add_cost(simulated_s)
            self._record_metrics(plan, simulated_s)
            return PartitionedResult(
                logits=logits,
                predictions=logits.argmax(axis=-1),
                plan=plan,
                simulated_s=simulated_s,
                energy_j=energy_j,
                degraded_stages=tuple(sorted(degraded)),
            )

    # Internals -------------------------------------------------------

    def _run_chunks(
        self, points: np.ndarray, plan: PartitionPlan
    ) -> Tuple[np.ndarray, float, float, Set[str]]:
        """Execute the plan's chunks in rectangular batches and
        scatter their core rows back into scene order."""
        scene_logits: Optional[np.ndarray] = None
        simulated_s = 0.0
        energy_j = 0.0
        degraded: Set[str] = set()
        step = self.max_chunks_per_batch
        for offset in range(0, plan.num_chunks, step):
            group = plan.chunks[offset : offset + step]
            batch = np.stack(
                [points[chunk.indices] for chunk in group]
            )
            with self.tracer.span(
                "partition.batch", "partition"
            ) as span:
                span.set("chunks", len(group))
                span.set("chunk_size", plan.chunk_size)
                result = self.pipeline.infer(batch)
            inner = self._unwrap(result, group)
            if inner.breakdown is not None:
                simulated_s += inner.breakdown.total_s
                energy_j += inner.energy.total_j
            degraded.update(getattr(result, "degraded_stages", ()))
            if scene_logits is None:
                scene_logits = np.empty(
                    (plan.num_points, inner.logits.shape[-1]),
                    dtype=inner.logits.dtype,
                )
            for row, chunk in enumerate(group):
                scene_logits[chunk.core_indices] = inner.logits[
                    row, : chunk.num_core
                ]
        assert scene_logits is not None  # plans have >= 1 chunk
        return scene_logits, simulated_s, energy_j, degraded

    @staticmethod
    def _unwrap(result, group):
        """The inner :class:`InferenceResult` of a (possibly guarded)
        batch, raising :class:`PartitionRejectedError` on rejection."""
        if getattr(result, "rejected", False):
            raise PartitionRejectedError(
                result.rejection_reason or "rejected",
                tuple(chunk.index for chunk in group),
            )
        return getattr(result, "result", result)

    def _record_metrics(
        self, plan: PartitionPlan, simulated_s: float
    ) -> None:
        registry = self.metrics
        if registry is None:
            return
        registry.counter("partition_scenes_total").inc()
        registry.counter("partition_chunks_total").inc(
            plan.num_chunks
        )
        registry.counter("partition_points_total").inc(
            plan.num_points
        )
        registry.counter(
            "partition_simulated_seconds_total"
        ).inc(simulated_s)
        registry.histogram("partition_halo_points_ratio").observe(
            plan.halo_ratio
        )
        registry.histogram("partition_chunk_size_points").observe(
            float(plan.chunk_size)
        )
        registry.gauge("partition_last_scene_chunks").set(
            float(plan.num_chunks)
        )
