"""Scene partitioning: Morton-contiguous chunks with halo regions.

The scatter side of the scene-scale pipeline.  A global Morton sort
(:func:`repro.core.structurize.structurize`) lays the scene out along
a space-filling curve; contiguous rank ranges are then spatially
compact by construction, so splitting the sorted permutation into
near-equal ranges yields compact chunks.  Each chunk is augmented
with a **halo**: the scene is voxelized at ``halo_width`` cell pitch
and every point whose cell is within one cell (Chebyshev) of a
core-occupied cell joins the chunk as context.  Cell adjacency covers
every point within ``halo_width`` of *some* core point (a grid
dilation, not an AABB blow-up — a chunk straddling a curve jump pulls
in only the surroundings of its occupied regions), so with a halo
width at or above the model's receptive field (the summed ball-query
radii of its SA stack, :func:`halo_width_for`), every neighborhood a
core point's features depend on is fully contained in the chunk.

Chunks are finally padded to one uniform size with the Morton-rank
nearest points not already included, so a plan stacks directly into
the rectangular ``(B, S, 3)`` batches the rest of the library prices
and serves.  Core indices always come first in a chunk's point list —
the stitch step only ever reads back the first ``num_core`` rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.core import morton
from repro.core.structurize import structurize


def halo_width_for(sa_configs: Iterable) -> float:
    """Receptive-field bound of an SA stack: the summed query radii.

    Each set-abstraction layer gathers features from a ball of its
    ``radius`` around every centroid, so after ``L`` layers a point's
    features depend on scene geometry at most ``sum(radii)`` away.  A
    halo at least this wide makes chunked inference see exactly the
    neighborhoods the monolithic run sees for every core point.
    """
    radii = [float(cfg.radius) for cfg in sa_configs]
    if not radii:
        raise ValueError("sa_configs must name at least one layer")
    if any(r <= 0 for r in radii):
        raise ValueError("every SA radius must be positive")
    return float(sum(radii))


@dataclass(frozen=True)
class SceneChunk:
    """One Morton-contiguous chunk of a partitioned scene.

    Attributes:
        index: position of the chunk in the plan (also its Morton-rank
            order along the curve).
        core_indices: original scene indices this chunk *owns*; every
            scene point is core to exactly one chunk.
        halo_indices: original scene indices included for context only
            (halo points plus any uniform-size padding); their outputs
            are discarded at stitch time.
    """

    index: int
    core_indices: np.ndarray
    halo_indices: np.ndarray

    @property
    def num_core(self) -> int:
        return int(self.core_indices.size)

    @property
    def num_halo(self) -> int:
        return int(self.halo_indices.size)

    @property
    def size(self) -> int:
        return self.num_core + self.num_halo

    @property
    def indices(self) -> np.ndarray:
        """All scene indices of the chunk, core first: ``(size,)``
        int64 — the row order of the chunk's ``(size, 3)`` batch."""
        return np.concatenate([self.core_indices, self.halo_indices])


@dataclass(frozen=True)
class PartitionPlan:
    """A full scatter plan: uniform-size chunks covering the scene."""

    num_points: int
    chunk_points: int
    halo_width: float
    chunk_size: int
    chunks: Tuple[SceneChunk, ...]

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def halo_points_total(self) -> int:
        """Context points across all chunks (halo plus padding)."""
        return sum(chunk.num_halo for chunk in self.chunks)

    @property
    def halo_ratio(self) -> float:
        """Halo overhead as a fraction of the scene size — the extra
        work the chunked run pays relative to one monolithic pass."""
        return self.halo_points_total / self.num_points

    def validate_cover(self) -> None:
        """Raise unless the cores partition ``range(num_points)``."""
        cores = np.concatenate(
            [chunk.core_indices for chunk in self.chunks]
        )
        if cores.size != self.num_points or not np.array_equal(
            np.sort(cores), np.arange(self.num_points)
        ):
            raise AssertionError(
                "chunk cores do not partition the scene"
            )


class ScenePartitioner:
    """Splits an ``(N, 3)`` scene into uniform Morton chunks.

    Args:
        chunk_points: target core size per chunk.  Scenes at or below
            this run as a single chunk **in original point order**, so
            the partitioned result is byte-identical to the direct
            pipeline on small inputs.
        halo_width: metric width of the context band pulled in around
            every chunk; derive it from the model with
            :func:`halo_width_for` for stitch-identity on interior
            points.
        code_bits: Morton code width for the global sort.
    """

    def __init__(
        self,
        chunk_points: int = 8192,
        halo_width: float = 0.0,
        code_bits: int = morton.DEFAULT_CODE_BITS,
    ) -> None:
        if chunk_points < 1:
            raise ValueError("chunk_points must be positive")
        if halo_width < 0 or not math.isfinite(halo_width):
            raise ValueError("halo_width must be finite and >= 0")
        morton.bits_per_axis(code_bits)
        self.chunk_points = int(chunk_points)
        self.halo_width = float(halo_width)
        self.code_bits = int(code_bits)

    @classmethod
    def for_model(
        cls,
        model,
        chunk_points: int = 8192,
        code_bits: int = morton.DEFAULT_CODE_BITS,
    ) -> "ScenePartitioner":
        """A partitioner whose halo covers ``model``'s receptive field
        (the model must expose ``sa_configs``, e.g. PointNet++)."""
        sa_configs = getattr(model, "sa_configs", None)
        if sa_configs is None:
            raise ValueError(
                "model exposes no sa_configs; pass halo_width "
                "explicitly to ScenePartitioner instead"
            )
        return cls(
            chunk_points=chunk_points,
            halo_width=halo_width_for(sa_configs),
            code_bits=code_bits,
        )

    def plan(self, points: np.ndarray) -> PartitionPlan:
        """Build the scatter plan for one scene.

        Deterministic for a given input: the Morton sort is stable,
        halo membership is a vectorized box test, and padding walks
        Morton ranks outward from each chunk (nearer rank first, left
        of the range before right on ties).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(
                f"expected an (N, 3) scene, got {points.shape}"
            )
        n = points.shape[0]
        if n == 0:
            raise ValueError("cannot partition an empty scene")
        if not np.isfinite(points).all():
            raise ValueError("scene contains non-finite coordinates")
        if n <= self.chunk_points:
            # Single chunk, original order: byte-identical to the
            # direct pipeline by construction.
            chunk = SceneChunk(
                index=0,
                core_indices=np.arange(n, dtype=np.int64),
                halo_indices=np.empty(0, dtype=np.int64),
            )
            return PartitionPlan(
                num_points=n,
                chunk_points=self.chunk_points,
                halo_width=self.halo_width,
                chunk_size=n,
                chunks=(chunk,),
            )
        order = structurize(points, code_bits=self.code_bits)
        perm = order.permutation.astype(np.int64)
        num_chunks = math.ceil(n / self.chunk_points)
        cores = np.array_split(perm, num_chunks)
        cells = self._cells(points)
        halos = [
            self._halo_of(cells, core) for core in cores
        ]
        chunk_size = max(
            core.size + halo.size
            for core, halo in zip(cores, halos)
        )
        chunks: List[SceneChunk] = []
        start = 0
        for index, (core, halo) in enumerate(zip(cores, halos)):
            pad = chunk_size - core.size - halo.size
            if pad:
                halo = np.concatenate(
                    [
                        halo,
                        self._rank_pad(
                            order.ranks, perm, core, halo,
                            start, start + core.size, pad,
                        ),
                    ]
                )
            chunks.append(
                SceneChunk(
                    index=index,
                    core_indices=core,
                    halo_indices=halo,
                )
            )
            start += core.size
        return PartitionPlan(
            num_points=n,
            chunk_points=self.chunk_points,
            halo_width=self.halo_width,
            chunk_size=chunk_size,
            chunks=tuple(chunks),
        )

    #: Halo grid refinement: cells have pitch ``halo_width / REFINE``
    #: and the dilation stencil spans ``±REFINE`` cells.  Any point
    #: within ``halo_width`` of a core point lands within the stencil
    #: (cell deltas are at most ``ceil(h / pitch) = REFINE`` per
    #: axis), while the over-approximation shrinks from ``2 h`` per
    #: axis at REFINE=1 to ``(REFINE + 1) / REFINE * h``.
    _HALO_GRID_REFINE = 2

    def _cells(self, points: np.ndarray):
        """Linearized voxel ids per point plus the linear offsets of
        the dilation stencil; ``None`` when the halo is disabled
        (zero width)."""
        if self.halo_width == 0:
            return None
        refine = self._HALO_GRID_REFINE
        pitch = self.halo_width / refine
        coords = np.floor(
            (points - points.min(axis=0)) / pitch
        ).astype(np.int64)
        coords += refine  # margin so the stencil stays in range
        dims = coords.max(axis=0) + refine + 1
        if int(dims[0]) * int(dims[1]) * int(dims[2]) >= 2**62:
            raise ValueError(
                "halo_width is too small relative to the scene "
                "extent; the halo grid does not fit 64-bit cell ids"
            )
        linear = (
            coords[:, 0] * dims[1] + coords[:, 1]
        ) * dims[2] + coords[:, 2]
        steps = np.arange(-refine, refine + 1, dtype=np.int64)
        offsets = (
            steps[:, None, None] * dims[1] + steps[None, :, None]
        ) * dims[2] + steps[None, None, :]
        return linear, offsets.ravel()

    @staticmethod
    def _halo_of(cells, core: np.ndarray) -> np.ndarray:
        """Scene indices within one halo cell of the core (a grid
        dilation — covers every point within ``halo_width`` of some
        core point), excluding the core (ascending index order)."""
        if cells is None:
            return np.empty(0, dtype=np.int64)
        linear, offsets = cells
        occupied = np.unique(linear[core])
        dilated = np.unique(
            (occupied[:, None] + offsets[None, :]).ravel()
        )
        inside = np.isin(linear, dilated)
        inside[core] = False
        return np.flatnonzero(inside).astype(np.int64)

    @staticmethod
    def _rank_pad(
        ranks: np.ndarray,
        perm: np.ndarray,
        core: np.ndarray,
        halo: np.ndarray,
        rank_lo: int,
        rank_hi: int,
        pad: int,
    ) -> np.ndarray:
        """The ``pad`` Morton-rank-nearest scene indices outside the
        chunk: walk ranks outward from ``[rank_lo, rank_hi)``, nearer
        distance first, the left side winning ties.  Padding points
        are ordinary context (like halo) and every chunk has enough
        non-members available because ``chunk_size <= N``.
        """
        n = ranks.size
        left = np.arange(rank_lo - 1, -1, -1, dtype=np.int64)
        right = np.arange(rank_hi, n, dtype=np.int64)
        depth = max(left.size, right.size)
        ladder = np.full((depth, 2), -1, dtype=np.int64)
        ladder[: left.size, 0] = left
        ladder[: right.size, 1] = right
        candidates = ladder.ravel()
        candidates = candidates[candidates >= 0]
        member = np.zeros(n, dtype=bool)
        member[core] = True
        member[halo] = True
        original = perm[candidates]
        original = original[~member[original]]
        return original[:pad]
