"""Pricing chunked vs monolithic scene execution.

A million-point monolithic pass cannot simply be *run* to get its
simulated cost — the whole point of partitioning is that it should
not be executed.  Instead, one representative chunk is recorded
through the real pipeline and its per-op counts are **rescaled** to
scene size before re-pricing on the same cost model:

- linear size fields (point / query / sample / candidate counts,
  FLOPs, scan statistics) scale by ``N / S``;
- the pairwise brute kernels then price quadratically for free,
  because their cost is ``n_queries * n_candidates``;
- scan statistics of the pruning/grid fast engines also scale
  linearly, which is an *optimistic lower bound* for the monolithic
  run (ring probes touch superlinearly many pairs as density grows),
  so the reported chunked-vs-monolithic ratio is conservative.

The chunked side is the representative chunk's priced cost times the
chunk count — halo overhead is included by construction, since the
chunk batch carries its halo and padding rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.recorder import StageRecorder
from repro.partition.partitioner import PartitionPlan

#: Count fields that grow linearly with the number of points a stage
#: touches.  Everything else (``batch``, ``k``, ``window``, channel
#: widths, flags) is shape-invariant under rescaling.
_LINEAR_COUNT_FIELDS = frozenset(
    {
        "n_points",
        "n_samples",
        "n_queries",
        "n_candidates",
        "n_groups",
        "rows",
        "flops",
        "points_scanned",
        "pairs_scanned",
        "blocks_applied",
        "blocks_pruned",
        "worst_case",
    }
)


@dataclass(frozen=True)
class PartitionCostReport:
    """Chunked vs (projected) monolithic cost of one partition plan."""

    scene_points: int
    chunk_size: int
    num_chunks: int
    halo_ratio: float
    per_chunk_s: float
    chunked_s: float
    monolithic_s: float

    @property
    def speedup(self) -> float:
        """Projected monolithic seconds per chunked second; above 1
        when chunking (despite halo overhead) wins."""
        if self.chunked_s == 0:
            return float("inf")
        return self.monolithic_s / self.chunked_s

    @property
    def halo_overhead_s(self) -> float:
        """Chunked seconds attributable to halo/padding context rows
        (pro-rated by the halo fraction of each chunk batch)."""
        total = self.scene_points * (1.0 + self.halo_ratio)
        if total == 0:
            return 0.0
        halo_points = self.scene_points * self.halo_ratio
        return self.chunked_s * halo_points / total


def price_partition(
    pipeline,
    points: np.ndarray,
    plan: PartitionPlan,
) -> PartitionCostReport:
    """Price ``plan`` on ``pipeline``'s device without running the
    scene monolithically.

    Args:
        pipeline: an :class:`~repro.pipeline.EdgePCPipeline` (or a
            guarded wrapper around one); its recorder path runs once
            on the representative chunk.
        points: the ``(N, 3)`` scene the plan was built for.
        plan: the partition plan to price.
    """
    inner = pipeline if hasattr(pipeline, "record") else (
        pipeline.pipeline
    )
    chunk = plan.chunks[0]
    chunk_xyz = np.asarray(points, dtype=np.float64)[
        chunk.indices
    ][np.newaxis]
    recorder = inner.record(chunk_xyz)
    per_chunk_s = inner.profiler.breakdown(
        recorder, inner.config
    ).total_s
    factor = plan.num_points / chunk.size
    scaled = StageRecorder()
    for event in recorder:
        counts = {
            key: value * factor
            if key in _LINEAR_COUNT_FIELDS
            else value
            for key, value in event.counts.items()
        }
        scaled.record(event.stage, event.op, event.layer, **counts)
    monolithic_s = inner.profiler.breakdown(
        scaled, inner.config
    ).total_s
    return PartitionCostReport(
        scene_points=plan.num_points,
        chunk_size=plan.chunk_size,
        num_chunks=plan.num_chunks,
        halo_ratio=plan.halo_ratio,
        per_chunk_s=per_chunk_s,
        chunked_s=per_chunk_s * plan.num_chunks,
        monolithic_s=monolithic_s,
    )
