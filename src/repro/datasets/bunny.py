"""A procedural stand-in for the Stanford Bunny (paper Fig. 5).

The sampling-quality study needs an organic, irregularly sampled
surface of about 40k points (the Bunny has 40 256).  This model builds
a lumpy ellipsoid body, a lumpy sphere head, two capsule ears and four
leg stubs, with strong density bias so some regions are scanned far
more densely than others — the property that makes raw uniform
sampling fail (Fig. 5b).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import PointCloud
from repro.geometry import shapes
from repro.geometry.transforms import normalize_unit_sphere

#: The Stanford Bunny's point count, kept for fidelity to Fig. 5.
BUNNY_POINT_COUNT = 40256


def bunny_like(
    num_points: int = BUNNY_POINT_COUNT, seed: int = 0
) -> PointCloud:
    """Generate the bunny-like model with ``num_points`` points."""
    if num_points < 16:
        raise ValueError("need at least 16 points")
    rng = np.random.default_rng(seed)
    weights = np.array([0.52, 0.2, 0.07, 0.07, 0.14])
    counts = np.floor(weights / weights.sum() * num_points).astype(int)
    counts[0] += num_points - counts.sum()

    body = shapes.sample_ellipsoid(
        counts[0], rng, (1.0, 0.8, 0.75), density_bias=1.2
    )
    body = shapes.lumpy_radial_perturbation(body, rng, 0.12)

    head = shapes.sample_sphere(counts[1], rng, 0.45, density_bias=0.8)
    head = shapes.lumpy_radial_perturbation(head, rng, 0.08)
    head += np.array([0.85, 0.0, 0.6])

    left_ear = shapes.sample_capsule(counts[2], rng, 0.09, 0.7)
    left_ear += np.array([0.8, 0.18, 1.35])
    right_ear = shapes.sample_capsule(counts[3], rng, 0.09, 0.7)
    right_ear += np.array([0.8, -0.18, 1.35])

    legs = shapes.sample_capsule(counts[4], rng, 0.14, 0.5)
    corner = rng.integers(0, 4, counts[4])
    legs[:, 0] += np.where(corner % 2 == 0, -0.5, 0.5)
    legs[:, 1] += np.where(corner < 2, -0.4, 0.4)
    legs[:, 2] -= 0.8

    xyz = np.concatenate([body, head, left_ear, right_ear, legs])
    xyz = xyz[rng.permutation(len(xyz))]
    return normalize_unit_sphere(PointCloud(xyz))
