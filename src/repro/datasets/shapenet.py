"""ShapeNet-part-like synthetic part-segmentation dataset.

The real ShapeNet part benchmark labels each point of an object with
the part it belongs to (e.g. a lamp's base / pole / shade).  This
stand-in composes objects from labelled parametric parts, 2048 points
per cloud (Table 1 W4), with per-object pose and proportion variation.
"""

from __future__ import annotations

from typing import Callable, List, Tuple

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.geometry.points import PointCloud
from repro.geometry import shapes
from repro.geometry.transforms import normalize_unit_sphere

#: Part labels shared across all object categories.
PART_BASE = 0
PART_BODY = 1
PART_TOP = 2
PART_APPENDAGE = 3
NUM_PARTS = 4


def _lamp(n: int, rng: np.random.Generator):
    """Base plate + pole + cone shade."""
    counts = _split_counts(n, (0.25, 0.35, 0.4))
    base = shapes.sample_box(counts[0], rng, (0.8, 0.8, 0.1))
    pole = shapes.sample_cylinder(counts[1], rng, 0.08, 1.6)
    pole[:, 2] += 0.8
    shade = shapes.sample_cone(counts[2], rng, 0.55, 0.5)
    shade[:, 2] += 1.5
    return (
        [base, pole, shade],
        [PART_BASE, PART_BODY, PART_TOP],
    )


def _table(n: int, rng: np.random.Generator):
    """Top slab + four legs."""
    counts = _split_counts(n, (0.5, 0.5))
    top = shapes.sample_box(counts[0], rng, (1.6, 1.0, 0.1))
    top[:, 2] += 0.8
    legs = shapes.sample_cylinder(counts[1], rng, 0.06, 0.8)
    corner = rng.integers(0, 4, counts[1])
    legs[:, 0] += np.where(corner % 2 == 0, -0.7, 0.7)
    legs[:, 1] += np.where(corner < 2, -0.4, 0.4)
    legs[:, 2] += 0.4
    return [top, legs], [PART_TOP, PART_BASE]


def _rocket(n: int, rng: np.random.Generator):
    """Body tube + nose cone + fins."""
    counts = _split_counts(n, (0.5, 0.25, 0.25))
    body = shapes.sample_cylinder(counts[0], rng, 0.3, 1.6)
    nose = shapes.sample_cone(counts[1], rng, 0.3, 0.6)
    nose[:, 2] += 0.8
    fins = shapes.sample_box(counts[2], rng, (1.2, 0.05, 0.5))
    fins[:, 2] -= 0.8
    return [body, nose, fins], [PART_BODY, PART_TOP, PART_APPENDAGE]


def _mug(n: int, rng: np.random.Generator):
    """Cup wall + bottom + handle."""
    counts = _split_counts(n, (0.55, 0.2, 0.25))
    wall = shapes.sample_cylinder(counts[0], rng, 0.5, 1.0)
    bottom = shapes.sample_plane(counts[1], rng, (0.9, 0.9))
    bottom[:, 2] -= 0.5
    handle = shapes.sample_torus(counts[2], rng, 0.3, 0.06)
    handle = handle[:, [0, 2, 1]]  # stand the ring upright
    handle[:, 0] += 0.62
    return [wall, bottom, handle], [PART_BODY, PART_BASE, PART_APPENDAGE]


_CATEGORIES: List[Callable] = [_lamp, _table, _rocket, _mug]
NUM_CATEGORIES = len(_CATEGORIES)


def _split_counts(n: int, weights: Tuple[float, ...]) -> List[int]:
    """Split ``n`` into integer part sizes proportional to ``weights``."""
    weights = np.asarray(weights, dtype=np.float64)
    raw = weights / weights.sum() * n
    counts = np.floor(raw).astype(int)
    counts[0] += n - counts.sum()
    return counts.tolist()


class ShapeNetPartLike(SyntheticDataset):
    """Part segmentation, 2048 points/cloud by default (Table 1 W4)."""

    num_part_classes = NUM_PARTS

    def __init__(
        self,
        num_clouds: int = 32,
        points_per_cloud: int = 2048,
        seed: int = 0,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        category = _CATEGORIES[index % NUM_CATEGORIES]
        parts, labels = category(self.points_per_cloud, rng)
        xyz = np.concatenate(parts)
        point_labels = np.concatenate(
            [
                np.full(len(part), label, dtype=np.int64)
                for part, label in zip(parts, labels)
            ]
        )
        # Random upright rotation + scale, as in standard training.
        angle = rng.uniform(0, 2 * np.pi)
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, -s, 0], [s, c, 0], [0, 0, 1.0]])
        xyz = xyz @ rot.T * rng.uniform(0.9, 1.1)
        order = rng.permutation(len(xyz))
        cloud = PointCloud(xyz[order], labels=point_labels[order])
        return normalize_unit_sphere(cloud)

    def category_of(self, index: int) -> int:
        """Object category of cloud ``index`` (not the part labels)."""
        if not 0 <= index < self.num_clouds:
            raise IndexError("index out of range")
        return index % NUM_CATEGORIES
