"""Composable augmentation pipelines for training.

Wraps the per-cloud transforms of :mod:`repro.geometry.transforms`
into a composable pipeline and a dataset adapter, giving the trainers
the standard PointNet-family augmentation stack (rotate -> scale ->
jitter -> dropout) with one seeded generator per (epoch, cloud) so
training stays reproducible.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.geometry.points import PointCloud
from repro.geometry import transforms

#: A transform takes (cloud, rng) and returns a new cloud.
Transform = Callable[[PointCloud, np.random.Generator], PointCloud]


class Compose:
    """Apply transforms in sequence, sharing one generator."""

    def __init__(self, steps: Sequence[Transform]) -> None:
        self.steps: List[Transform] = list(steps)

    def __call__(
        self, cloud: PointCloud, rng: np.random.Generator
    ) -> PointCloud:
        for step in self.steps:
            cloud = step(cloud, rng)
        return cloud

    def __len__(self) -> int:
        return len(self.steps)


def standard_augmentation(
    jitter_sigma: float = 0.01,
    scale_low: float = 0.9,
    scale_high: float = 1.1,
    max_dropout: float = 0.2,
) -> Compose:
    """The usual PointNet-family training stack."""
    return Compose(
        [
            transforms.random_rotate_z,
            lambda c, g: transforms.random_scale(
                c, g, scale_low, scale_high
            ),
            lambda c, g: transforms.jitter(c, g, jitter_sigma),
            lambda c, g: transforms.random_dropout(c, g, max_dropout),
        ]
    )


class AugmentedDataset(SyntheticDataset):
    """A dataset view that augments every cloud deterministically.

    The generator for cloud ``i`` is seeded from
    ``(seed, epoch, i)``; call :meth:`set_epoch` between epochs to
    refresh the augmentations while keeping runs reproducible.
    """

    def __init__(
        self,
        base: SyntheticDataset,
        augmentation: Compose,
        seed: int = 0,
    ) -> None:
        super().__init__(
            num_clouds=len(base),
            points_per_cloud=base.points_per_cloud,
            seed=seed,
        )
        self.base = base
        self.augmentation = augmentation
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        self.epoch = epoch

    def _generate(
        self, index: int, rng: np.random.Generator
    ) -> PointCloud:
        del rng  # replaced by the epoch-aware generator below
        cloud = self.base[index]
        gen = np.random.default_rng((self.seed, self.epoch, index))
        return self.augmentation(cloud, gen)
