"""KITTI-like outdoor LiDAR sweeps via ray casting.

The paper's headline motivation (Fig. 1a) is a car-mounted spinning
LiDAR.  This dataset simulates one: ``num_beams`` lasers at fixed
elevation angles sweep ``num_azimuths`` steps; each ray is cast into a
procedurally placed scene (ground plane, car-sized boxes, poles, a
building wall) and returns the nearest hit.  The result has the
signature geometry of real sweeps — concentric ground rings, radial
density falloff, 2.5-D structure — which none of the indoor sets
exercise, making it the stress case for Z-order locality.

Semantic labels: 0 ground, 1 car, 2 pole, 3 building.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.geometry.points import PointCloud

LABEL_GROUND = 0
LABEL_CAR = 1
LABEL_POLE = 2
LABEL_BUILDING = 3
NUM_OUTDOOR_CLASSES = 4


def _ray_plane_z0(origins: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    """Distance along each ray to the z = 0 plane (inf if parallel or
    behind).

    Args:
        origins: ``(R, 3)`` float64 ray origins.
        dirs: ``(R, 3)`` float64 unit directions.

    Returns:
        ``(R,)`` float64 hit distances, ``inf`` on miss.
    """
    dz = dirs[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = -origins[:, 2] / dz
    t = np.where((np.abs(dz) > 1e-12) & (t > 0), t, np.inf)
    return t


def _ray_aabb(
    origins: np.ndarray,
    dirs: np.ndarray,
    box_min: np.ndarray,
    box_max: np.ndarray,
) -> np.ndarray:
    """Slab-test distance along each ray to an AABB (inf on miss).

    Args:
        origins: ``(R, 3)`` float64 ray origins.
        dirs: ``(R, 3)`` float64 unit directions.
        box_min: ``(3,)`` float64 box lower corner.
        box_max: ``(3,)`` float64 box upper corner.

    Returns:
        ``(R,)`` float64 entry distances, ``inf`` on miss.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
    t1 = (box_min[None, :] - origins) * inv
    t2 = (box_max[None, :] - origins) * inv
    t_near = np.minimum(t1, t2).max(axis=1)
    t_far = np.maximum(t1, t2).min(axis=1)
    hit = (t_far >= t_near) & (t_far > 0)
    entry = np.where(t_near > 0, t_near, t_far)
    return np.where(hit, entry, np.inf)


def sweep_directions(
    num_beams: int, num_azimuths: int
) -> np.ndarray:
    """Unit ray directions of one spin: beams x azimuths, flattened.

    Returns:
        float64 unit vectors of shape ``(num_beams * num_azimuths,
        3)``, beam-major (all azimuths of beam 0 first).
    """
    elevations = np.deg2rad(np.linspace(-24.0, 2.0, num_beams))
    azimuths = np.linspace(0, 2 * np.pi, num_azimuths, endpoint=False)
    el, az = np.meshgrid(elevations, azimuths, indexing="ij")
    dirs = np.stack(
        [
            np.cos(el) * np.cos(az),
            np.cos(el) * np.sin(az),
            np.sin(el),
        ],
        axis=-1,
    )
    return dirs.reshape(-1, 3)


def _scene_boxes(
    rng: np.random.Generator,
) -> List[Tuple[np.ndarray, np.ndarray, int]]:
    """Random scene objects: ``(box_min, box_max, label)`` triples."""
    boxes = []
    for _ in range(int(rng.integers(3, 8))):  # cars
        cx = rng.uniform(-18, 18)
        cy = rng.uniform(-18, 18)
        if np.hypot(cx, cy) < 3.0:
            cx += 5.0  # keep the ego position clear
        half = np.array([2.2, 0.9, 0.75])
        center = np.array([cx, cy, 0.75])
        boxes.append((center - half, center + half, LABEL_CAR))
    for _ in range(int(rng.integers(2, 6))):  # poles
        cx = rng.uniform(-20, 20)
        cy = rng.uniform(-20, 20)
        half = np.array([0.15, 0.15, 3.0])
        center = np.array([cx, cy, 3.0])
        boxes.append((center - half, center + half, LABEL_POLE))
    # One building facade along a random side.
    side = rng.integers(0, 4)
    distance = rng.uniform(15, 22)
    if side % 2 == 0:
        center = np.array(
            [distance if side == 0 else -distance, 0.0, 4.0]
        )
        half = np.array([0.5, 25.0, 4.0])
    else:
        center = np.array(
            [0.0, distance if side == 1 else -distance, 4.0]
        )
        half = np.array([25.0, 0.5, 4.0])
    boxes.append((center - half, center + half, LABEL_BUILDING))
    return boxes


def lidar_sweep(
    rng: np.random.Generator,
    num_beams: int = 32,
    num_azimuths: int = 512,
    max_range: float = 30.0,
    noise_sigma: float = 0.02,
    sensor_height: float = 1.8,
) -> PointCloud:
    """Ray-cast one full LiDAR spin; returns only the returned hits."""
    if num_beams < 1 or num_azimuths < 4:
        raise ValueError("need at least 1 beam and 4 azimuth steps")
    if max_range <= 0:
        raise ValueError("max_range must be positive")
    dirs = sweep_directions(num_beams, num_azimuths)
    origins = np.tile(
        np.array([0.0, 0.0, sensor_height]), (dirs.shape[0], 1)
    )
    depth = _ray_plane_z0(origins, dirs)
    labels = np.full(dirs.shape[0], LABEL_GROUND, dtype=np.int64)
    for box_min, box_max, label in _scene_boxes(rng):
        t = _ray_aabb(origins, dirs, box_min, box_max)
        closer = t < depth
        depth = np.where(closer, t, depth)
        labels = np.where(closer, label, labels)
    returned = depth <= max_range
    if not returned.any():
        raise RuntimeError("no LiDAR returns; scene degenerate")
    points = (
        origins[returned]
        + dirs[returned] * depth[returned, None]
        + rng.normal(0, noise_sigma, (int(returned.sum()), 3))
    )
    return PointCloud(points, labels=labels[returned])


class KITTILike(SyntheticDataset):
    """Fixed-size outdoor sweeps (resampled to ``points_per_cloud``)."""

    num_semantic_classes = NUM_OUTDOOR_CLASSES

    def __init__(
        self,
        num_clouds: int = 8,
        points_per_cloud: int = 8192,
        num_beams: int = 32,
        num_azimuths: int = 768,
        seed: int = 0,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)
        self.num_beams = num_beams
        self.num_azimuths = num_azimuths

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        sweep = lidar_sweep(
            rng,
            num_beams=self.num_beams,
            num_azimuths=self.num_azimuths,
        )
        n = len(sweep)
        if n >= self.points_per_cloud:
            keep = rng.choice(n, self.points_per_cloud, replace=False)
        else:
            extra = rng.choice(
                n, self.points_per_cloud - n, replace=True
            )
            keep = np.concatenate([np.arange(n), extra])
        return sweep.select(keep)
