"""Scene-scale semantic segmentation: tiled indoor floors.

The paper's per-cloud workloads top out at 8192 points (Table 1); the
scene-scale scenario instead assembles an entire *floor* of
procedurally generated rooms — the same labelled room generator behind
:class:`~repro.datasets.indoor.S3DISLike` / ``ScanNetLike`` — tiled on
a grid, producing one contiguous 100k–1M-point scene.  This is the
workload the :mod:`repro.partition` scatter/gather pipeline exists
for: far too large for one ``(B, N, 3)`` batch, but spatially
decomposable into Morton-compact chunks.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.datasets.indoor import (
    NUM_SEMANTIC_CLASSES,
    _assemble,
    _room_surfaces,
    room_grid_offsets,
)
from repro.geometry.points import PointCloud

#: Grid pitch between normalized room blocks (each spans ~[-1, 1]^3).
DEFAULT_ROOM_SPACING = 2.2


def make_scene(
    num_points: int,
    seed: int = 0,
    room_points: int = 8192,
    spacing: float = DEFAULT_ROOM_SPACING,
    noise_sigma: float = 0.0,
) -> PointCloud:
    """Assemble one labelled floor-scale scene of tiled rooms.

    Rooms are generated independently (one child seed each, so the
    same scene is reproducible at any size), normalized per block like
    the segmentation pipelines expect, offset onto a near-square grid,
    concatenated, and trimmed to exactly ``num_points`` by dropping
    the tail of the last room.

    Args:
        num_points: total scene size; any positive value (the
            scene-scale scenario uses 100k–1M).
        seed: deterministic scene seed.
        room_points: points per room tile before trimming.
        spacing: grid pitch between room centers; values above 2 keep
            normalized rooms from overlapping.
        noise_sigma: optional Gaussian sensor noise (ScanNet-style).

    Returns:
        A :class:`PointCloud` whose ``xyz`` is ``(num_points, 3)``
        float64 and whose per-point ``labels`` are ``(num_points,)``
        int64 semantic classes.
    """
    if num_points < 1:
        raise ValueError("num_points must be positive")
    if room_points < 64:
        raise ValueError("room_points must be at least 64")
    if noise_sigma < 0:
        raise ValueError("noise_sigma must be non-negative")
    num_rooms = -(-num_points // room_points)  # ceil
    offsets = room_grid_offsets(num_rooms, spacing)
    xyz_parts = []
    label_parts = []
    for room in range(num_rooms):
        rng = np.random.default_rng((seed, room))
        cloud = _assemble(_room_surfaces(room_points, rng), rng)
        xyz = cloud.xyz + offsets[room]
        if noise_sigma:
            xyz = xyz + rng.normal(0, noise_sigma, xyz.shape)
        xyz_parts.append(xyz)
        label_parts.append(cloud.labels)
    xyz = np.concatenate(xyz_parts)[:num_points]
    labels = np.concatenate(label_parts)[:num_points]
    return PointCloud(xyz, labels=labels)


class SceneSegmentation(SyntheticDataset):
    """Floor-scale indoor scenes for partitioned segmentation.

    Unlike the fixed-8192 datasets, ``points_per_cloud`` here is the
    *scene* size (100k–1M); consumers are expected to run each scene
    through :class:`~repro.partition.PartitionedPipeline` or the
    fleet's scatter/gather path rather than a single batch.
    """

    num_semantic_classes = NUM_SEMANTIC_CLASSES

    def __init__(
        self,
        num_clouds: int = 2,
        points_per_cloud: int = 100_000,
        seed: int = 0,
        room_points: int = 8192,
        spacing: float = DEFAULT_ROOM_SPACING,
        noise_sigma: float = 0.0,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)
        if room_points < 64:
            raise ValueError("room_points must be at least 64")
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.room_points = room_points
        self.spacing = spacing
        self.noise_sigma = noise_sigma

    def _generate(
        self, index: int, rng: np.random.Generator
    ) -> PointCloud:
        # Scenes derive their own per-room child seeds; fold the cloud
        # index into the scene seed so each scene differs.
        del rng  # scene assembly seeds itself per room
        return make_scene(
            self.points_per_cloud,
            seed=(self.seed * 100_003 + index),
            room_points=self.room_points,
            spacing=self.spacing,
            noise_sigma=self.noise_sigma,
        )
