"""Dataset protocol and batching utilities.

All datasets in the reproduction are *procedural*: they synthesize
labelled point clouds on demand from a seed, so experiments are fully
deterministic and need no downloads.  Each dataset mirrors one of the
paper's Table 1 datasets in the properties that matter to EdgePC —
points per cloud, irregular density, and learnable labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.geometry.points import PointCloud
from repro.robustness.validate import (
    CloudValidationError,
    ValidationPolicy,
    sanitize_cloud,
)


class SyntheticDataset:
    """Base class: deterministic, index-addressable cloud generator.

    Subclasses implement :meth:`_generate` to build the ``i``-th cloud;
    the base class provides batching and train/test splits.  Every
    generated cloud passes through the sanitization boundary
    (:func:`~repro.robustness.validate.sanitize_cloud`) so a buggy or
    misconfigured generator fails loudly at the loader instead of
    feeding garbage into training.
    """

    def __init__(
        self,
        num_clouds: int,
        points_per_cloud: int,
        seed: int = 0,
        validation: Optional[ValidationPolicy] = None,
    ) -> None:
        if num_clouds < 1:
            raise ValueError("num_clouds must be positive")
        if points_per_cloud < 1:
            raise ValueError("points_per_cloud must be positive")
        self.num_clouds = num_clouds
        self.points_per_cloud = points_per_cloud
        self.seed = seed
        self.validation = validation or ValidationPolicy()

    def __len__(self) -> int:
        return self.num_clouds

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        raise NotImplementedError

    def __getitem__(self, index: int) -> PointCloud:
        if not 0 <= index < self.num_clouds:
            raise IndexError(f"index {index} out of range")
        rng = np.random.default_rng((self.seed, index))
        cloud = self._generate(index, rng)
        if len(cloud) != self.points_per_cloud:
            raise RuntimeError(
                f"generator produced {len(cloud)} points, expected "
                f"{self.points_per_cloud}"
            )
        try:
            sanitize_cloud(cloud.xyz, self.validation)
        except CloudValidationError as err:
            raise RuntimeError(
                f"generator produced an invalid cloud at index "
                f"{index}: {err}"
            ) from err
        return cloud

    def __iter__(self) -> Iterator[PointCloud]:
        for i in range(self.num_clouds):
            yield self[i]


@dataclass(frozen=True)
class Batch:
    """A fixed-size batch of clouds, stacked for the batched models.

    Attributes:
        xyz: ``(B, N, 3)`` coordinates.
        labels: ``(B,)`` cloud labels (classification) or ``(B, N)``
            per-point labels (segmentation).
    """

    xyz: np.ndarray
    labels: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.xyz.shape[0]

    @property
    def points_per_cloud(self) -> int:
        return self.xyz.shape[1]


def make_batches(
    dataset: SyntheticDataset,
    batch_size: int,
    indices: List[int] = None,
    per_point_labels: bool = False,
    drop_last: bool = True,
) -> List[Batch]:
    """Stack dataset clouds into :class:`Batch` objects.

    Classification datasets put the cloud label on every point's
    ``labels`` array; ``per_point_labels`` selects which view the batch
    exposes.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    if indices is None:
        indices = list(range(len(dataset)))
    batches: List[Batch] = []
    for lo in range(0, len(indices), batch_size):
        chunk = indices[lo : lo + batch_size]
        if drop_last and len(chunk) < batch_size:
            break
        clouds = [dataset[i] for i in chunk]
        xyz = np.stack([c.xyz for c in clouds])
        if per_point_labels:
            labels = np.stack([c.labels for c in clouds])
        else:
            labels = np.array(
                [int(c.labels[0]) for c in clouds], dtype=np.int64
            )
        batches.append(Batch(xyz=xyz, labels=labels))
    if not batches:
        raise ValueError("dataset too small for one full batch")
    return batches


def train_test_split(
    dataset: SyntheticDataset,
    test_fraction: float = 0.25,
    seed: int = 0,
) -> Tuple[List[int], List[int]]:
    """Deterministic shuffled index split.

    A seeded shuffle (rather than interleaving) avoids aliasing with
    the datasets' label cycle (cloud ``i`` is class ``i % C``), which
    would otherwise put a single class in the test set.
    """
    if not 0 < test_fraction < 1:
        raise ValueError("test_fraction must be in (0, 1)")
    order = np.random.default_rng(seed).permutation(len(dataset))
    num_test = max(1, int(round(len(dataset) * test_fraction)))
    if num_test >= len(dataset):
        raise ValueError("split produced an empty side")
    test = sorted(order[:num_test].tolist())
    train = sorted(order[num_test:].tolist())
    return train, test
