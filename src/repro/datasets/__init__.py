"""Procedural synthetic datasets mirroring the paper's Table 1."""

from repro.datasets.base import (
    Batch,
    SyntheticDataset,
    make_batches,
    train_test_split,
)
from repro.datasets.augment import (
    AugmentedDataset,
    Compose,
    standard_augmentation,
)
from repro.datasets.bunny import BUNNY_POINT_COUNT, bunny_like
from repro.datasets.indoor import (
    NUM_SEMANTIC_CLASSES,
    S3DISLike,
    ScanNetLike,
    room_grid_offsets,
)
from repro.datasets.modelnet import ModelNetLike
from repro.datasets.outdoor import (
    NUM_OUTDOOR_CLASSES,
    KITTILike,
    lidar_sweep,
)
from repro.datasets.scene import (
    DEFAULT_ROOM_SPACING,
    SceneSegmentation,
    make_scene,
)
from repro.datasets.shapenet import (
    NUM_CATEGORIES,
    NUM_PARTS,
    ShapeNetPartLike,
)

__all__ = [
    "SyntheticDataset",
    "Batch",
    "make_batches",
    "AugmentedDataset",
    "Compose",
    "standard_augmentation",
    "train_test_split",
    "ModelNetLike",
    "ShapeNetPartLike",
    "S3DISLike",
    "ScanNetLike",
    "SceneSegmentation",
    "make_scene",
    "room_grid_offsets",
    "DEFAULT_ROOM_SPACING",
    "KITTILike",
    "lidar_sweep",
    "NUM_OUTDOOR_CLASSES",
    "bunny_like",
    "BUNNY_POINT_COUNT",
    "NUM_SEMANTIC_CLASSES",
    "NUM_CATEGORIES",
    "NUM_PARTS",
]
