"""S3DIS-like and ScanNet-like synthetic indoor-scene datasets.

Both real datasets are RGB-D / LiDAR scans of rooms with per-point
semantic labels, preprocessed into fixed-size blocks (Table 1: 8192
points for S3DIS/ScanNet with PointNet++(s) and DGCNN(s), 4096 for
DGCNN(s) on S3DIS).  The stand-ins build rooms from labelled surfaces —
floor, ceiling, walls, tables, chairs, clutter — with scanner-like
density falloff; the ScanNet variant additionally drops a random
half-space chunk and adds sensor noise, mimicking partial scans.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.datasets.base import SyntheticDataset
from repro.geometry.points import PointCloud
from repro.geometry import shapes

#: Semantic classes shared by both indoor datasets.
CLASS_FLOOR = 0
CLASS_CEILING = 1
CLASS_WALL = 2
CLASS_TABLE = 3
CLASS_CHAIR = 4
CLASS_CLUTTER = 5
NUM_SEMANTIC_CLASSES = 6


def room_grid_offsets(
    num_rooms: int, spacing: float = 2.5
) -> np.ndarray:
    """Offsets laying normalized rooms out on a near-square XY grid.

    Each room block is normalized to roughly ``[-1, 1]^3``, so a
    spacing a little above 2 abuts rooms without overlap — the layout
    the scene-scale segmentation scenario tiles into 100k–1M-point
    floors.

    Returns:
        float64 offsets of shape ``(num_rooms, 3)``; ``z`` is always
        0 so the tiled rooms share one floor plane.
    """
    if num_rooms < 1:
        raise ValueError("num_rooms must be positive")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    cols = int(np.ceil(np.sqrt(num_rooms)))
    index = np.arange(num_rooms)
    offsets = np.zeros((num_rooms, 3), dtype=np.float64)
    offsets[:, 0] = (index % cols) * spacing
    offsets[:, 1] = (index // cols) * spacing
    return offsets


def _room_surfaces(
    n: int, rng: np.random.Generator
) -> List[tuple]:
    """Build the labelled surfaces of one room; returns
    ``[(points, label), ...]`` summing to ``n`` points."""
    width = rng.uniform(4.0, 8.0)
    depth = rng.uniform(4.0, 8.0)
    height = rng.uniform(2.5, 3.5)
    num_tables = int(rng.integers(1, 4))
    num_chairs = int(rng.integers(2, 6))
    num_clutter = int(rng.integers(2, 5))

    weights = {
        "floor": 0.22,
        "ceiling": 0.12,
        "walls": 0.3,
        "tables": 0.12,
        "chairs": 0.12,
        "clutter": 0.12,
    }
    total = sum(weights.values())
    counts = {
        key: max(8, int(n * value / total))
        for key, value in weights.items()
    }
    counts["floor"] += n - sum(counts.values())

    surfaces: List[tuple] = []
    floor = shapes.sample_plane(
        counts["floor"], rng, (width, depth), density_bias=0.6
    )
    surfaces.append((floor, CLASS_FLOOR))
    ceiling = shapes.sample_plane(counts["ceiling"], rng, (width, depth))
    ceiling[:, 2] += height
    surfaces.append((ceiling, CLASS_CEILING))

    walls = np.empty((counts["walls"], 3))
    side = rng.integers(0, 4, counts["walls"])
    u = rng.random(counts["walls"])
    v = rng.random(counts["walls"]) ** 1.4  # denser near the floor
    walls[:, 2] = v * height
    for s in range(4):
        mask = side == s
        if s == 0:
            walls[mask, 0] = (u[mask] - 0.5) * width
            walls[mask, 1] = -depth / 2
        elif s == 1:
            walls[mask, 0] = (u[mask] - 0.5) * width
            walls[mask, 1] = depth / 2
        elif s == 2:
            walls[mask, 0] = -width / 2
            walls[mask, 1] = (u[mask] - 0.5) * depth
        else:
            walls[mask, 0] = width / 2
            walls[mask, 1] = (u[mask] - 0.5) * depth
    surfaces.append((walls, CLASS_WALL))

    def _place(points: np.ndarray) -> np.ndarray:
        """Shift an object's ``(P, 3)`` float64 points to a random
        in-room XY position (shape and dtype preserved)."""
        points = points.copy()
        points[:, 0] += rng.uniform(-width / 2 + 1, width / 2 - 1)
        points[:, 1] += rng.uniform(-depth / 2 + 1, depth / 2 - 1)
        return points

    per_table = counts["tables"] // num_tables
    tables = []
    for _ in range(num_tables):
        top = shapes.sample_box(per_table, rng, (1.4, 0.8, 0.08))
        top[:, 2] += 0.75
        tables.append(_place(top))
    leftover = counts["tables"] - per_table * num_tables
    if leftover:
        extra = shapes.sample_box(leftover, rng, (1.4, 0.8, 0.08))
        extra[:, 2] += 0.75
        tables.append(_place(extra))
    surfaces.append((np.concatenate(tables), CLASS_TABLE))

    per_chair = counts["chairs"] // num_chairs
    chairs = []
    for _ in range(num_chairs):
        seat = shapes.sample_capsule(per_chair, rng, 0.22, 0.5)
        seat[:, 2] += 0.45
        chairs.append(_place(seat))
    leftover = counts["chairs"] - per_chair * num_chairs
    if leftover:
        extra = shapes.sample_capsule(leftover, rng, 0.22, 0.5)
        extra[:, 2] += 0.45
        chairs.append(_place(extra))
    surfaces.append((np.concatenate(chairs), CLASS_CHAIR))

    per_blob = counts["clutter"] // num_clutter
    blobs = []
    for _ in range(num_clutter):
        blob = shapes.sample_gaussian_blob(per_blob, rng, (0.2, 0.2, 0.2))
        blob[:, 2] = np.abs(blob[:, 2]) + 0.1
        blobs.append(_place(blob))
    leftover = counts["clutter"] - per_blob * num_clutter
    if leftover:
        blob = shapes.sample_gaussian_blob(leftover, rng, (0.2, 0.2, 0.2))
        blob[:, 2] = np.abs(blob[:, 2]) + 0.1
        blobs.append(_place(blob))
    surfaces.append((np.concatenate(blobs), CLASS_CLUTTER))
    return surfaces


def _assemble(
    surfaces: List[tuple], rng: np.random.Generator
) -> PointCloud:
    xyz = np.concatenate([points for points, _ in surfaces])
    labels = np.concatenate(
        [
            np.full(len(points), label, dtype=np.int64)
            for points, label in surfaces
        ]
    )
    order = rng.permutation(len(xyz))
    xyz = xyz[order]
    labels = labels[order]
    # Normalize per block, as the segmentation pipelines do.
    xyz = xyz - xyz.mean(axis=0)
    scale = np.abs(xyz).max()
    if scale > 0:
        xyz = xyz / scale
    return PointCloud(xyz, labels=labels)


class S3DISLike(SyntheticDataset):
    """Clean indoor rooms with semantic labels (Table 1 W1/W5)."""

    num_semantic_classes = NUM_SEMANTIC_CLASSES

    def __init__(
        self,
        num_clouds: int = 16,
        points_per_cloud: int = 8192,
        seed: int = 0,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        return _assemble(
            _room_surfaces(self.points_per_cloud, rng), rng
        )


class ScanNetLike(SyntheticDataset):
    """Partial, noisy indoor scans (Table 1 W2/W6).

    Same room generator as :class:`S3DISLike`, then: a random
    half-space chunk is deleted and refilled by resampling the
    remainder (scan occlusion), and Gaussian sensor noise is added.
    """

    num_semantic_classes = NUM_SEMANTIC_CLASSES

    def __init__(
        self,
        num_clouds: int = 16,
        points_per_cloud: int = 8192,
        seed: int = 0,
        noise_sigma: float = 0.005,
    ) -> None:
        super().__init__(num_clouds, points_per_cloud, seed)
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.noise_sigma = noise_sigma

    def _generate(self, index: int, rng: np.random.Generator) -> PointCloud:
        cloud = _assemble(
            _room_surfaces(self.points_per_cloud, rng), rng
        )
        # Occlude: delete points on one side of a random plane through
        # a point offset from the center, then resample back to size.
        normal = rng.normal(size=3)
        normal /= np.linalg.norm(normal)
        offset = rng.uniform(0.3, 0.6)
        keep = (cloud.xyz @ normal) < offset
        if keep.sum() < self.points_per_cloud // 2:
            keep = ~keep
        kept_idx = np.flatnonzero(keep)
        refill = rng.choice(
            kept_idx, self.points_per_cloud - kept_idx.size, replace=True
        )
        indices = np.concatenate([kept_idx, refill])
        xyz = cloud.xyz[indices] + rng.normal(
            0, self.noise_sigma, (self.points_per_cloud, 3)
        )
        return PointCloud(xyz, labels=cloud.labels[indices])
